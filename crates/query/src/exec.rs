//! Push-based executor for physical [`Plan`]s.
//!
//! Execution walks the operator tree with a single mutable binding
//! array (`Vec<Option<TermId>>`) and an emit callback — no intermediate
//! materialization. Scans bind their free slots, recurse, and restore
//! the slots on the way out; only the final projected rows are
//! allocated. The executor is generic over any [`KbRead`] view, so the
//! same compiled plan runs against the builder-backed façade or an
//! immutable snapshot.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};

use kb_store::{KbRead, TermId, TimePoint, TriplePattern};

use crate::ast::CmpOp;
use crate::plan::{Col, CondC, CondOperand, PhysOp, Plan, Slot, Step};

/// One projected value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A bound term.
    Term(TermId),
    /// An aggregate count.
    Count(u64),
    /// An unbound variable (possible under `OPTIONAL` and `UNION`).
    Unbound,
}

/// The materialized result of executing a plan: column names plus rows
/// of [`Cell`]s, already deduplicated/aggregated/ordered/sliced per the
/// plan's modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Output column names, in projection order (no `?` prefix).
    pub cols: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Cell>>,
}

impl QueryOutput {
    /// Renders one row as `?col=value` pairs joined by two spaces — the
    /// same shape the legacy engine's `Bindings` display used, so CLI
    /// output stays familiar.
    pub fn render_row<K: KbRead + ?Sized>(&self, row: &[Cell], kb: &K) -> String {
        self.cols
            .iter()
            .zip(row)
            .map(|(c, v)| format!("?{}={}", c, cell_str(v, kb)))
            .collect::<Vec<_>>()
            .join("  ")
    }

    /// Renders the whole result deterministically, one row per line.
    pub fn render<K: KbRead + ?Sized>(&self, kb: &K) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&self.render_row(row, kb));
            out.push('\n');
        }
        out
    }
}

/// Resolves a cell to display text.
pub fn cell_str<'k, K: KbRead + ?Sized>(cell: &Cell, kb: &'k K) -> std::borrow::Cow<'k, str> {
    match cell {
        Cell::Term(id) => std::borrow::Cow::Borrowed(kb.resolve(*id).unwrap_or("?")),
        Cell::Count(n) => std::borrow::Cow::Owned(n.to_string()),
        Cell::Unbound => std::borrow::Cow::Borrowed("_"),
    }
}

/// Value comparison used by `FILTER` orderings and `ORDER BY`:
/// temporal if both sides parse as [`TimePoint`]s, then numeric if both
/// parse as integers, then lexicographic.
pub(crate) fn cmp_values(a: &str, b: &str) -> Ordering {
    match (TimePoint::parse(a), TimePoint::parse(b)) {
        (Some(x), Some(y)) => x.cmp(&y),
        _ => match (a.parse::<i64>(), b.parse::<i64>()) {
            (Ok(x), Ok(y)) => x.cmp(&y),
            _ => a.cmp(b),
        },
    }
}

fn cmp_cells<K: KbRead + ?Sized>(a: &Cell, b: &Cell, kb: &K) -> Ordering {
    match (a, b) {
        (Cell::Term(x), Cell::Term(y)) => {
            cmp_values(kb.resolve(*x).unwrap_or("?"), kb.resolve(*y).unwrap_or("?"))
        }
        (Cell::Count(x), Cell::Count(y)) => x.cmp(y),
        // Heterogeneous cells only happen in hand-crafted plans; order
        // them deterministically: counts < terms < unbound.
        (Cell::Count(_), Cell::Term(_)) => Ordering::Less,
        (Cell::Term(_), Cell::Count(_)) => Ordering::Greater,
        (Cell::Unbound, Cell::Unbound) => Ordering::Equal,
        (Cell::Unbound, _) => Ordering::Greater,
        (_, Cell::Unbound) => Ordering::Less,
    }
}

/// Executes a compiled plan against a KB view.
pub fn execute<K: KbRead + ?Sized>(plan: &Plan, kb: &K) -> QueryOutput {
    let cols: Vec<String> = plan.cols.iter().map(|c| c.name().to_string()).collect();
    let mut binding: Vec<Option<TermId>> = vec![None; plan.nvars];

    let mut rows: Vec<Vec<Cell>> = Vec::new();
    if plan.aggregate {
        // Group key → (representative projected-var values, one counter
        // per COUNT column). BTreeMap keeps group order deterministic.
        type GroupVal = (Vec<Option<TermId>>, Vec<u64>);
        let mut groups: BTreeMap<Vec<Option<TermId>>, GroupVal> = BTreeMap::new();
        let n_counts = plan.cols.iter().filter(|c| matches!(c, Col::Count { .. })).count();
        run(&plan.root, kb, &mut binding, &mut |b| {
            let key: Vec<Option<TermId>> = plan.group_by.iter().map(|&s| b[s]).collect();
            let entry = groups.entry(key).or_insert_with(|| {
                let rep = plan
                    .cols
                    .iter()
                    .map(|c| match c {
                        Col::Var { slot, .. } => b[*slot],
                        Col::Count { .. } => None,
                    })
                    .collect();
                (rep, vec![0u64; n_counts])
            });
            let mut ci = 0;
            for c in &plan.cols {
                if let Col::Count { arg, .. } = c {
                    let counted = match arg {
                        None => true,
                        Some(slot) => b[*slot].is_some(),
                    };
                    if counted {
                        entry.1[ci] += 1;
                    }
                    ci += 1;
                }
            }
        });
        for (_, (rep, counts)) in groups {
            let mut row = Vec::with_capacity(plan.cols.len());
            let mut ci = 0;
            for (c, repv) in plan.cols.iter().zip(&rep) {
                match c {
                    Col::Var { .. } => {
                        row.push(repv.map(Cell::Term).unwrap_or(Cell::Unbound));
                    }
                    Col::Count { .. } => {
                        row.push(Cell::Count(counts[ci]));
                        ci += 1;
                    }
                }
            }
            rows.push(row);
        }
    } else {
        run(&plan.root, kb, &mut binding, &mut |b| {
            let row: Vec<Cell> = plan
                .cols
                .iter()
                .map(|c| match c {
                    Col::Var { slot, .. } => b[*slot].map(Cell::Term).unwrap_or(Cell::Unbound),
                    Col::Count { .. } => Cell::Unbound,
                })
                .collect();
            rows.push(row);
        });
    }

    if plan.distinct {
        let mut seen: HashSet<Vec<Cell>> = HashSet::with_capacity(rows.len());
        rows.retain(|r| seen.insert(r.clone()));
    }

    if !plan.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(idx, desc) in &plan.order_by {
                let ord = cmp_cells(&a[idx], &b[idx], kb);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if plan.offset > 0 {
        rows.drain(..plan.offset.min(rows.len()));
    }
    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }

    QueryOutput { cols, rows }
}

/// Walks an operator, emitting every solution binding.
fn run<K: KbRead + ?Sized>(
    op: &PhysOp,
    kb: &K,
    b: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&mut Vec<Option<TermId>>),
) {
    match op {
        PhysOp::Steps(steps) => run_steps(steps, 0, kb, b, emit),
        PhysOp::Join(l, r) => {
            run(l, kb, b, &mut |b| run(r, kb, b, emit));
        }
        PhysOp::LeftJoin(l, r) => {
            run(l, kb, b, &mut |b| {
                let mut any = false;
                run(r, kb, b, &mut |b2| {
                    any = true;
                    emit(b2);
                });
                if !any {
                    emit(b);
                }
            });
        }
        PhysOp::Union(l, r) => {
            run(l, kb, b, emit);
            run(r, kb, b, emit);
        }
        PhysOp::Filter(inner, conds) => {
            run(inner, kb, b, &mut |b| {
                if conds.iter().all(|c| eval_cond(c, b, kb)) {
                    emit(b);
                }
            });
        }
        PhysOp::Empty => {}
    }
}

fn slot_value(slot: Slot, b: &[Option<TermId>]) -> Option<TermId> {
    match slot {
        Slot::Const(id) => Some(id),
        Slot::Var(v) => b[v],
    }
}

/// Binds `slot` to `value` if it is an unbound variable; returns
/// `Err(())` on an inconsistent repeated variable, `Ok(Some(v))` when
/// the slot was newly bound (and must be restored), `Ok(None)` when
/// nothing changed.
fn bind(slot: Slot, value: TermId, b: &mut [Option<TermId>]) -> Result<Option<usize>, ()> {
    match slot {
        Slot::Const(id) => {
            if id == value {
                Ok(None)
            } else {
                Err(())
            }
        }
        Slot::Var(v) => match b[v] {
            Some(existing) if existing == value => Ok(None),
            Some(_) => Err(()),
            None => {
                b[v] = Some(value);
                Ok(Some(v))
            }
        },
    }
}

fn run_steps<K: KbRead + ?Sized>(
    steps: &[Step],
    i: usize,
    kb: &K,
    b: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&mut Vec<Option<TermId>>),
) {
    let Some(step) = steps.get(i) else {
        emit(b);
        return;
    };
    match step {
        Step::Scan { s, p, o, at } => {
            let pattern =
                TriplePattern { s: slot_value(*s, b), p: slot_value(*p, b), o: slot_value(*o, b) };
            // Two iterator shapes (facts when a temporal restriction
            // needs spans, raw triples otherwise); process each triple
            // identically.
            let mut handle = |triple: kb_store::Triple, b: &mut Vec<Option<TermId>>| {
                let mut undo: [Option<usize>; 3] = [None; 3];
                let mut ok = true;
                for (k, (slot, value)) in
                    [(s, triple.s), (p, triple.p), (o, triple.o)].into_iter().enumerate()
                {
                    match bind(*slot, value, b) {
                        Ok(u) => undo[k] = u,
                        Err(()) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    run_steps(steps, i + 1, kb, b, emit);
                }
                for u in undo.into_iter().flatten() {
                    b[u] = None;
                }
            };
            match at {
                Some(point) => {
                    let facts: Vec<kb_store::Triple> =
                        kb.matching_at_iter(&pattern, point).map(|f| f.triple).collect();
                    for t in facts {
                        handle(t, b);
                    }
                }
                None => {
                    let triples: Vec<kb_store::Triple> = kb.triples_iter(&pattern).collect();
                    for t in triples {
                        handle(t, b);
                    }
                }
            }
        }
        Step::MergeRange { p1, s1, p2, s2, o } => {
            let mut it1 = kb.triples_iter(&TriplePattern::with_p(*p1)).peekable();
            let mut it2 = kb.triples_iter(&TriplePattern::with_p(*p2)).peekable();
            // POS buckets stream sorted by (o, s): merge on o, cross the
            // matching subject runs.
            let mut run1: Vec<TermId> = Vec::new();
            let mut run2: Vec<TermId> = Vec::new();
            while let (Some(t1), Some(t2)) = (it1.peek(), it2.peek()) {
                match t1.o.cmp(&t2.o) {
                    Ordering::Less => {
                        it1.next();
                    }
                    Ordering::Greater => {
                        it2.next();
                    }
                    Ordering::Equal => {
                        let obj = t1.o;
                        run1.clear();
                        run2.clear();
                        while it1.peek().is_some_and(|t| t.o == obj) {
                            run1.push(it1.next().expect("peeked").s);
                        }
                        while it2.peek().is_some_and(|t| t.o == obj) {
                            run2.push(it2.next().expect("peeked").s);
                        }
                        b[*o] = Some(obj);
                        for &sv1 in &run1 {
                            b[*s1] = Some(sv1);
                            for &sv2 in &run2 {
                                b[*s2] = Some(sv2);
                                run_steps(steps, i + 1, kb, b, emit);
                            }
                        }
                        b[*o] = None;
                        b[*s1] = None;
                        b[*s2] = None;
                    }
                }
            }
        }
    }
}

fn eval_cond<K: KbRead + ?Sized>(c: &CondC, b: &[Option<TermId>], kb: &K) -> bool {
    // Identity comparisons work on term ids; ordered comparisons
    // resolve to strings (constants keep their raw text so literals the
    // dictionary never interned still compare).
    let id_of = |op: &CondOperand| match op {
        CondOperand::Slot(s) => b[*s],
        CondOperand::Const { id, .. } => *id,
    };
    match c.op {
        CmpOp::Eq | CmpOp::Ne => {
            // An unbound variable satisfies no filter (SPARQL error →
            // row dropped). A constant unknown to the dictionary can
            // equal nothing and differ from everything bound.
            let lhs_bound = match &c.lhs {
                CondOperand::Slot(s) => b[*s].is_some(),
                CondOperand::Const { .. } => true,
            };
            let rhs_bound = match &c.rhs {
                CondOperand::Slot(s) => b[*s].is_some(),
                CondOperand::Const { .. } => true,
            };
            if !lhs_bound || !rhs_bound {
                return false;
            }
            let eq = match (id_of(&c.lhs), id_of(&c.rhs)) {
                (Some(x), Some(y)) => x == y,
                // At least one side is a never-interned constant: it
                // cannot equal any term.
                _ => false,
            };
            if c.op == CmpOp::Eq {
                eq
            } else {
                !eq
            }
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let text = |op: &CondOperand| -> Option<String> {
                match op {
                    CondOperand::Slot(s) => b[*s].and_then(|id| kb.resolve(id)).map(str::to_string),
                    CondOperand::Const { text, .. } => Some(text.clone()),
                }
            };
            let (Some(l), Some(r)) = (text(&c.lhs), text(&c.rhs)) else { return false };
            let ord = cmp_values(&l, &r);
            match c.op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::plan::plan;
    use crate::stats::StatsCatalog;
    use kb_store::{KbBuilder, KbSnapshot, TimeSpan};

    fn city_snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("San_Francisco", "locatedIn", "California");
        b.assert_str("San_Jose", "locatedIn", "California");
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "worksAt", "Apple_Inc");
        let t = kb_store::Triple::new(
            b.term("Steve_Jobs").unwrap(),
            b.term("worksAt").unwrap(),
            b.term("Apple_Inc").unwrap(),
        );
        let span = TimeSpan { begin: TimePoint::parse("1976"), end: TimePoint::parse("1985") };
        b.set_span(t, span);
        b.freeze()
    }

    fn solve(snap: &KbSnapshot, text: &str) -> QueryOutput {
        let q = parse(text).unwrap();
        let stats = StatsCatalog::build(snap);
        let p = plan(&q, snap, &stats).unwrap();
        execute(&p, snap)
    }

    #[test]
    fn conjunctive_join_binds_all_vars() {
        let s = city_snap();
        let out = solve(&s, "?p bornIn ?c . ?c locatedIn California");
        assert_eq!(out.cols, vec!["c", "p"]);
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched_rows() {
        let s = city_snap();
        let out = solve(&s, "SELECT ?p ?co WHERE { ?p bornIn ?c OPTIONAL { ?p founded ?co } }");
        assert_eq!(out.rows.len(), 2);
        let unbound = out.rows.iter().filter(|r| r[1] == Cell::Unbound).count();
        assert_eq!(unbound, 1, "Wozniak founded nothing here: {:?}", out.rows);
    }

    #[test]
    fn union_merges_branches() {
        let s = city_snap();
        let out = solve(
            &s,
            "SELECT ?x WHERE { { ?x bornIn San_Francisco } UNION { ?x bornIn San_Jose } }",
        );
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn filter_ne_and_temporal_restriction() {
        let s = city_snap();
        let out = solve(&s, "?a bornIn ?c . ?b bornIn ?c . FILTER(?a != ?b)");
        assert_eq!(out.rows.len(), 0, "different people, different cities here");
        let during = solve(&s, "?p worksAt ?e @1980");
        assert_eq!(during.rows.len(), 1);
        let after = solve(&s, "?p worksAt ?e @1999");
        assert_eq!(after.rows.len(), 0);
    }

    #[test]
    fn count_group_by_orders_deterministically() {
        let s = city_snap();
        let out = solve(
            &s,
            "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY DESC(?n) ?c",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][1], Cell::Count(1));
    }

    #[test]
    fn distinct_limit_offset() {
        let s = city_snap();
        let out = solve(&s, "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?c locatedIn ?st }");
        assert_eq!(out.rows.len(), 2);
        let out = solve(
            &s,
            "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?c locatedIn ?st } ORDER BY ?c LIMIT 1 OFFSET 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(cell_str(&out.rows[0][0], &s), "San_Jose");
    }

    #[test]
    fn temporal_filter_compares_years() {
        let mut b = KbBuilder::new();
        b.assert_str("e1", "happenedIn", "1969");
        b.assert_str("e2", "happenedIn", "1991");
        b.assert_str("e3", "happenedIn", "2004");
        let s = b.freeze();
        let out = solve(&s, "SELECT ?e WHERE { ?e happenedIn ?y . FILTER(?y < 2000) } ORDER BY ?e");
        assert_eq!(out.rows.len(), 2);
        // `2000` is not in the dictionary — ordered comparison still
        // works through the raw literal text.
        assert!(s.term("2000").is_none());
    }
}
