//! Vectorized push-based executor for physical [`Plan`]s.
//!
//! Execution walks the operator tree batch-at-a-time: operators consume
//! and produce columnar `Batch`es of up to [`BATCH_ROWS`] bindings
//! (one `u32` column per variable slot, a sentinel marking unbound
//! slots), and scans splice the store's own [`TripleBatch`] columns
//! straight into the output — no per-row iterator step on the hot path.
//! Filters evaluate into a bitmap and compact the batch in place.
//! Emission order is exactly the depth-first order of the tuple
//! executor, so results are byte-identical to [`execute_tuple`], which
//! is kept as the reference oracle (and for the differential tests).
//!
//! The executor is generic over any [`KbRead`] view, so the same
//! compiled plan runs against the builder-backed façade, an immutable
//! snapshot, or a segmented stack; only the monolithic unfiltered scan
//! path is specially vectorized by the store, the rest degrade to a
//! tuple merge inside [`kb_store::MatchBatches`] without changing
//! results.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Write as _;

use kb_store::{KbRead, KbReadBatch, TermId, TimePoint, Triple, TripleBatch, TriplePattern};

use crate::ast::CmpOp;
use crate::plan::{op_slots, Col, CondC, CondOperand, PhysOp, Plan, Slot, Step};

/// Batch granularity of the executor, re-exported from the store so the
/// two layers stay in lock-step.
pub use kb_store::BATCH_ROWS;

/// One projected value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A bound term.
    Term(TermId),
    /// An aggregate count.
    Count(u64),
    /// An unbound variable (possible under `OPTIONAL` and `UNION`).
    Unbound,
}

/// The materialized result of executing a plan: column names plus rows
/// of [`Cell`]s, already deduplicated/aggregated/ordered/sliced per the
/// plan's modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// Output column names, in projection order (no `?` prefix).
    pub cols: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Cell>>,
}

impl QueryOutput {
    /// Renders one row as `?col=value` pairs joined by two spaces — the
    /// same shape the legacy engine's `Bindings` display used, so CLI
    /// output stays familiar.
    pub fn render_row<K: KbRead + ?Sized>(&self, row: &[Cell], kb: &K) -> String {
        let mut out = String::new();
        self.render_row_into(row, kb, &mut out);
        out
    }

    /// Appends one rendered row to `out` without intermediate per-cell
    /// allocations.
    fn render_row_into<K: KbRead + ?Sized>(&self, row: &[Cell], kb: &K, out: &mut String) {
        for (i, (c, v)) in self.cols.iter().zip(row).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push('?');
            out.push_str(c);
            out.push('=');
            match v {
                Cell::Term(id) => out.push_str(kb.resolve(*id).unwrap_or("?")),
                Cell::Count(n) => {
                    let _ = write!(out, "{n}");
                }
                Cell::Unbound => out.push('_'),
            }
        }
    }

    /// Renders the whole result deterministically, one row per line.
    pub fn render<K: KbRead + ?Sized>(&self, kb: &K) -> String {
        let mut out = String::new();
        for row in &self.rows {
            self.render_row_into(row, kb, &mut out);
            out.push('\n');
        }
        out
    }
}

/// Resolves a cell to display text.
pub fn cell_str<'k, K: KbRead + ?Sized>(cell: &Cell, kb: &'k K) -> std::borrow::Cow<'k, str> {
    match cell {
        Cell::Term(id) => std::borrow::Cow::Borrowed(kb.resolve(*id).unwrap_or("?")),
        Cell::Count(n) => std::borrow::Cow::Owned(n.to_string()),
        Cell::Unbound => std::borrow::Cow::Borrowed("_"),
    }
}

/// Value comparison used by `FILTER` orderings and `ORDER BY`:
/// temporal if both sides parse as [`TimePoint`]s, then numeric if both
/// parse as integers, then lexicographic.
pub(crate) fn cmp_values(a: &str, b: &str) -> Ordering {
    match (TimePoint::parse(a), TimePoint::parse(b)) {
        (Some(x), Some(y)) => x.cmp(&y),
        _ => match (a.parse::<i64>(), b.parse::<i64>()) {
            (Ok(x), Ok(y)) => x.cmp(&y),
            _ => a.cmp(b),
        },
    }
}

pub(crate) fn cmp_cells<K: KbRead + ?Sized>(a: &Cell, b: &Cell, kb: &K) -> Ordering {
    match (a, b) {
        (Cell::Term(x), Cell::Term(y)) => {
            cmp_values(kb.resolve(*x).unwrap_or("?"), kb.resolve(*y).unwrap_or("?"))
        }
        (Cell::Count(x), Cell::Count(y)) => x.cmp(y),
        // Heterogeneous cells only happen in hand-crafted plans; order
        // them deterministically: counts < terms < unbound.
        (Cell::Count(_), Cell::Term(_)) => Ordering::Less,
        (Cell::Term(_), Cell::Count(_)) => Ordering::Greater,
        (Cell::Unbound, Cell::Unbound) => Ordering::Equal,
        (Cell::Unbound, _) => Ordering::Greater,
        (_, Cell::Unbound) => Ordering::Less,
    }
}

// ---------------------------------------------------------------------
// Columnar binding batches
// ---------------------------------------------------------------------

/// Sentinel marking an unbound variable slot inside a [`Batch`] column.
/// Term ids are dense dictionary indexes, so `u32::MAX` can never name
/// a real term at any scale this store supports.
const UNBOUND: u32 = u32::MAX;

/// A columnar batch of candidate bindings: one `u32` column per
/// variable slot, all columns the same length. The unit of work between
/// batch operators. `len` is tracked explicitly so zero-variable plans
/// (all-constant patterns) still carry a row count.
#[derive(Debug, Clone, Default)]
pub(crate) struct Batch {
    cols: Vec<Vec<u32>>,
    len: usize,
}

impl Batch {
    fn new(nvars: usize) -> Self {
        Self { cols: vec![Vec::new(); nvars], len: 0 }
    }

    /// The single all-unbound row every plan starts from.
    fn unit(nvars: usize) -> Self {
        Self { cols: vec![vec![UNBOUND]; nvars], len: 1 }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for c in &mut self.cols {
            c.clear();
        }
        self.len = 0;
    }

    fn get(&self, row: usize, slot: usize) -> Option<TermId> {
        match self.cols[slot][row] {
            UNBOUND => None,
            v => Some(TermId(v)),
        }
    }

    fn push_row_from(&mut self, src: &Batch, row: usize) {
        for (c, sc) in self.cols.iter_mut().zip(&src.cols) {
            c.push(sc[row]);
        }
        self.len += 1;
    }

    /// Keeps only the rows whose bit is set in `keep`, in place.
    fn compact(&mut self, keep: &[u64]) {
        let n = self.len;
        let kept = (0..n).filter(|r| keep[r / 64] >> (r % 64) & 1 == 1).count();
        for col in &mut self.cols {
            let mut w = 0;
            for r in 0..n {
                if keep[r / 64] >> (r % 64) & 1 == 1 {
                    col[w] = col[r];
                    w += 1;
                }
            }
            col.truncate(w);
        }
        self.len = kept;
    }
}

/// Per-run execution statistics collected by [`execute_traced`]:
/// actual rows out of every operator (aligned index-for-index with
/// [`Plan::ops`]), total batches flushed through BGP steps, and rows
/// reaching the root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    /// Actual output rows per operator slot, in [`Plan::ops`] order.
    pub op_rows: Vec<u64>,
    /// Columnar batches flushed through BGP pipeline steps.
    pub batches: u64,
    /// Rows emitted by the root operator (before DISTINCT/ORDER/LIMIT).
    pub rows: u64,
}

// ---------------------------------------------------------------------
// Shared projection / aggregation / finishing
// ---------------------------------------------------------------------

/// Group key → (representative projected-var values, one counter per
/// COUNT column). `BTreeMap` keeps group order deterministic.
type Groups = BTreeMap<Vec<Option<TermId>>, (Vec<Option<TermId>>, Vec<u64>)>;

fn count_cols(plan: &Plan) -> usize {
    plan.cols.iter().filter(|c| matches!(c, Col::Count { .. })).count()
}

fn agg_update(
    plan: &Plan,
    n_counts: usize,
    groups: &mut Groups,
    get: &dyn Fn(usize) -> Option<TermId>,
) {
    let key: Vec<Option<TermId>> = plan.group_by.iter().map(|&s| get(s)).collect();
    let entry = groups.entry(key).or_insert_with(|| {
        let rep = plan
            .cols
            .iter()
            .map(|c| match c {
                Col::Var { slot, .. } => get(*slot),
                Col::Count { .. } => None,
            })
            .collect();
        (rep, vec![0u64; n_counts])
    });
    let mut ci = 0;
    for c in &plan.cols {
        if let Col::Count { arg, .. } = c {
            let counted = match arg {
                None => true,
                Some(slot) => get(*slot).is_some(),
            };
            if counted {
                entry.1[ci] += 1;
            }
            ci += 1;
        }
    }
}

fn groups_to_rows(plan: &Plan, groups: Groups) -> Vec<Vec<Cell>> {
    let mut rows = Vec::with_capacity(groups.len());
    for (_, (rep, counts)) in groups {
        let mut row = Vec::with_capacity(plan.cols.len());
        let mut ci = 0;
        for (c, repv) in plan.cols.iter().zip(&rep) {
            match c {
                Col::Var { .. } => {
                    row.push(repv.map(Cell::Term).unwrap_or(Cell::Unbound));
                }
                Col::Count { .. } => {
                    row.push(Cell::Count(counts[ci]));
                    ci += 1;
                }
            }
        }
        rows.push(row);
    }
    rows
}

fn project_row(plan: &Plan, get: &dyn Fn(usize) -> Option<TermId>) -> Vec<Cell> {
    plan.cols
        .iter()
        .map(|c| match c {
            Col::Var { slot, .. } => get(*slot).map(Cell::Term).unwrap_or(Cell::Unbound),
            Col::Count { .. } => Cell::Unbound,
        })
        .collect()
}

/// DISTINCT → ORDER BY → OFFSET → LIMIT, shared by both executors.
fn finish_rows<K: KbRead + ?Sized>(plan: &Plan, rows: &mut Vec<Vec<Cell>>, kb: &K) {
    if plan.distinct {
        let mut seen: HashSet<Vec<Cell>> = HashSet::with_capacity(rows.len());
        rows.retain(|r| seen.insert(r.clone()));
    }

    if !plan.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for &(idx, desc) in &plan.order_by {
                let ord = cmp_cells(&a[idx], &b[idx], kb);
                let ord = if desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if plan.offset > 0 {
        rows.drain(..plan.offset.min(rows.len()));
    }
    if let Some(limit) = plan.limit {
        rows.truncate(limit);
    }
}

// ---------------------------------------------------------------------
// Batch executor (the default path)
// ---------------------------------------------------------------------

/// Executes a compiled plan against a KB view.
pub fn execute<K: KbRead + ?Sized>(plan: &Plan, kb: &K) -> QueryOutput {
    execute_traced(plan, kb).0
}

/// Executes a compiled plan, also returning per-operator actual row
/// counts and batch statistics for `--explain`.
pub fn execute_traced<K: KbRead + ?Sized>(plan: &Plan, kb: &K) -> (QueryOutput, ExecTrace) {
    let cols: Vec<String> = plan.cols.iter().map(|c| c.name().to_string()).collect();
    let mut trace = ExecTrace { op_rows: vec![0; op_slots(&plan.root)], batches: 0, rows: 0 };
    let mut input = Batch::unit(plan.nvars);

    let mut rows: Vec<Vec<Cell>>;
    if plan.aggregate {
        let n_counts = count_cols(plan);
        let mut groups = Groups::new();
        run_batch(&plan.root, 0, kb, &mut input, &mut trace, &mut |tr, b| {
            tr.rows += b.len() as u64;
            for row in 0..b.len() {
                agg_update(plan, n_counts, &mut groups, &|s| b.get(row, s));
            }
        });
        rows = groups_to_rows(plan, groups);
    } else {
        let mut out_rows: Vec<Vec<Cell>> = Vec::new();
        run_batch(&plan.root, 0, kb, &mut input, &mut trace, &mut |tr, b| {
            tr.rows += b.len() as u64;
            for row in 0..b.len() {
                out_rows.push(project_row(plan, &|s| b.get(row, s)));
            }
        });
        rows = out_rows;
    }

    finish_rows(plan, &mut rows, kb);
    (QueryOutput { cols, rows }, trace)
}

/// Walks an operator batch-at-a-time. `base` is the operator's first
/// trace slot (layout per [`op_slots`]). The callee may mutate `input`
/// freely — callers rebuild what they still need.
fn run_batch<K: KbRead + ?Sized>(
    op: &PhysOp,
    base: usize,
    kb: &K,
    input: &mut Batch,
    trace: &mut ExecTrace,
    sink: &mut dyn FnMut(&mut ExecTrace, &mut Batch),
) {
    if input.len() == 0 {
        return;
    }
    match op {
        PhysOp::Steps(steps) => run_steps_batch(steps, 0, base, kb, input, trace, sink),
        PhysOp::Join(l, r) => {
            let rbase = base + op_slots(l);
            run_batch(l, base, kb, input, trace, &mut |tr, lb| {
                run_batch(r, rbase, kb, lb, tr, sink);
            });
        }
        PhysOp::LeftJoin(l, r) => {
            let lbase = base + 1;
            let rbase = lbase + op_slots(l);
            // Row-at-a-time over the left's output: the tuple oracle
            // interleaves right matches with left fallbacks per left
            // row, and order must match byte-for-byte.
            run_batch(l, lbase, kb, input, trace, &mut |tr, lb| {
                let nvars = lb.cols.len();
                for row in 0..lb.len() {
                    let mut any = false;
                    let mut one = Batch::new(nvars);
                    one.push_row_from(lb, row);
                    run_batch(r, rbase, kb, &mut one, tr, &mut |tr, b| {
                        any = true;
                        tr.op_rows[base] += b.len() as u64;
                        sink(tr, b);
                    });
                    if !any {
                        let mut one = Batch::new(nvars);
                        one.push_row_from(lb, row);
                        tr.op_rows[base] += 1;
                        sink(tr, &mut one);
                    }
                }
            });
        }
        PhysOp::Union(l, r) => {
            let lbase = base + 1;
            let rbase = lbase + op_slots(l);
            let nvars = input.cols.len();
            let mut count = |tr: &mut ExecTrace, b: &mut Batch| {
                tr.op_rows[base] += b.len() as u64;
                sink(tr, b);
            };
            // Per input row so both branches see the same prefix in the
            // tuple oracle's order.
            for row in 0..input.len() {
                let mut one = Batch::new(nvars);
                one.push_row_from(input, row);
                run_batch(l, lbase, kb, &mut one, trace, &mut count);
                let mut one = Batch::new(nvars);
                one.push_row_from(input, row);
                run_batch(r, rbase, kb, &mut one, trace, &mut count);
            }
        }
        PhysOp::Filter(inner, conds) => {
            run_batch(inner, base + 1, kb, input, trace, &mut |tr, b| {
                let n = b.len();
                let mut keep = vec![0u64; n.div_ceil(64)];
                let mut kept = 0usize;
                for row in 0..n {
                    if conds.iter().all(|c| eval_cond_with(c, &|s| b.get(row, s), kb)) {
                        keep[row / 64] |= 1 << (row % 64);
                        kept += 1;
                    }
                }
                if kept == 0 {
                    return;
                }
                if kept < n {
                    b.compact(&keep);
                }
                tr.op_rows[base] += kept as u64;
                sink(tr, b);
            });
        }
        PhysOp::Empty => {}
    }
}

/// Flushes the accumulated output of step `i` into the rest of the
/// pipeline, recording its trace slot, then clears the batch for reuse.
fn flush_steps<K: KbRead + ?Sized>(
    steps: &[Step],
    i: usize,
    base: usize,
    kb: &K,
    out: &mut Batch,
    trace: &mut ExecTrace,
    sink: &mut dyn FnMut(&mut ExecTrace, &mut Batch),
) {
    if out.len() == 0 {
        return;
    }
    trace.op_rows[base + i] += out.len() as u64;
    trace.batches += 1;
    run_steps_batch(steps, i + 1, base, kb, out, trace, sink);
    out.clear();
}

fn comp_of(t: Triple, c: u8) -> TermId {
    match c {
        0 => t.s,
        1 => t.p,
        _ => t.o,
    }
}

/// Appends one matching triple to `out`: copies the input row, binds
/// the target slots from the triple, and enforces repeated-variable
/// equality (`dups`).
fn append_triple(
    out: &mut Batch,
    input: &Batch,
    row: usize,
    targets: &[(usize, u8)],
    dups: &[(u8, u8)],
    t: Triple,
) {
    for &(c0, c1) in dups {
        if comp_of(t, c0) != comp_of(t, c1) {
            return;
        }
    }
    for (slot, col) in out.cols.iter_mut().enumerate() {
        let v = match targets.iter().find(|tg| tg.0 == slot) {
            Some(&(_, c)) => comp_of(t, c).0,
            None => input.cols[slot][row],
        };
        col.push(v);
    }
    out.len += 1;
}

/// Appends a whole store batch to `out`. When the pattern has no
/// repeated unbound variable the copy is columnar: target columns are
/// spliced from the [`TripleBatch`], every other column repeats the
/// input row's value.
fn append_matches(
    out: &mut Batch,
    input: &Batch,
    row: usize,
    targets: &[(usize, u8)],
    dups: &[(u8, u8)],
    tb: &TripleBatch,
) {
    let n = tb.len();
    if n == 0 {
        return;
    }
    if dups.is_empty() {
        for (slot, col) in out.cols.iter_mut().enumerate() {
            match targets.iter().find(|tg| tg.0 == slot) {
                Some(&(_, c)) => {
                    let src = match c {
                        0 => &tb.s,
                        1 => &tb.p,
                        _ => &tb.o,
                    };
                    col.extend(src.iter().map(|id| id.0));
                }
                None => {
                    let v = input.cols[slot][row];
                    col.resize(col.len() + n, v);
                }
            }
        }
        out.len += n;
    } else {
        for r in 0..n {
            append_triple(out, input, row, targets, dups, tb.row(r));
        }
    }
}

/// Appends the cross product of one left subject against a run of
/// right subjects for a merge-range object, columnar.
#[allow(clippy::too_many_arguments)]
fn append_merge(
    out: &mut Batch,
    input: &Batch,
    row: usize,
    s1: usize,
    s2: usize,
    o: usize,
    sv1: u32,
    ov: u32,
    run2: &[u32],
) {
    let n = run2.len();
    for (slot, col) in out.cols.iter_mut().enumerate() {
        // Alias order matters when slots coincide: the tuple oracle
        // assigns o, then s1, then s2 — later assignments win.
        if slot == s2 {
            col.extend_from_slice(run2);
        } else if slot == s1 {
            col.resize(col.len() + n, sv1);
        } else if slot == o {
            col.resize(col.len() + n, ov);
        } else {
            let v = input.cols[slot][row];
            col.resize(col.len() + n, v);
        }
    }
    out.len += n;
}

/// Buffered reader over [`MatchBatches`] for the merge-range co-scan:
/// peek the current object, consume one row, or take the whole run of
/// subjects sharing an object.
struct TripleStream<'a> {
    mb: kb_store::MatchBatches<'a>,
    buf: TripleBatch,
    pos: usize,
}

impl<'a> TripleStream<'a> {
    fn new(mb: kb_store::MatchBatches<'a>) -> Self {
        Self { mb, buf: TripleBatch::new(), pos: 0 }
    }

    /// Ensures at least one unread row is buffered.
    fn fill(&mut self) -> bool {
        while self.pos >= self.buf.len() {
            self.pos = 0;
            if !self.mb.next_batch(&mut self.buf) {
                return false;
            }
        }
        true
    }

    fn peek_o(&mut self) -> Option<TermId> {
        if self.fill() {
            Some(self.buf.o[self.pos])
        } else {
            None
        }
    }

    fn skip_one(&mut self) {
        self.pos += 1;
    }

    /// Consumes the maximal run of rows whose object equals `obj`,
    /// collecting their raw subject ids.
    fn take_run(&mut self, obj: TermId, out: &mut Vec<u32>) {
        out.clear();
        loop {
            if !self.fill() {
                return;
            }
            while self.pos < self.buf.len() && self.buf.o[self.pos] == obj {
                out.push(self.buf.s[self.pos].0);
                self.pos += 1;
            }
            if self.pos < self.buf.len() {
                return;
            }
        }
    }
}

fn run_steps_batch<K: KbRead + ?Sized>(
    steps: &[Step],
    i: usize,
    base: usize,
    kb: &K,
    input: &mut Batch,
    trace: &mut ExecTrace,
    sink: &mut dyn FnMut(&mut ExecTrace, &mut Batch),
) {
    let Some(step) = steps.get(i) else {
        if input.len() > 0 {
            sink(trace, input);
        }
        return;
    };
    let nvars = input.cols.len();
    let mut out = Batch::new(nvars);
    match step {
        Step::Scan { s, p, o, at } => {
            let mut targets: Vec<(usize, u8)> = Vec::new();
            let mut dups: Vec<(u8, u8)> = Vec::new();
            let mut tb = TripleBatch::new();
            for row in 0..input.len() {
                targets.clear();
                dups.clear();
                let mut pat: [Option<TermId>; 3] = [None; 3];
                for (c, slot) in [s, p, o].into_iter().enumerate() {
                    match *slot {
                        Slot::Const(id) => pat[c] = Some(id),
                        Slot::Var(v) => match input.get(row, v) {
                            Some(id) => pat[c] = Some(id),
                            None => match targets.iter().find(|tg| tg.0 == v) {
                                Some(&(_, c0)) => dups.push((c0, c as u8)),
                                None => targets.push((v, c as u8)),
                            },
                        },
                    }
                }
                let pattern = TriplePattern { s: pat[0], p: pat[1], o: pat[2] };
                match at {
                    Some(point) => {
                        for f in kb.matching_at_iter(&pattern, point) {
                            append_triple(&mut out, input, row, &targets, &dups, f.triple);
                            if out.len() >= BATCH_ROWS {
                                flush_steps(steps, i, base, kb, &mut out, trace, sink);
                            }
                        }
                    }
                    None => {
                        let mut mb = kb.matching_batches(&pattern);
                        while mb.next_batch(&mut tb) {
                            append_matches(&mut out, input, row, &targets, &dups, &tb);
                            if out.len() >= BATCH_ROWS {
                                flush_steps(steps, i, base, kb, &mut out, trace, sink);
                            }
                        }
                    }
                }
            }
        }
        Step::MergeRange { p1, s1, p2, s2, o } => {
            let mut run1: Vec<u32> = Vec::new();
            let mut run2: Vec<u32> = Vec::new();
            for row in 0..input.len() {
                let mut st1 = TripleStream::new(kb.matching_batches(&TriplePattern::with_p(*p1)));
                let mut st2 = TripleStream::new(kb.matching_batches(&TriplePattern::with_p(*p2)));
                // POS buckets stream sorted by (o, s): merge on o, cross
                // the matching subject runs.
                while let (Some(o1), Some(o2)) = (st1.peek_o(), st2.peek_o()) {
                    match o1.cmp(&o2) {
                        Ordering::Less => st1.skip_one(),
                        Ordering::Greater => st2.skip_one(),
                        Ordering::Equal => {
                            let obj = o1;
                            st1.take_run(obj, &mut run1);
                            st2.take_run(obj, &mut run2);
                            for &sv1 in &run1 {
                                append_merge(&mut out, input, row, *s1, *s2, *o, sv1, obj.0, &run2);
                                if out.len() >= BATCH_ROWS {
                                    flush_steps(steps, i, base, kb, &mut out, trace, sink);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    flush_steps(steps, i, base, kb, &mut out, trace, sink);
}

// ---------------------------------------------------------------------
// Tuple executor (reference oracle)
// ---------------------------------------------------------------------

/// Executes a compiled plan tuple-at-a-time with a single mutable
/// binding array — the original executor, kept as the reference oracle
/// for the batch path. Results are byte-identical to [`execute`],
/// including row order.
pub fn execute_tuple<K: KbRead + ?Sized>(plan: &Plan, kb: &K) -> QueryOutput {
    let cols: Vec<String> = plan.cols.iter().map(|c| c.name().to_string()).collect();
    let mut binding: Vec<Option<TermId>> = vec![None; plan.nvars];

    let mut rows: Vec<Vec<Cell>>;
    if plan.aggregate {
        let n_counts = count_cols(plan);
        let mut groups = Groups::new();
        run(&plan.root, kb, &mut binding, &mut |b| {
            agg_update(plan, n_counts, &mut groups, &|s| b[s]);
        });
        rows = groups_to_rows(plan, groups);
    } else {
        let mut out_rows: Vec<Vec<Cell>> = Vec::new();
        run(&plan.root, kb, &mut binding, &mut |b| {
            out_rows.push(project_row(plan, &|s| b[s]));
        });
        rows = out_rows;
    }

    finish_rows(plan, &mut rows, kb);
    QueryOutput { cols, rows }
}

/// Walks an operator, emitting every solution binding.
fn run<K: KbRead + ?Sized>(
    op: &PhysOp,
    kb: &K,
    b: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&mut Vec<Option<TermId>>),
) {
    match op {
        PhysOp::Steps(steps) => run_steps(steps, 0, kb, b, emit),
        PhysOp::Join(l, r) => {
            run(l, kb, b, &mut |b| run(r, kb, b, emit));
        }
        PhysOp::LeftJoin(l, r) => {
            run(l, kb, b, &mut |b| {
                let mut any = false;
                run(r, kb, b, &mut |b2| {
                    any = true;
                    emit(b2);
                });
                if !any {
                    emit(b);
                }
            });
        }
        PhysOp::Union(l, r) => {
            run(l, kb, b, emit);
            run(r, kb, b, emit);
        }
        PhysOp::Filter(inner, conds) => {
            run(inner, kb, b, &mut |b| {
                if conds.iter().all(|c| eval_cond(c, b, kb)) {
                    emit(b);
                }
            });
        }
        PhysOp::Empty => {}
    }
}

fn slot_value(slot: Slot, b: &[Option<TermId>]) -> Option<TermId> {
    match slot {
        Slot::Const(id) => Some(id),
        Slot::Var(v) => b[v],
    }
}

/// Binds `slot` to `value` if it is an unbound variable; returns
/// `Err(())` on an inconsistent repeated variable, `Ok(Some(v))` when
/// the slot was newly bound (and must be restored), `Ok(None)` when
/// nothing changed.
fn bind(slot: Slot, value: TermId, b: &mut [Option<TermId>]) -> Result<Option<usize>, ()> {
    match slot {
        Slot::Const(id) => {
            if id == value {
                Ok(None)
            } else {
                Err(())
            }
        }
        Slot::Var(v) => match b[v] {
            Some(existing) if existing == value => Ok(None),
            Some(_) => Err(()),
            None => {
                b[v] = Some(value);
                Ok(Some(v))
            }
        },
    }
}

fn run_steps<K: KbRead + ?Sized>(
    steps: &[Step],
    i: usize,
    kb: &K,
    b: &mut Vec<Option<TermId>>,
    emit: &mut dyn FnMut(&mut Vec<Option<TermId>>),
) {
    let Some(step) = steps.get(i) else {
        emit(b);
        return;
    };
    match step {
        Step::Scan { s, p, o, at } => {
            let pattern =
                TriplePattern { s: slot_value(*s, b), p: slot_value(*p, b), o: slot_value(*o, b) };
            // Two iterator shapes (facts when a temporal restriction
            // needs spans, raw triples otherwise); process each triple
            // identically.
            let mut handle = |triple: kb_store::Triple, b: &mut Vec<Option<TermId>>| {
                let mut undo: [Option<usize>; 3] = [None; 3];
                let mut ok = true;
                for (k, (slot, value)) in
                    [(s, triple.s), (p, triple.p), (o, triple.o)].into_iter().enumerate()
                {
                    match bind(*slot, value, b) {
                        Ok(u) => undo[k] = u,
                        Err(()) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    run_steps(steps, i + 1, kb, b, emit);
                }
                for u in undo.into_iter().flatten() {
                    b[u] = None;
                }
            };
            match at {
                Some(point) => {
                    let facts: Vec<kb_store::Triple> =
                        kb.matching_at_iter(&pattern, point).map(|f| f.triple).collect();
                    for t in facts {
                        handle(t, b);
                    }
                }
                None => {
                    let triples: Vec<kb_store::Triple> = kb.triples_iter(&pattern).collect();
                    for t in triples {
                        handle(t, b);
                    }
                }
            }
        }
        Step::MergeRange { p1, s1, p2, s2, o } => {
            let mut it1 = kb.triples_iter(&TriplePattern::with_p(*p1)).peekable();
            let mut it2 = kb.triples_iter(&TriplePattern::with_p(*p2)).peekable();
            // POS buckets stream sorted by (o, s): merge on o, cross the
            // matching subject runs.
            let mut run1: Vec<TermId> = Vec::new();
            let mut run2: Vec<TermId> = Vec::new();
            while let (Some(t1), Some(t2)) = (it1.peek(), it2.peek()) {
                match t1.o.cmp(&t2.o) {
                    Ordering::Less => {
                        it1.next();
                    }
                    Ordering::Greater => {
                        it2.next();
                    }
                    Ordering::Equal => {
                        let obj = t1.o;
                        run1.clear();
                        run2.clear();
                        while it1.peek().is_some_and(|t| t.o == obj) {
                            run1.push(it1.next().expect("peeked").s);
                        }
                        while it2.peek().is_some_and(|t| t.o == obj) {
                            run2.push(it2.next().expect("peeked").s);
                        }
                        b[*o] = Some(obj);
                        for &sv1 in &run1 {
                            b[*s1] = Some(sv1);
                            for &sv2 in &run2 {
                                b[*s2] = Some(sv2);
                                run_steps(steps, i + 1, kb, b, emit);
                            }
                        }
                        b[*o] = None;
                        b[*s1] = None;
                        b[*s2] = None;
                    }
                }
            }
        }
    }
}

/// [`eval_cond`] generalized over the binding lookup, so the batch
/// executor can evaluate straight out of a columnar batch row (and the
/// view maintainer out of a delta-join binding).
pub(crate) fn eval_cond_with<K: KbRead + ?Sized>(
    c: &CondC,
    get: &dyn Fn(usize) -> Option<TermId>,
    kb: &K,
) -> bool {
    // Identity comparisons work on term ids; ordered comparisons
    // resolve to strings (constants keep their raw text so literals the
    // dictionary never interned still compare).
    let id_of = |op: &CondOperand| match op {
        CondOperand::Slot(s) => get(*s),
        CondOperand::Const { id, .. } => *id,
    };
    match c.op {
        CmpOp::Eq | CmpOp::Ne => {
            // An unbound variable satisfies no filter (SPARQL error →
            // row dropped). A constant unknown to the dictionary can
            // equal nothing and differ from everything bound.
            let lhs_bound = match &c.lhs {
                CondOperand::Slot(s) => get(*s).is_some(),
                CondOperand::Const { .. } => true,
            };
            let rhs_bound = match &c.rhs {
                CondOperand::Slot(s) => get(*s).is_some(),
                CondOperand::Const { .. } => true,
            };
            if !lhs_bound || !rhs_bound {
                return false;
            }
            let eq = match (id_of(&c.lhs), id_of(&c.rhs)) {
                (Some(x), Some(y)) => x == y,
                // At least one side is a never-interned constant: it
                // cannot equal any term.
                _ => false,
            };
            if c.op == CmpOp::Eq {
                eq
            } else {
                !eq
            }
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            let text = |op: &CondOperand| -> Option<String> {
                match op {
                    CondOperand::Slot(s) => {
                        get(*s).and_then(|id| kb.resolve(id)).map(str::to_string)
                    }
                    CondOperand::Const { text, .. } => Some(text.clone()),
                }
            };
            let (Some(l), Some(r)) = (text(&c.lhs), text(&c.rhs)) else { return false };
            let ord = cmp_values(&l, &r);
            match c.op {
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

fn eval_cond<K: KbRead + ?Sized>(c: &CondC, b: &[Option<TermId>], kb: &K) -> bool {
    eval_cond_with(c, &|s| b[s], kb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use crate::plan::plan;
    use crate::stats::StatsCatalog;
    use kb_store::{KbBuilder, KbSnapshot, TimeSpan};

    fn city_snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("San_Francisco", "locatedIn", "California");
        b.assert_str("San_Jose", "locatedIn", "California");
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "worksAt", "Apple_Inc");
        let t = kb_store::Triple::new(
            b.term("Steve_Jobs").unwrap(),
            b.term("worksAt").unwrap(),
            b.term("Apple_Inc").unwrap(),
        );
        let span = TimeSpan { begin: TimePoint::parse("1976"), end: TimePoint::parse("1985") };
        b.set_span(t, span);
        b.freeze()
    }

    fn solve(snap: &KbSnapshot, text: &str) -> QueryOutput {
        let q = parse(text).unwrap();
        let stats = StatsCatalog::build(snap);
        let p = plan(&q, snap, &stats).unwrap();
        let out = execute(&p, snap);
        // Every test doubles as a differential check against the tuple
        // oracle, including row order.
        assert_eq!(out, execute_tuple(&p, snap), "batch/tuple divergence on {text:?}");
        out
    }

    #[test]
    fn conjunctive_join_binds_all_vars() {
        let s = city_snap();
        let out = solve(&s, "?p bornIn ?c . ?c locatedIn California");
        assert_eq!(out.cols, vec!["c", "p"]);
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched_rows() {
        let s = city_snap();
        let out = solve(&s, "SELECT ?p ?co WHERE { ?p bornIn ?c OPTIONAL { ?p founded ?co } }");
        assert_eq!(out.rows.len(), 2);
        let unbound = out.rows.iter().filter(|r| r[1] == Cell::Unbound).count();
        assert_eq!(unbound, 1, "Wozniak founded nothing here: {:?}", out.rows);
    }

    #[test]
    fn union_merges_branches() {
        let s = city_snap();
        let out = solve(
            &s,
            "SELECT ?x WHERE { { ?x bornIn San_Francisco } UNION { ?x bornIn San_Jose } }",
        );
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn filter_ne_and_temporal_restriction() {
        let s = city_snap();
        let out = solve(&s, "?a bornIn ?c . ?b bornIn ?c . FILTER(?a != ?b)");
        assert_eq!(out.rows.len(), 0, "different people, different cities here");
        let during = solve(&s, "?p worksAt ?e @1980");
        assert_eq!(during.rows.len(), 1);
        let after = solve(&s, "?p worksAt ?e @1999");
        assert_eq!(after.rows.len(), 0);
    }

    #[test]
    fn count_group_by_orders_deterministically() {
        let s = city_snap();
        let out = solve(
            &s,
            "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY DESC(?n) ?c",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][1], Cell::Count(1));
    }

    #[test]
    fn distinct_limit_offset() {
        let s = city_snap();
        let out = solve(&s, "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?c locatedIn ?st }");
        assert_eq!(out.rows.len(), 2);
        let out = solve(
            &s,
            "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?c locatedIn ?st } ORDER BY ?c LIMIT 1 OFFSET 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(cell_str(&out.rows[0][0], &s), "San_Jose");
    }

    #[test]
    fn temporal_filter_compares_years() {
        let mut b = KbBuilder::new();
        b.assert_str("e1", "happenedIn", "1969");
        b.assert_str("e2", "happenedIn", "1991");
        b.assert_str("e3", "happenedIn", "2004");
        let s = b.freeze();
        let out = solve(&s, "SELECT ?e WHERE { ?e happenedIn ?y . FILTER(?y < 2000) } ORDER BY ?e");
        assert_eq!(out.rows.len(), 2);
        // `2000` is not in the dictionary — ordered comparison still
        // works through the raw literal text.
        assert!(s.term("2000").is_none());
    }

    #[test]
    fn repeated_variable_in_pattern_matches_reflexive_triples() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "knows", "a");
        b.assert_str("a", "knows", "b");
        b.assert_str("b", "knows", "b");
        let s = b.freeze();
        let out = solve(&s, "SELECT ?x WHERE { ?x knows ?x } ORDER BY ?x");
        assert_eq!(out.rows.len(), 2);
        assert_eq!(cell_str(&out.rows[0][0], &s), "a");
    }

    #[test]
    fn trace_rows_align_with_plan_ops() {
        let s = city_snap();
        let q = parse("?p bornIn ?c . ?c locatedIn ?st . FILTER(?st = California)").unwrap();
        let stats = StatsCatalog::build(&s);
        let p = plan(&q, &s, &stats).unwrap();
        let (out, trace) = execute_traced(&p, &s);
        assert_eq!(p.ops().len(), trace.op_rows.len());
        assert!(trace.batches > 0);
        assert_eq!(trace.rows as usize, out.rows.len());
        // The root FILTER sits at slot 0; its output is the emitted
        // total.
        assert!(p.ops()[0].label.starts_with("filter"), "{:?}", p.ops());
        assert_eq!(trace.op_rows[0], trace.rows);
    }

    #[test]
    fn batch_flushes_split_large_scans_without_changing_results() {
        let mut b = KbBuilder::new();
        for i in 0..(BATCH_ROWS * 3 + 17) {
            b.assert_str(&format!("s{i}"), "rel", &format!("o{}", i % 50));
        }
        let s = b.freeze();
        let q = parse("?x rel ?y").unwrap();
        let stats = StatsCatalog::build(&s);
        let p = plan(&q, &s, &stats).unwrap();
        let (out, trace) = execute_traced(&p, &s);
        assert_eq!(out.rows.len(), BATCH_ROWS * 3 + 17);
        assert!(trace.batches >= 4, "expected ≥4 flushed batches: {trace:?}");
        assert_eq!(out, execute_tuple(&p, &s));
    }
}
