//! Standing queries with incremental view maintenance (IVM).
//!
//! A [`ViewRegistry`] holds SELECT / COUNT+GROUP BY queries registered
//! as *materialized standing views*. On every delta install the
//! registry patches each affected view's materialized answer from the
//! delta itself instead of re-executing the query:
//!
//! 1. The install's [`DeltaSegment`] is lowered to a **signed set of
//!    fact changes** — `New` entries contribute `+1`, `Tombstone`
//!    entries `−1` (using the *old* view's visible fact, so temporal
//!    `@t` restrictions see the span that actually matched), and
//!    `Shadow` entries a `−old/+new` pair when the evidence merge
//!    changed the fact's span (confidence and provenance are invisible
//!    to query answers, so span-preserving shadows contribute nothing).
//! 2. Each standing view's plan is flattened to its scan list
//!    `S₁ … Sₙ` plus filters, and the classic telescoping decomposition
//!    `Δ(S₁ ⋈ … ⋈ Sₙ) = Σᵢ  Sⱼ₍ⱼ₌₁…ᵢ₋₁₎(new) ⋈ ΔSᵢ ⋈ Sⱼ₍ⱼ₌ᵢ₊₁…ₙ₎(old)`
//!    enumerates exactly the result rows whose multiplicity changed,
//!    with the sign carried through the join.
//! 3. The signed rows patch the view's state — a row multiset for
//!    plain SELECTs, a signed per-group counter map for COUNT+GROUP BY
//!    — and the materialized output is rebuilt from that state in
//!    **canonical order** (total row order, then the plan's ORDER BY
//!    keys as a stable pass), so a patched answer is byte-identical to
//!    a canonicalized full re-execution.
//!
//! Plan shapes outside the incrementally-maintainable fragment —
//! `OPTIONAL` (non-monotone left joins), `UNION` bag semantics,
//! `LIMIT`/`OFFSET` windows, and plans pinned to constants the
//! dictionary had not interned at registration time — **fall back** to
//! re-planning and re-executing on every touched install. The
//! [`maintainability`] classifier that decides this is public, and
//! `kbkit query --explain` prints its verdict.
//!
//! The registry is storage-agnostic: maintenance takes the old and new
//! views as plain [`KbRead`] values, so the same code patches views
//! over a monolithic [`SegmentedSnapshot`](kb_store::SegmentedSnapshot)
//! in `QueryService` and over a scan-merged partitioned view in
//! `kb-serve`'s router.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use kb_obs::{Clock, Counter, Gauge, Histogram, Registry, SpanTimer};
use kb_store::{DeltaSegment, Fact, FactKind, KbRead, TermId, Triple, TriplePattern};

use crate::error::QueryError;
use crate::exec::{cmp_cells, eval_cond_with, execute, Cell, QueryOutput};
use crate::parse::parse;
use crate::plan::{plan as compile, Col, CondC, CondOperand, PhysOp, Plan, Slot, Step};
use crate::stats::StatsCatalog;

/// Handle to one registered standing view. Ids are registry-scoped and
/// never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub u64);

impl std::fmt::Display for ViewId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "view#{}", self.0)
    }
}

/// Whether a compiled plan's answer can be maintained incrementally
/// from delta segments, or must be re-executed on every touched
/// install.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maintainability {
    /// Conjunctive SELECT / COUNT+GROUP BY: patched via signed
    /// delta joins.
    Incremental,
    /// The plan shape defeats delta patching; the view re-executes.
    Fallback(&'static str),
}

impl Maintainability {
    /// One-line human description, used by `--explain`.
    pub fn describe(&self) -> String {
        match self {
            Maintainability::Incremental => "delta-patchable (incremental maintenance)".into(),
            Maintainability::Fallback(reason) => {
                format!("re-execute on delta ({reason})")
            }
        }
    }

    /// Whether the plan is delta-patchable.
    pub fn is_incremental(&self) -> bool {
        matches!(self, Maintainability::Incremental)
    }
}

/// One scan of the flattened conjunctive fragment (merge-ranges
/// decompose into their two equivalent scans — the fusion is a physical
/// optimization, not a semantic one).
#[derive(Debug, Clone)]
struct ScanSpec {
    s: Slot,
    p: Slot,
    o: Slot,
    at: Option<kb_store::TimePoint>,
}

/// Flattens a physical operator tree into scans + hoisted filters.
/// Conjunctive plans attach every filter above the full join (single
/// group, no OPTIONAL/UNION), so hoisting preserves semantics exactly.
fn flatten(
    op: &PhysOp,
    scans: &mut Vec<ScanSpec>,
    filters: &mut Vec<CondC>,
) -> Result<(), &'static str> {
    match op {
        PhysOp::Steps(steps) => {
            for step in steps {
                match step {
                    Step::Scan { s, p, o, at } => {
                        scans.push(ScanSpec { s: *s, p: *p, o: *o, at: *at });
                    }
                    Step::MergeRange { p1, s1, p2, s2, o } => {
                        scans.push(ScanSpec {
                            s: Slot::Var(*s1),
                            p: Slot::Const(*p1),
                            o: Slot::Var(*o),
                            at: None,
                        });
                        scans.push(ScanSpec {
                            s: Slot::Var(*s2),
                            p: Slot::Const(*p2),
                            o: Slot::Var(*o),
                            at: None,
                        });
                    }
                }
            }
            Ok(())
        }
        PhysOp::Join(l, r) => {
            flatten(l, scans, filters)?;
            flatten(r, scans, filters)
        }
        PhysOp::Filter(inner, conds) => {
            flatten(inner, scans, filters)?;
            filters.extend(conds.iter().cloned());
            Ok(())
        }
        PhysOp::LeftJoin(..) => Err("OPTIONAL is non-monotone"),
        PhysOp::Union(..) => Err("UNION bag semantics"),
        PhysOp::Empty => Err("plan pinned to a never-interned constant"),
    }
}

/// Classifies a compiled plan: incrementally maintainable, or doomed to
/// re-execution (and why). Public so `--explain` can print the verdict
/// clients will observe when they register the query as a standing
/// view.
pub fn maintainability(plan: &Plan) -> Maintainability {
    if plan.limit.is_some() || plan.offset > 0 {
        return Maintainability::Fallback("LIMIT/OFFSET window over the full answer");
    }
    let mut scans = Vec::new();
    let mut filters = Vec::new();
    if let Err(reason) = flatten(&plan.root, &mut scans, &mut filters) {
        return Maintainability::Fallback(reason);
    }
    for c in &filters {
        for operand in [&c.lhs, &c.rhs] {
            if matches!(operand, CondOperand::Const { id: None, .. }) {
                return Maintainability::Fallback("filter constant not interned at plan time");
            }
        }
    }
    Maintainability::Incremental
}

// ---------------------------------------------------------------------
// Canonical row order
// ---------------------------------------------------------------------

/// Total order on cells: the executor's value comparison
/// ([`cmp_cells`]) refined by raw-id tiebreaks, so distinct cells never
/// compare equal (two different terms can compare value-equal, e.g.
/// `1969` vs `01969` both parsing to the same integer).
fn cmp_cell_total<K: KbRead + ?Sized>(a: &Cell, b: &Cell, kb: &K) -> std::cmp::Ordering {
    cmp_cells(a, b, kb).then_with(|| match (a, b) {
        (Cell::Term(x), Cell::Term(y)) => x.cmp(y),
        (Cell::Count(x), Cell::Count(y)) => x.cmp(y),
        _ => std::cmp::Ordering::Equal,
    })
}

fn cmp_row_total<K: KbRead + ?Sized>(a: &[Cell], b: &[Cell], kb: &K) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = cmp_cell_total(x, y, kb);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// The canonical standing-view row order: the plan's ORDER BY keys
/// first, ties broken by the total row order. Equivalent to a total
/// sort followed by a stable ORDER BY pass, but usable as a single
/// comparator — which is what lets the patch path binary-search an
/// already-canonical answer instead of re-sorting it.
fn cmp_canonical<K: KbRead + ?Sized>(
    plan: &Plan,
    a: &[Cell],
    b: &[Cell],
    kb: &K,
) -> std::cmp::Ordering {
    for &(idx, desc) in &plan.order_by {
        let ord = cmp_cell_total(&a[idx], &b[idx], kb);
        let ord = if desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    cmp_row_total(a, b, kb)
}

/// Sorts `rows` into the canonical standing-view order. Both the
/// delta-patched path and full re-execution canonicalize through this
/// one order, which is what makes "byte-identical" well-defined even
/// though raw executor row order depends on the join order.
pub fn canonical_sort<K: KbRead + ?Sized>(plan: &Plan, rows: &mut [Vec<Cell>], kb: &K) {
    rows.sort_by(|a, b| cmp_canonical(plan, a, b, kb));
}

/// Splices canonically sorted `added`/`removed` multisets into an
/// already-canonical row vector without re-sorting it: binary searches
/// locate every edit (O((a+r)·log n) cell comparisons — each of which
/// may resolve term strings, so keeping them off the O(n) path
/// matters), then one linear pass rebuilds the vector. This keeps
/// per-install maintenance cost proportional to the delta, not to the
/// answer.
fn patch_sorted_rows<K: KbRead + ?Sized>(
    plan: &Plan,
    rows: &[Vec<Cell>],
    added: &[Vec<Cell>],
    removed: &[Vec<Cell>],
    kb: &K,
) -> Vec<Vec<Cell>> {
    use std::cmp::Ordering;
    // Removal indices. `removed` is sorted and is a sub-multiset of
    // `rows`; canonically equal rows are identical, so consecutive
    // duplicates take successive indices.
    let mut remove_at: Vec<usize> = Vec::with_capacity(removed.len());
    for r in removed {
        let lo = rows.partition_point(|x| cmp_canonical(plan, x, r, kb) == Ordering::Less);
        let i = lo.max(remove_at.last().map_or(0, |&l| l + 1));
        debug_assert!(i < rows.len() && rows[i] == *r, "removed row missing from the view");
        remove_at.push(i);
    }
    // Insertion points (non-decreasing, since `added` is sorted).
    let insert_at: Vec<usize> = added
        .iter()
        .map(|a| rows.partition_point(|x| cmp_canonical(plan, x, a, kb) == Ordering::Less))
        .collect();
    let mut out = Vec::with_capacity(rows.len() + added.len() - removed.len());
    let (mut ai, mut ri) = (0, 0);
    for (i, row) in rows.iter().enumerate() {
        while ai < added.len() && insert_at[ai] == i {
            out.push(added[ai].clone());
            ai += 1;
        }
        if ri < remove_at.len() && remove_at[ri] == i {
            ri += 1;
            continue;
        }
        out.push(row.clone());
    }
    out.extend(added[ai..].iter().cloned());
    out
}

/// A query output re-sorted into canonical standing-view order —
/// the reference form the differential tests compare patched views
/// against.
pub fn canonical_output<K: KbRead + ?Sized>(plan: &Plan, out: &QueryOutput, kb: &K) -> QueryOutput {
    let mut rows = out.rows.clone();
    canonical_sort(plan, &mut rows, kb);
    QueryOutput { cols: out.cols.clone(), rows }
}

// ---------------------------------------------------------------------
// Signed delta evaluation
// ---------------------------------------------------------------------

/// One triple-level change: the fact (with the span that was or becomes
/// visible) and its sign (+1 inserted, −1 retracted).
struct SignedFact {
    fact: Fact,
    sign: i64,
}

/// Lowers a delta segment to signed fact changes, resolving tombstones
/// and shadows against the *pre-install* view.
fn signed_changes<K: KbRead + ?Sized>(delta: &DeltaSegment, old: &K) -> Vec<SignedFact> {
    let mut out = Vec::with_capacity(delta.len());
    for (fact, kind) in delta.entries_iter() {
        match kind {
            FactKind::New => out.push(SignedFact { fact: fact.clone(), sign: 1 }),
            FactKind::Tombstone => {
                // The delta's tombstone entry carries no span; the
                // retraction removes the *visible* fact, span included.
                if let Some(seen) = old.fact_for(&fact.triple) {
                    out.push(SignedFact { fact: seen.clone(), sign: -1 });
                }
            }
            FactKind::Shadow => {
                // Shadows merge evidence. Confidence and provenance are
                // invisible to answers; only a span change (None →
                // Some, per the first-known-span merge rule) can move
                // query results.
                let old_fact = old.fact_for(&fact.triple);
                match old_fact {
                    Some(seen) if seen.span == fact.span => {}
                    Some(seen) => {
                        out.push(SignedFact { fact: seen.clone(), sign: -1 });
                        out.push(SignedFact { fact: fact.clone(), sign: 1 });
                    }
                    // Shadow over a fact the old view cannot see would
                    // violate the sequential-stacking contract; treat
                    // it as an insertion to stay conservative.
                    None => out.push(SignedFact { fact: fact.clone(), sign: 1 }),
                }
            }
        }
    }
    out
}

/// Binds `slot` to `value`, recording newly-bound slots in `undo`.
/// Returns false on a constant or repeated-variable mismatch.
fn bind_slot(slot: Slot, value: TermId, b: &mut [Option<TermId>], undo: &mut Vec<usize>) -> bool {
    match slot {
        Slot::Const(id) => id == value,
        Slot::Var(v) => match b[v] {
            Some(existing) => existing == value,
            None => {
                b[v] = Some(value);
                undo.push(v);
                true
            }
        },
    }
}

fn unwind(b: &mut [Option<TermId>], undo: &mut Vec<usize>, from: usize) {
    while undo.len() > from {
        let v = undo.pop().expect("undo length checked");
        b[v] = None;
    }
}

/// Whether a fact satisfies a scan's temporal restriction: untimed
/// facts match every point (mirrors `matching_at_iter`).
fn at_matches(spec: &ScanSpec, fact: &Fact) -> bool {
    match spec.at {
        None => true,
        Some(point) => fact.span.is_none_or(|sp| sp.contains(&point)),
    }
}

fn slot_bound(slot: Slot, b: &[Option<TermId>]) -> Option<TermId> {
    match slot {
        Slot::Const(id) => Some(id),
        Slot::Var(v) => b[v],
    }
}

/// The incrementally-maintainable core of a plan.
#[derive(Debug, Clone)]
struct IncSpec {
    scans: Vec<ScanSpec>,
    filters: Vec<CondC>,
}

impl IncSpec {
    fn from_plan(plan: &Plan) -> Option<Self> {
        if !maintainability(plan).is_incremental() {
            return None;
        }
        let mut scans = Vec::new();
        let mut filters = Vec::new();
        flatten(&plan.root, &mut scans, &mut filters).ok()?;
        Some(IncSpec { scans, filters })
    }

    /// Emits every signed result binding of the telescoped delta join:
    /// for each scan position `i`, scan `i` is bound from the signed
    /// delta facts, scans before `i` evaluate against the *new* view
    /// and scans after `i` against the *old* view. `emit` receives the
    /// complete binding and the row's sign.
    fn delta_rows<K: KbRead + ?Sized>(
        &self,
        nvars: usize,
        changes: &[SignedFact],
        old: &K,
        new: &K,
        emit: &mut dyn FnMut(&[Option<TermId>], i64),
    ) {
        let mut binding: Vec<Option<TermId>> = vec![None; nvars];
        let mut undo: Vec<usize> = Vec::new();
        for i in 0..self.scans.len() {
            let spec = &self.scans[i];
            for change in changes {
                if !at_matches(spec, &change.fact) {
                    continue;
                }
                let t = change.fact.triple;
                let mark = undo.len();
                let ok = bind_slot(spec.s, t.s, &mut binding, &mut undo)
                    && bind_slot(spec.p, t.p, &mut binding, &mut undo)
                    && bind_slot(spec.o, t.o, &mut binding, &mut undo);
                if ok {
                    self.join_rest(i, 0, change.sign, &mut binding, &mut undo, old, new, emit);
                }
                unwind(&mut binding, &mut undo, mark);
            }
        }
    }

    /// Joins the remaining scans (skipping the delta-bound position
    /// `delta_i`) in plan order; scans before `delta_i` read the new
    /// view, scans after it the old view.
    #[allow(clippy::too_many_arguments)]
    fn join_rest<K: KbRead + ?Sized>(
        &self,
        delta_i: usize,
        j: usize,
        sign: i64,
        binding: &mut Vec<Option<TermId>>,
        undo: &mut Vec<usize>,
        old: &K,
        new: &K,
        emit: &mut dyn FnMut(&[Option<TermId>], i64),
    ) {
        if j == self.scans.len() {
            // Filters resolve against the new view: its dictionary is a
            // superset (term ids are append-only), so rows mixing old-
            // and new-view bindings still resolve every id.
            if self.filters.iter().all(|c| eval_cond_with(c, &|s| binding[s], new)) {
                emit(binding, sign);
            }
            return;
        }
        if j == delta_i {
            self.join_rest(delta_i, j + 1, sign, binding, undo, old, new, emit);
            return;
        }
        let kb: &K = if j < delta_i { new } else { old };
        let spec = &self.scans[j];
        let pattern = TriplePattern {
            s: slot_bound(spec.s, binding),
            p: slot_bound(spec.p, binding),
            o: slot_bound(spec.o, binding),
        };
        let mut handle =
            |triple: Triple, binding: &mut Vec<Option<TermId>>, undo: &mut Vec<usize>| {
                let mark = undo.len();
                let ok = bind_slot(spec.s, triple.s, binding, undo)
                    && bind_slot(spec.p, triple.p, binding, undo)
                    && bind_slot(spec.o, triple.o, binding, undo);
                if ok {
                    self.join_rest(delta_i, j + 1, sign, binding, undo, old, new, emit);
                }
                unwind(binding, undo, mark);
            };
        match &spec.at {
            Some(point) => {
                let triples: Vec<Triple> =
                    kb.matching_at_iter(&pattern, point).map(|f| f.triple).collect();
                for t in triples {
                    handle(t, binding, undo);
                }
            }
            None => {
                let triples: Vec<Triple> = kb.triples_iter(&pattern).collect();
                for t in triples {
                    handle(t, binding, undo);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// View state
// ---------------------------------------------------------------------

/// Signed accumulator for one COUNT+GROUP BY group.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GroupAcc {
    /// Projected-variable values, fully determined by the group key
    /// (projection is validated to be a subset of GROUP BY).
    rep: Vec<Option<TermId>>,
    /// One signed counter per COUNT column.
    counts: Vec<i64>,
    /// Total signed row multiplicity of the group; the group exists
    /// while this is positive.
    rows: i64,
}

/// The maintained state behind a standing view's materialized answer.
#[derive(Debug)]
enum ViewState {
    /// Plain SELECT: projected row → signed multiplicity.
    Rows(HashMap<Vec<Cell>, i64>),
    /// COUNT+GROUP BY: group key → signed accumulator.
    Groups(BTreeMap<Vec<Option<TermId>>, GroupAcc>),
    /// Fallback views keep no incremental state.
    Reexec,
}

/// Tracks pre-patch values of every state entry a patch touches, so
/// added/removed rows cost O(|delta result|), not O(|result|).
enum DirtyLog {
    Rows(HashMap<Vec<Cell>, i64>),
    Groups(HashMap<Vec<Option<TermId>>, Option<GroupAcc>>),
}

fn project_cells(plan: &Plan, get: &dyn Fn(usize) -> Option<TermId>) -> Vec<Cell> {
    plan.cols
        .iter()
        .map(|c| match c {
            Col::Var { slot, .. } => get(*slot).map(Cell::Term).unwrap_or(Cell::Unbound),
            Col::Count { .. } => Cell::Unbound,
        })
        .collect()
}

/// Folds one signed solution row into the view state, logging the
/// pre-patch value of every entry it touches.
fn fold_row(
    plan: &Plan,
    state: &mut ViewState,
    dirty: &mut DirtyLog,
    get: &dyn Fn(usize) -> Option<TermId>,
    sign: i64,
) {
    match (state, dirty) {
        (ViewState::Rows(counts), DirtyLog::Rows(log)) => {
            let row = project_cells(plan, get);
            if !log.contains_key(&row) {
                log.insert(row.clone(), counts.get(&row).copied().unwrap_or(0));
            }
            let c = counts.entry(row).or_insert(0);
            *c += sign;
        }
        (ViewState::Groups(groups), DirtyLog::Groups(log)) => {
            let key: Vec<Option<TermId>> = plan.group_by.iter().map(|&s| get(s)).collect();
            if !log.contains_key(&key) {
                log.insert(key.clone(), groups.get(&key).cloned());
            }
            let n_counts = plan.cols.iter().filter(|c| matches!(c, Col::Count { .. })).count();
            let acc = groups.entry(key).or_insert_with(|| GroupAcc {
                rep: plan
                    .cols
                    .iter()
                    .map(|c| match c {
                        Col::Var { slot, .. } => get(*slot),
                        Col::Count { .. } => None,
                    })
                    .collect(),
                counts: vec![0; n_counts],
                rows: 0,
            });
            acc.rows += sign;
            let mut ci = 0;
            for c in &plan.cols {
                if let Col::Count { arg, .. } = c {
                    let counted = match arg {
                        None => true,
                        Some(slot) => get(*slot).is_some(),
                    };
                    if counted {
                        acc.counts[ci] += sign;
                    }
                    ci += 1;
                }
            }
        }
        _ => unreachable!("state and dirty log always share a variant"),
    }
}

fn group_row(plan: &Plan, acc: &GroupAcc) -> Vec<Cell> {
    let mut row = Vec::with_capacity(plan.cols.len());
    let mut ci = 0;
    for (c, rep) in plan.cols.iter().zip(&acc.rep) {
        match c {
            Col::Var { .. } => row.push(rep.map(Cell::Term).unwrap_or(Cell::Unbound)),
            Col::Count { .. } => {
                debug_assert!(acc.counts[ci] >= 0, "negative group count after patch");
                row.push(Cell::Count(acc.counts[ci].max(0) as u64));
                ci += 1;
            }
        }
    }
    row
}

/// Rebuilds the canonical materialized rows from the view state.
fn materialize<K: KbRead + ?Sized>(plan: &Plan, state: &ViewState, kb: &K) -> Vec<Vec<Cell>> {
    let mut rows: Vec<Vec<Cell>> = match state {
        ViewState::Rows(counts) => {
            let mut rows = Vec::new();
            for (row, &c) in counts {
                debug_assert!(c >= 0, "negative row multiplicity after patch");
                let copies = if plan.distinct { i64::from(c > 0) } else { c.max(0) };
                for _ in 0..copies {
                    rows.push(row.clone());
                }
            }
            rows
        }
        ViewState::Groups(groups) => {
            let mut rows: Vec<Vec<Cell>> =
                groups.values().filter(|a| a.rows > 0).map(|a| group_row(plan, a)).collect();
            if plan.distinct {
                rows.sort_by(|a, b| cmp_row_total(a, b, kb));
                rows.dedup();
            }
            rows
        }
        ViewState::Reexec => unreachable!("fallback views never materialize from state"),
    };
    canonical_sort(plan, &mut rows, kb);
    rows
}

/// Drains the dirty log into (added, removed) row lists, canonically
/// sorted.
fn drain_dirty<K: KbRead + ?Sized>(
    plan: &Plan,
    state: &ViewState,
    dirty: DirtyLog,
    kb: &K,
) -> (Vec<Vec<Cell>>, Vec<Vec<Cell>>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    match (state, dirty) {
        (ViewState::Rows(counts), DirtyLog::Rows(log)) => {
            for (row, before) in log {
                let after = counts.get(&row).copied().unwrap_or(0);
                let (b, a) = if plan.distinct {
                    (i64::from(before > 0), i64::from(after > 0))
                } else {
                    (before.max(0), after.max(0))
                };
                for _ in 0..(a - b).max(0) {
                    added.push(row.clone());
                }
                for _ in 0..(b - a).max(0) {
                    removed.push(row.clone());
                }
            }
        }
        (ViewState::Groups(groups), DirtyLog::Groups(log)) => {
            for (key, before) in log {
                let before_row = before.filter(|a| a.rows > 0).map(|a| group_row(plan, &a));
                let after_row = groups.get(&key).filter(|a| a.rows > 0).map(|a| group_row(plan, a));
                if before_row != after_row {
                    if let Some(r) = before_row {
                        removed.push(r);
                    }
                    if let Some(r) = after_row {
                        added.push(r);
                    }
                }
            }
        }
        _ => unreachable!("state and dirty log always share a variant"),
    }
    canonical_sort(plan, &mut added, kb);
    canonical_sort(plan, &mut removed, kb);
    (added, removed)
}

// ---------------------------------------------------------------------
// Initial state
// ---------------------------------------------------------------------

/// Builds a projection-only clone of `plan` (no DISTINCT / ORDER /
/// LIMIT / aggregation) whose columns expose exactly the slots the
/// state fold needs, plus the slot each synthesized column reads.
/// Running it through the vectorized executor yields the raw solution
/// multiset the initial state folds from.
fn feed_plan(plan: &Plan) -> (Plan, Vec<usize>) {
    let mut slots: Vec<usize> = Vec::new();
    let mut want = |s: usize| {
        if !slots.contains(&s) {
            slots.push(s);
        }
    };
    if plan.aggregate {
        for &s in &plan.group_by {
            want(s);
        }
        for c in &plan.cols {
            match c {
                Col::Var { slot, .. } => want(*slot),
                Col::Count { arg: Some(slot), .. } => want(*slot),
                Col::Count { arg: None, .. } => {}
            }
        }
    } else {
        for c in &plan.cols {
            if let Col::Var { slot, .. } = c {
                want(*slot);
            }
        }
    }
    let cols =
        slots.iter().map(|&s| Col::Var { name: format!("s{s}"), slot: s }).collect::<Vec<_>>();
    let feed = Plan {
        nvars: plan.nvars,
        root: plan.root.clone(),
        cols,
        distinct: false,
        group_by: Vec::new(),
        aggregate: false,
        order_by: Vec::new(),
        limit: None,
        offset: 0,
        est_cost: plan.est_cost,
        explain: Vec::new(),
        ops: plan.ops.clone(),
        footprint: plan.footprint.clone(),
    };
    (feed, slots)
}

fn initial_state<K: KbRead + ?Sized>(plan: &Plan, kb: &K) -> ViewState {
    let mut state = if plan.aggregate {
        ViewState::Groups(BTreeMap::new())
    } else {
        ViewState::Rows(HashMap::new())
    };
    let mut dirty = match state {
        ViewState::Rows(_) => DirtyLog::Rows(HashMap::new()),
        _ => DirtyLog::Groups(HashMap::new()),
    };
    let (feed, slots) = feed_plan(plan);
    let raw = execute(&feed, kb);
    for row in &raw.rows {
        let get = |s: usize| -> Option<TermId> {
            slots.iter().position(|&x| x == s).and_then(|i| match row[i] {
                Cell::Term(id) => Some(id),
                _ => None,
            })
        };
        fold_row(plan, &mut state, &mut dirty, &get, 1);
    }
    state
}

// ---------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------

/// One materialized standing view.
struct StandingView {
    id: ViewId,
    /// Normalized query text (re-planned on fallback maintenance).
    text: String,
    plan: Arc<Plan>,
    maint: Maintainability,
    spec: Option<IncSpec>,
    state: ViewState,
    output: Arc<QueryOutput>,
}

/// One consistent post-install update for one standing view.
#[derive(Debug, Clone)]
pub struct ViewUpdate {
    /// The view this update patches.
    pub id: ViewId,
    /// The view's normalized query text.
    pub query: String,
    /// Rows that entered the answer, canonically sorted.
    pub added: Vec<Vec<Cell>>,
    /// Rows that left the answer, canonically sorted.
    pub removed: Vec<Vec<Cell>>,
    /// The full patched answer after this install (a consistent
    /// snapshot — slow subscribers resync from here after a
    /// `ViewLag`).
    pub output: Arc<QueryOutput>,
    /// True when the answer was delta-patched; false when the plan
    /// shape forced a full re-execution.
    pub patched: bool,
    /// Maintenance latency for this view on this install, in
    /// microseconds (per the owning registry's clock).
    pub patch_us: u64,
}

impl ViewUpdate {
    /// Whether the install actually changed this view's answer.
    pub fn changed(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty()
    }
}

/// The registry's owned metric instances (`view.*`).
struct ViewMetrics {
    registered: Arc<Gauge>,
    delta_patched: Arc<Counter>,
    reexecuted: Arc<Counter>,
    patch_us: Arc<Histogram>,
    clock: Arc<dyn Clock>,
}

impl ViewMetrics {
    fn publish(registry: &Registry) -> Self {
        let g = Arc::new(Gauge::new());
        registry.register_gauge("view.registered", Arc::clone(&g));
        let counter = |name: &str| {
            let c = Arc::new(Counter::new());
            registry.register_counter(name, Arc::clone(&c));
            c
        };
        let h = Arc::new(Histogram::latency());
        registry.register_histogram("view.patch_us", Arc::clone(&h));
        ViewMetrics {
            registered: g,
            delta_patched: counter("view.delta_patched"),
            reexecuted: counter("view.reexecuted"),
            patch_us: h,
            clock: registry.clock(),
        }
    }
}

/// A set of materialized standing views maintained across delta
/// installs. See the module docs for the maintenance algebra.
///
/// The registry is passive: its owner calls
/// [`apply_delta`](ViewRegistry::apply_delta) with the installed
/// segment plus the pre- and post-install views, under whatever lock
/// already serializes installs (the query service's generation lock,
/// the router's epoch barrier) — so every update batch is consistent
/// with exactly one install.
pub struct ViewRegistry {
    next_id: u64,
    views: Vec<StandingView>,
    metrics: ViewMetrics,
}

impl ViewRegistry {
    /// An empty registry publishing `view.*` metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        ViewRegistry { next_id: 0, views: Vec::new(), metrics: ViewMetrics::publish(registry) }
    }

    /// Registers `text` as a standing view over `kb`, materializing its
    /// initial answer. Returns the view's handle.
    pub fn register<K: KbRead + ?Sized>(
        &mut self,
        text: &str,
        kb: &K,
        stats: &StatsCatalog,
    ) -> Result<ViewId, QueryError> {
        let parsed = parse(text)?;
        let normalized = parsed.to_string();
        let plan = Arc::new(compile(&parsed, kb, stats)?);
        let maint = maintainability(&plan);
        let (spec, state) = match maint {
            Maintainability::Incremental => (IncSpec::from_plan(&plan), initial_state(&plan, kb)),
            Maintainability::Fallback(_) => (None, ViewState::Reexec),
        };
        let output = match &state {
            ViewState::Reexec => Arc::new(canonical_output(&plan, &execute(&plan, kb), kb)),
            state => {
                let rows = materialize(&plan, state, kb);
                Arc::new(QueryOutput {
                    cols: plan.columns().iter().map(|c| c.to_string()).collect(),
                    rows,
                })
            }
        };
        let id = ViewId(self.next_id);
        self.next_id += 1;
        self.views.push(StandingView { id, text: normalized, plan, maint, spec, state, output });
        self.metrics.registered.set(self.views.len() as i64);
        Ok(id)
    }

    /// Removes a view; returns whether it existed.
    pub fn unregister(&mut self, id: ViewId) -> bool {
        let before = self.views.len();
        self.views.retain(|v| v.id != id);
        self.metrics.registered.set(self.views.len() as i64);
        self.views.len() < before
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The registered view ids, in registration order.
    pub fn ids(&self) -> Vec<ViewId> {
        self.views.iter().map(|v| v.id).collect()
    }

    /// The view's current materialized answer.
    pub fn result(&self, id: ViewId) -> Option<Arc<QueryOutput>> {
        self.views.iter().find(|v| v.id == id).map(|v| Arc::clone(&v.output))
    }

    /// The view's compiled plan.
    pub fn plan(&self, id: ViewId) -> Option<Arc<Plan>> {
        self.views.iter().find(|v| v.id == id).map(|v| Arc::clone(&v.plan))
    }

    /// The view's normalized query text.
    pub fn query_text(&self, id: ViewId) -> Option<&str> {
        self.views.iter().find(|v| v.id == id).map(|v| v.text.as_str())
    }

    /// How the view is maintained.
    pub fn maintainability_of(&self, id: ViewId) -> Option<Maintainability> {
        self.views.iter().find(|v| v.id == id).map(|v| v.maint)
    }

    /// Maintains every registered view across one delta install: `old`
    /// is the view the delta was frozen against, `new` the view with
    /// the delta stacked, `stats` the post-install planner catalog
    /// (fallback views re-plan against it). Returns one consistent
    /// [`ViewUpdate`] per view whose footprint the delta touches, in
    /// registration order.
    pub fn apply_delta<K: KbRead + ?Sized>(
        &mut self,
        delta: &DeltaSegment,
        old: &K,
        new: &K,
        stats: &StatsCatalog,
    ) -> Vec<ViewUpdate> {
        if self.views.is_empty() {
            return Vec::new();
        }
        let touched = delta.touched_predicates();
        let changes: Vec<SignedFact> = if self
            .views
            .iter()
            .any(|v| v.spec.is_some() && v.plan.footprint().is_touched_by(touched))
        {
            signed_changes(delta, old)
        } else {
            Vec::new()
        };
        let mut updates = Vec::new();
        for view in &mut self.views {
            if !view.plan.footprint().is_touched_by(touched) {
                continue;
            }
            let span = SpanTimer::start(
                Arc::clone(&self.metrics.clock),
                Arc::clone(&self.metrics.patch_us),
            );
            let (added, removed, output, patched) = match &view.spec {
                Some(spec) => {
                    let plan = Arc::clone(&view.plan);
                    let mut dirty = match view.state {
                        ViewState::Rows(_) => DirtyLog::Rows(HashMap::new()),
                        _ => DirtyLog::Groups(HashMap::new()),
                    };
                    {
                        let state = &mut view.state;
                        spec.delta_rows(plan.nvars, &changes, old, new, &mut |binding, sign| {
                            fold_row(&plan, state, &mut dirty, &|s| binding[s], sign);
                        });
                    }
                    let (added, removed) = drain_dirty(&plan, &view.state, dirty, new);
                    // DISTINCT over a grouped view can merge identical
                    // rows produced by different group keys; only a
                    // full rebuild sees across groups. Everything else
                    // splices the (delta-sized) diff into the previous
                    // sorted answer.
                    let rows = if plan.distinct && matches!(view.state, ViewState::Groups(_)) {
                        materialize(&plan, &view.state, new)
                    } else {
                        patch_sorted_rows(&plan, &view.output.rows, &added, &removed, new)
                    };
                    let output = Arc::new(QueryOutput { cols: view.output.cols.clone(), rows });
                    (added, removed, output, true)
                }
                None => {
                    // Fallback: re-plan from the normalized text so
                    // constants interned by this delta resolve, then
                    // re-execute and diff against the previous answer.
                    let parsed = parse(&view.text).expect("normalized text always re-parses");
                    let plan = compile(&parsed, new, stats).map(Arc::new);
                    let plan = match plan {
                        Ok(p) => {
                            view.plan = Arc::clone(&p);
                            p
                        }
                        Err(_) => Arc::clone(&view.plan),
                    };
                    let fresh = canonical_output(&plan, &execute(&plan, new), new);
                    let (added, removed) = diff_outputs(&view.output, &fresh, new);
                    (added, removed, Arc::new(fresh), false)
                }
            };
            let patch_us = span.stop();
            if patched {
                self.metrics.delta_patched.inc();
            } else {
                self.metrics.reexecuted.inc();
            }
            view.output = Arc::clone(&output);
            updates.push(ViewUpdate {
                id: view.id,
                query: view.text.clone(),
                added,
                removed,
                output,
                patched,
                patch_us,
            });
        }
        updates
    }
}

/// Multiset difference of two canonical outputs: rows in `after` but
/// not `before` (added) and vice versa (removed). Both inputs are
/// canonically sorted, so one merge pass suffices.
fn diff_outputs<K: KbRead + ?Sized>(
    before: &QueryOutput,
    after: &QueryOutput,
    kb: &K,
) -> (Vec<Vec<Cell>>, Vec<Vec<Cell>>) {
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < before.rows.len() && j < after.rows.len() {
        if before.rows[i] == after.rows[j] {
            i += 1;
            j += 1;
            continue;
        }
        match cmp_row_total(&before.rows[i], &after.rows[j], kb) {
            std::cmp::Ordering::Less => {
                removed.push(before.rows[i].clone());
                i += 1;
            }
            _ => {
                added.push(after.rows[j].clone());
                j += 1;
            }
        }
    }
    removed.extend(before.rows[i..].iter().cloned());
    added.extend(after.rows[j..].iter().cloned());
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::{KbBuilder, SegmentedSnapshot};

    fn base() -> SegmentedSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("San_Francisco", "locatedIn", "California");
        b.assert_str("San_Jose", "locatedIn", "California");
        b.assert_str("Tim_Berners_Lee", "bornIn", "London");
        b.assert_str("London", "locatedIn", "England");
        SegmentedSnapshot::from_base(b.freeze().into_shared())
    }

    fn check_against_reexec(reg: &ViewRegistry, id: ViewId, view: &SegmentedSnapshot) {
        let plan = reg.plan(id).unwrap();
        let reexec = canonical_output(&plan, &execute(&plan, view), view);
        assert_eq!(
            reg.result(id).unwrap().as_ref(),
            &reexec,
            "patched answer diverged from re-execution for {:?}",
            reg.query_text(id)
        );
    }

    #[test]
    fn select_view_patches_insertions_and_retractions() {
        let old = base();
        let stats = StatsCatalog::build(&old);
        let mut reg = ViewRegistry::new(&Registry::new());
        let id = reg
            .register("SELECT ?p ?c WHERE { ?p bornIn ?c . ?c locatedIn California }", &old, &stats)
            .unwrap();
        assert_eq!(reg.result(id).unwrap().rows.len(), 2);
        assert!(reg.maintainability_of(id).unwrap().is_incremental());

        // Insert one matching person, retract another.
        let mut b = KbBuilder::new();
        b.assert_str("Jerry_Brown", "bornIn", "San_Francisco");
        b.retract_str("Steve_Wozniak", "bornIn", "San_Jose");
        let delta = Arc::new(b.freeze_delta(&old));
        let new = old.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        let updates = reg.apply_delta(delta.as_ref(), &old, &new, &new_stats);
        assert_eq!(updates.len(), 1);
        assert!(updates[0].patched);
        assert_eq!(updates[0].added.len(), 1);
        assert_eq!(updates[0].removed.len(), 1);
        assert_eq!(reg.result(id).unwrap().rows.len(), 2);
        check_against_reexec(&reg, id, &new);
    }

    #[test]
    fn count_group_by_view_reaggregates() {
        let old = base();
        let stats = StatsCatalog::build(&old);
        let mut reg = ViewRegistry::new(&Registry::new());
        let id = reg
            .register(
                "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY ?c",
                &old,
                &stats,
            )
            .unwrap();
        assert_eq!(reg.result(id).unwrap().rows.len(), 3);

        let mut b = KbBuilder::new();
        b.assert_str("Jerry_Brown", "bornIn", "San_Francisco");
        b.assert_str("Grace_Hopper", "bornIn", "New_York");
        b.retract_str("Tim_Berners_Lee", "bornIn", "London");
        let delta = Arc::new(b.freeze_delta(&old));
        let new = old.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        let updates = reg.apply_delta(delta.as_ref(), &old, &new, &new_stats);
        assert!(updates[0].patched);
        // San_Francisco count 1→2, New_York appears, London disappears.
        check_against_reexec(&reg, id, &new);
        let out = reg.result(id).unwrap();
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn untouched_views_get_no_update() {
        let old = base();
        let stats = StatsCatalog::build(&old);
        let mut reg = ViewRegistry::new(&Registry::new());
        reg.register("SELECT ?p WHERE { ?p bornIn ?c }", &old, &stats).unwrap();

        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        let delta = Arc::new(b.freeze_delta(&old));
        let new = old.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        let updates = reg.apply_delta(delta.as_ref(), &old, &new, &new_stats);
        assert!(updates.is_empty(), "disjoint-footprint views must not be maintained");
    }

    #[test]
    fn optional_and_limit_views_fall_back() {
        let view = base();
        let stats = StatsCatalog::build(&view);
        let mut reg = ViewRegistry::new(&Registry::new());
        let opt = reg
            .register(
                "SELECT ?p ?co WHERE { ?p bornIn ?c OPTIONAL { ?p founded ?co } }",
                &view,
                &stats,
            )
            .unwrap();
        let lim = reg
            .register("SELECT ?p WHERE { ?p bornIn ?c } ORDER BY ?p LIMIT 1", &view, &stats)
            .unwrap();
        assert!(!reg.maintainability_of(opt).unwrap().is_incremental());
        assert!(!reg.maintainability_of(lim).unwrap().is_incremental());

        let mut b = KbBuilder::new();
        b.assert_str("Ada_Lovelace", "bornIn", "London");
        let delta = Arc::new(b.freeze_delta(&view));
        let new = view.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        let updates = reg.apply_delta(delta.as_ref(), &view, &new, &new_stats);
        assert_eq!(updates.len(), 2);
        assert!(updates.iter().all(|u| !u.patched), "fallback views re-execute");
        check_against_reexec(&reg, opt, &new);
        check_against_reexec(&reg, lim, &new);
    }

    #[test]
    fn fallback_view_sees_constants_interned_by_the_delta() {
        let view = base();
        let stats = StatsCatalog::build(&view);
        let mut reg = ViewRegistry::new(&Registry::new());
        // `Atlantis` is unknown at registration: the plan is Empty and
        // wildcard, so the view must fall back — and start answering
        // once a delta interns the constant.
        let id = reg.register("SELECT ?p WHERE { ?p bornIn Atlantis }", &view, &stats).unwrap();
        assert!(!reg.maintainability_of(id).unwrap().is_incremental());
        assert!(reg.result(id).unwrap().rows.is_empty());

        let mut b = KbBuilder::new();
        b.assert_str("Plato", "bornIn", "Atlantis");
        let delta = Arc::new(b.freeze_delta(&view));
        let new = view.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        let updates = reg.apply_delta(delta.as_ref(), &view, &new, &new_stats);
        assert_eq!(updates.len(), 1);
        assert_eq!(updates[0].added.len(), 1);
        assert_eq!(reg.result(id).unwrap().rows.len(), 1);
    }

    #[test]
    fn distinct_and_filter_views_stay_exact_across_chained_deltas() {
        let mut view = base();
        let mut stats = StatsCatalog::build(&view);
        let mut reg = ViewRegistry::new(&Registry::new());
        let id = reg
            .register(
                "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?c locatedIn ?st . FILTER(?st != England) }",
                &view,
                &stats,
            )
            .unwrap();
        assert!(reg.maintainability_of(id).unwrap().is_incremental());

        for round in 0..3 {
            let mut b = KbBuilder::new();
            b.assert_str(&format!("person_{round}"), "bornIn", "San_Jose");
            if round == 1 {
                b.retract_str("Steve_Jobs", "bornIn", "San_Francisco");
            }
            let delta = Arc::new(b.freeze_delta(&view));
            let new = view.with_delta(Arc::clone(&delta));
            let new_stats = stats.merged_with_delta(&delta);
            reg.apply_delta(delta.as_ref(), &view, &new, &new_stats);
            check_against_reexec(&reg, id, &new);
            view = new;
            stats = new_stats;
        }
    }

    #[test]
    fn registry_metrics_track_patches_and_fallbacks() {
        let registry = Registry::new();
        let view = base();
        let stats = StatsCatalog::build(&view);
        let mut reg = ViewRegistry::new(&registry);
        reg.register("SELECT ?p WHERE { ?p bornIn ?c }", &view, &stats).unwrap();
        reg.register("SELECT ?p WHERE { ?p bornIn ?c } LIMIT 1", &view, &stats).unwrap();
        assert_eq!(registry.gauge("view.registered").get(), 2);

        let mut b = KbBuilder::new();
        b.assert_str("Ada_Lovelace", "bornIn", "London");
        let delta = Arc::new(b.freeze_delta(&view));
        let new = view.with_delta(Arc::clone(&delta));
        let new_stats = stats.merged_with_delta(&delta);
        reg.apply_delta(delta.as_ref(), &view, &new, &new_stats);
        assert_eq!(registry.counter("view.delta_patched").get(), 1);
        assert_eq!(registry.counter("view.reexecuted").get(), 1);
        assert_eq!(registry.histogram("view.patch_us").count(), 2);
    }
}
