//! The abstract syntax of `kb-query`'s SPARQL-like language, and its
//! canonical text form.
//!
//! A [`SelectQuery`] is parsed from text ([`mod@crate::parse`]) and lowered
//! to a physical plan ([`mod@crate::plan`]). `Display` renders the
//! *canonical* form: uppercase keywords, single spaces, ` . `-separated
//! group elements in the fixed order *patterns, unions, optionals,
//! filters*. Canonical text is what the serving layer's caches key on,
//! so two spellings of the same query share one plan, and
//! `parse(q.to_string())` reproduces `q` exactly (a property test in
//! `tests/differential.rs` holds the round-trip).

use std::fmt;

use kb_store::TimePoint;

/// A variable or a constant in a pattern or filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A named variable (`?x`).
    Var(String),
    /// A constant term, kept as its surface string: queries parse
    /// without a KB, so constants resolve to ids only at plan time.
    Const(String),
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One triple pattern, optionally restricted to facts whose temporal
/// scope contains a time point (`?p worksAt ?co @1999`): timeless facts
/// always qualify, scoped facts must contain the point — the same
/// semantics as [`kb_store::KbRead::matching_at`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Subject position.
    pub s: Term,
    /// Predicate position.
    pub p: Term,
    /// Object position.
    pub o: Term,
    /// Temporal restriction, if any.
    pub at: Option<TimePoint>,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.s, self.p, self.o)?;
        if let Some(at) = &self.at {
            write!(f, " @{at}")?;
        }
        Ok(())
    }
}

/// Comparison operator in a `FILTER`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=` — term identity.
    Eq,
    /// `!=` — term distinctness.
    Ne,
    /// `<` — value ordering (temporal, then numeric, then lexicographic).
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// The surface token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One `FILTER(lhs op rhs)` constraint. Equality and inequality compare
/// interned term ids; ordered comparisons resolve both sides to strings
/// and compare as time points when both parse as `YYYY[-MM[-DD]]`, as
/// integers when both parse numerically, and lexicographically
/// otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// Left operand.
    pub lhs: Term,
    /// The comparison.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FILTER({} {} {})", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A group graph pattern in normalized shape: a conjunctive basic graph
/// pattern plus `UNION` alternatives, `OPTIONAL` sub-groups and
/// `FILTER`s, applied in that order (filters see the whole group, as in
/// SPARQL).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Group {
    /// The conjoined triple patterns (the BGP).
    pub patterns: Vec<Pattern>,
    /// Each `{ a } UNION { b }` element, joined with the BGP.
    pub unions: Vec<(Group, Group)>,
    /// Each `OPTIONAL { ... }` element (left-joined, in order).
    pub optionals: Vec<Group>,
    /// Filters over the group's bindings.
    pub filters: Vec<Condition>,
}

impl Group {
    /// Whether the group contains nothing at all.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
            && self.unions.is_empty()
            && self.optionals.is_empty()
            && self.filters.is_empty()
    }

    /// All distinct variable names bindable by this group (patterns of
    /// the BGP, both union branches, and optionals), sorted.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = Vec::new();
        self.collect_vars(&mut vars);
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        for p in &self.patterns {
            out.extend([p.s.as_var(), p.p.as_var(), p.o.as_var()].into_iter().flatten());
        }
        for (a, b) in &self.unions {
            a.collect_vars(out);
            b.collect_vars(out);
        }
        for opt in &self.optionals {
            opt.collect_vars(out);
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                Ok(())
            } else {
                write!(f, " . ")
            }
        };
        for p in &self.patterns {
            sep(f)?;
            write!(f, "{p}")?;
        }
        for (a, b) in &self.unions {
            sep(f)?;
            write!(f, "{{ {a} }} UNION {{ {b} }}")?;
        }
        for opt in &self.optionals {
            sep(f)?;
            write!(f, "OPTIONAL {{ {opt} }}")?;
        }
        for c in &self.filters {
            sep(f)?;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// One projected column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProjItem {
    /// A plain variable.
    Var(String),
    /// `COUNT(?arg) AS ?alias` (or `COUNT(*)` when `arg` is `None`):
    /// counts the rows of the group where `arg` is bound.
    Count {
        /// The counted variable; `None` means `*`.
        arg: Option<String>,
        /// Output column name.
        alias: String,
    },
}

impl fmt::Display for ProjItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjItem::Var(v) => write!(f, "?{v}"),
            ProjItem::Count { arg: Some(a), alias } => write!(f, "COUNT(?{a}) AS ?{alias}"),
            ProjItem::Count { arg: None, alias } => write!(f, "COUNT(*) AS ?{alias}"),
        }
    }
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The projected column (variable or aggregate alias) to sort on.
    pub var: String,
    /// Descending order (`DESC(?x)`).
    pub desc: bool,
}

impl fmt::Display for OrderKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.desc {
            write!(f, "DESC(?{})", self.var)
        } else {
            write!(f, "?{}", self.var)
        }
    }
}

/// A full `SELECT` query: projection, group graph pattern and solution
/// modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// Deduplicate projected rows.
    pub distinct: bool,
    /// Projected columns; `None` is `SELECT *` (every variable of the
    /// group, in sorted name order).
    pub projection: Option<Vec<ProjItem>>,
    /// The `WHERE` clause.
    pub group: Group,
    /// `GROUP BY` variables (aggregation keys).
    pub group_by: Vec<String>,
    /// `ORDER BY` keys over projected columns.
    pub order_by: Vec<OrderKey>,
    /// Maximum number of rows returned.
    pub limit: Option<usize>,
    /// Rows skipped before returning.
    pub offset: usize,
}

impl SelectQuery {
    /// A bare `SELECT *` over a group, no modifiers — what the legacy
    /// compact form (`?p bornIn ?c . ?c locatedIn ?n`) desugars to.
    pub fn star(group: Group) -> Self {
        SelectQuery {
            distinct: false,
            projection: None,
            group,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: 0,
        }
    }

    /// Whether the query aggregates (has a `COUNT` column or a
    /// `GROUP BY` clause).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .projection
                .as_deref()
                .is_some_and(|p| p.iter().any(|i| matches!(i, ProjItem::Count { .. })))
    }
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.projection {
            None => write!(f, "*")?,
            Some(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
            }
        }
        write!(f, " WHERE {{ {} }}", self.group)?;
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY")?;
            for v in &self.group_by {
                write!(f, " ?{v}")?;
            }
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY")?;
            for k in &self.order_by {
                write!(f, " {k}")?;
            }
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if self.offset > 0 {
            write!(f, " OFFSET {}", self.offset)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> Term {
        Term::Var(v.into())
    }

    fn con(c: &str) -> Term {
        Term::Const(c.into())
    }

    #[test]
    fn display_is_canonical() {
        let q = SelectQuery {
            distinct: true,
            projection: Some(vec![
                ProjItem::Var("p".into()),
                ProjItem::Count { arg: Some("c".into()), alias: "n".into() },
            ]),
            group: Group {
                patterns: vec![Pattern { s: var("p"), p: con("bornIn"), o: var("c"), at: None }],
                unions: vec![],
                optionals: vec![],
                filters: vec![Condition { lhs: var("p"), op: CmpOp::Ne, rhs: var("c") }],
            },
            group_by: vec!["p".into()],
            order_by: vec![OrderKey { var: "n".into(), desc: true }],
            limit: Some(10),
            offset: 2,
        };
        assert_eq!(
            q.to_string(),
            "SELECT DISTINCT ?p COUNT(?c) AS ?n WHERE { ?p bornIn ?c . FILTER(?p != ?c) } \
             GROUP BY ?p ORDER BY DESC(?n) LIMIT 10 OFFSET 2"
        );
    }

    #[test]
    fn group_variables_cover_unions_and_optionals() {
        let g = Group {
            patterns: vec![Pattern { s: var("a"), p: con("r"), o: var("b"), at: None }],
            unions: vec![(
                Group {
                    patterns: vec![Pattern { s: var("b"), p: con("q"), o: var("c"), at: None }],
                    ..Group::default()
                },
                Group {
                    patterns: vec![Pattern { s: var("b"), p: con("q"), o: var("d"), at: None }],
                    ..Group::default()
                },
            )],
            optionals: vec![Group {
                patterns: vec![Pattern { s: var("a"), p: var("r2"), o: var("e"), at: None }],
                ..Group::default()
            }],
            filters: vec![],
        };
        assert_eq!(g.variables(), vec!["a", "b", "c", "d", "e", "r2"]);
    }
}
