//! Concurrent serving layer: a segmented-snapshot-backed service with a
//! bounded plan cache and a generation/epoch-invalidated result cache.
//!
//! ## Caching discipline
//!
//! Two cache levels sit in front of the parse → plan → execute
//! pipeline:
//!
//! 1. **Raw-text probe** — an exact match on the query string skips
//!    parsing entirely (the hot path for repeated identical queries).
//! 2. **Normalized probe** — on a raw miss the text is parsed and its
//!    canonical [`Display`](std::fmt::Display) form becomes the cache
//!    key, so formatting variants (case of keywords, whitespace,
//!    redundant dots) share one plan and one result entry. The raw
//!    text is then recorded as an alias for future level-1 hits.
//!
//! **Full-install invalidation:** every cached plan and result is
//! stamped with the snapshot *generation* it was computed against.
//! Installing a new base snapshot bumps the generation and raises each
//! cache's *generation floor*: stale entries are cleared eagerly,
//! entries probed with a mismatched stamp die lazily, and — crucially —
//! an in-flight query that captured the old generation can no longer
//! re-insert a dead generation's plan or result after the clear (the
//! floor rejects the `put`), so a dead snapshot's plans cannot be
//! pinned until LRU eviction. Plans are generation-scoped because
//! resolved [`TermId`]s are dictionary-specific, not just because facts
//! changed.
//!
//! **Partial (delta) invalidation:** [`apply_delta`] stacks a
//! [`DeltaSegment`] onto the current view *without* bumping the
//! generation. Instead it bumps an *epoch* counter and records, per
//! predicate the delta touches, the epoch at which that predicate last
//! changed. Every cached entry carries its plan's [`Footprint`] — the
//! set of predicate ids its answer can depend on — and is served only
//! while no footprint predicate has changed since the entry's epoch.
//! Entries whose predicates are untouched by a delta *survive the
//! install*; this is the cache-retention win the segmented store
//! exists for. Footprints that cannot be predicate-scoped (variable
//! predicates, or constants the view had never interned — a delta
//! could make them real) are *wildcard* and die on every delta.
//! The same epoch rule guards `put`: an execution that raced a delta
//! install is rejected exactly like a stale-generation put, so the
//! single-flight/floor machinery needs no special cases. Plans survive
//! deltas unless wildcard (TermIds are append-only across deltas; a
//! stale join order is a performance, not correctness, issue);
//! results are additionally swept by touched predicate.
//!
//! **Single flight:** concurrent identical queries that miss a cache do
//! the work once. Both plan compilation and execution are deduplicated
//! through an in-flight table keyed by `(generation, epoch, normalized
//! key)`: the first thread becomes the *leader* and computes; later
//! arrivals block until the leader publishes, and are counted in the
//! `*_dedup` counters instead of the miss counters. Keying on the epoch
//! too means a flight can never dedup across a delta install.
//!
//! ## Observability
//!
//! The service owns its counters and latency histograms (`kb-obs`
//! primitives) and publishes them in a [`Registry`] under
//! `query.cache.*` / `query.{parse,plan,exec}_us`; [`cache_stats`]
//! (CacheStats) reads the same counters. Span durations come from the
//! registry's injectable clock, so timing tests never touch the wall
//! clock. By default metrics land in [`kb_obs::global()`]; tests pass a
//! private registry via [`QueryService::with_instrumentation`].
//!
//! [`apply_delta`]: QueryService::apply_delta
//! [`cache_stats`]: QueryService::cache_stats
//! [`DeltaSegment`]: kb_store::DeltaSegment
//! [`Footprint`]: crate::plan::Footprint
//! [`Registry`]: kb_obs::Registry
//! [`TermId`]: kb_store::TermId
//!
//! Batches run on a crossbeam scoped worker pool (the same shape as
//! `kb-analytics`' `aggregate_parallel`): workers share the service and
//! the immutable view, so no locking happens on the read path beyond
//! brief cache probes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use kb_obs::{Clock, Counter, Histogram, Registry, SpanTimer};
use kb_store::{DeltaSegment, KbSnapshot, SegmentedSnapshot, TermId};

use crate::error::QueryError;
use crate::exec::{execute, QueryOutput};
use crate::parse::parse;
use crate::plan::{plan, Footprint, Plan};
use crate::stats::StatsCatalog;
use crate::view::{ViewId, ViewRegistry, ViewUpdate};

/// Default bound on each cache (plans and results separately).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Cache hit/miss/dedup counters, cheap to read at any time.
///
/// Conservation law: every [`query`](QueryService::query) call
/// increments exactly one of `result_hits` / `result_misses` /
/// `result_dedup`, so their sum equals the number of queries served —
/// exactly, even under concurrency (the stress tests pin this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered straight from the result cache.
    pub result_hits: u64,
    /// Queries that had to execute.
    pub result_misses: u64,
    /// Queries that joined another thread's in-flight execution instead
    /// of executing themselves (single-flight dedup).
    pub result_dedup: u64,
    /// Plan lookups that reused a cached plan (raw or normalized hit).
    pub plan_hits: u64,
    /// Plan lookups that parsed and planned from scratch.
    pub plan_misses: u64,
    /// Plan lookups that joined another thread's in-flight compilation.
    pub plan_dedup: u64,
    /// Entries evicted from the plan cache by capacity pressure.
    pub plan_evictions: u64,
    /// Entries evicted from the result cache by capacity pressure.
    pub result_evictions: u64,
    /// Inserts rejected because their generation stamp predated the
    /// cache's floor, or their epoch stamp predated a delta touching
    /// their footprint (an install raced the computation).
    pub stale_put_rejects: u64,
    /// Delta segments stacked onto the serving view by
    /// [`apply_delta`](QueryService::apply_delta).
    pub delta_installs: u64,
    /// Result-cache entries that *survived* a delta install because
    /// their footprint was disjoint from the delta's touched
    /// predicates — the partial-invalidation win.
    pub result_retained: u64,
    /// Result-cache entries swept by a delta install (wildcard
    /// footprint or touched predicate).
    pub result_invalidated: u64,
}

/// What [`LruCache::put`] did with the offered entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PutOutcome {
    /// Entry stored, nothing displaced.
    Inserted,
    /// Entry stored after evicting the least-recently-used one.
    Evicted,
    /// Entry rejected: its generation stamp predates the cache floor,
    /// or a delta touching its footprint landed after its epoch stamp.
    StaleRejected,
}

/// One cached value with its validity stamps.
struct Entry<V> {
    /// Base-snapshot generation the value was computed against.
    generation: u64,
    /// Delta epoch (within the generation) the value was computed
    /// against.
    epoch: u64,
    /// LRU recency tick.
    used: u64,
    /// Predicates the value can depend on; the unit of partial
    /// invalidation.
    footprint: Footprint,
    value: V,
}

/// A bounded LRU keyed by `String`, stamped with `(generation, epoch,
/// footprint)`. Recency is a monotone counter; eviction scans for the
/// minimum — `O(capacity)`, fine for the few hundred entries a plan
/// cache holds.
///
/// Invalidation has two teeth:
///
/// * The *generation floor* — [`set_floor`](LruCache::set_floor)
///   (called by `install`) clears the map and rejects any later `put`
///   stamped below the floor, closing the race where an in-flight
///   computation against a dead snapshot re-inserts after the clear.
/// * The *predicate epoch map* — [`apply_delta`](LruCache::apply_delta)
///   records the epoch at which each touched predicate last changed
///   and sweeps affected entries; `get` and `put` both re-check an
///   entry's footprint against the map, so a computation that raced a
///   delta install can neither be served nor re-inserted. This is the
///   same floor discipline, scoped per predicate.
struct LruCache<V> {
    capacity: usize,
    tick: u64,
    /// Minimum generation stamp accepted by `put`.
    floor: u64,
    /// Epoch at which each predicate last changed (missing = never,
    /// i.e. epoch 0 — the base snapshot).
    pred_epoch: HashMap<TermId, u64>,
    /// Epoch of the most recent delta install; the freshness bar for
    /// wildcard footprints.
    last_delta_epoch: u64,
    map: HashMap<String, Entry<V>>,
}

impl<V: Clone> LruCache<V> {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            tick: 0,
            floor: 0,
            pred_epoch: HashMap::new(),
            last_delta_epoch: 0,
            map: HashMap::new(),
        }
    }

    /// Whether a value stamped `epoch` with this `footprint` is still
    /// current: no footprint predicate changed after the stamp, and a
    /// wildcard footprint has seen every delta.
    fn delta_fresh(&self, footprint: &Footprint, epoch: u64) -> bool {
        if footprint.is_wildcard() {
            return self.last_delta_epoch <= epoch;
        }
        footprint.preds.iter().all(|p| self.pred_epoch.get(p).copied().unwrap_or(0) <= epoch)
    }

    fn get(&mut self, key: &str, generation: u64, epoch: u64) -> Option<V> {
        let fresh = match self.map.get(key) {
            None => return None,
            Some(e) => {
                e.generation == generation
                    && e.epoch <= epoch
                    && self.delta_fresh(&e.footprint, e.epoch)
            }
        };
        if !fresh {
            // Stale generation or delta-outdated: drop eagerly.
            self.map.remove(key);
            return None;
        }
        self.tick += 1;
        let e = self.map.get_mut(key).expect("probed above");
        e.used = self.tick;
        Some(e.value.clone())
    }

    fn put(
        &mut self,
        key: String,
        generation: u64,
        epoch: u64,
        footprint: Footprint,
        value: V,
    ) -> PutOutcome {
        if generation < self.floor || !self.delta_fresh(&footprint, epoch) {
            return PutOutcome::StaleRejected;
        }
        self.tick += 1;
        let mut outcome = PutOutcome::Inserted;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evict) = self.map.iter().min_by_key(|(_, e)| e.used).map(|(k, _)| k.clone())
            {
                self.map.remove(&evict);
                outcome = PutOutcome::Evicted;
            }
        }
        self.map.insert(key, Entry { generation, epoch, used: self.tick, footprint, value });
        outcome
    }

    /// Raises the floor to `generation` and drops everything cached:
    /// entries below the floor can neither be read (stamp mismatch) nor
    /// re-inserted (floor check) afterwards. A full install starts a
    /// fresh epoch timeline, so the predicate epochs reset too.
    fn set_floor(&mut self, generation: u64) {
        debug_assert!(generation >= self.floor, "generation floor must be monotone");
        self.floor = generation;
        self.pred_epoch.clear();
        self.last_delta_epoch = 0;
        self.map.clear();
    }

    /// Records a delta install at `epoch` touching `touched` and sweeps
    /// the entries it outdates: wildcard footprints always die; with
    /// `wildcard_only = false`, entries whose footprint intersects
    /// `touched` die too. Returns `(retained, invalidated)` counts.
    fn apply_delta(&mut self, epoch: u64, touched: &[TermId], wildcard_only: bool) -> (u64, u64) {
        for p in touched {
            self.pred_epoch.insert(*p, epoch);
        }
        self.last_delta_epoch = epoch;
        let before = self.map.len();
        self.map.retain(|_, e| {
            if e.footprint.is_wildcard() {
                return false;
            }
            wildcard_only || !e.footprint.is_touched_by(touched)
        });
        let after = self.map.len();
        (after as u64, (before - after) as u64)
    }

    /// Entries stamped with a generation older than `current`.
    fn stale_count(&self, current: u64) -> usize {
        self.map.values().filter(|e| e.generation < current).count()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// State of one in-flight computation.
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader published a value; followers clone it.
    Done(V),
    /// The leader died (panicked) without publishing; followers retry.
    Abandoned,
}

/// One in-flight computation slot: a state cell plus the condvar the
/// followers sleep on.
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

/// Flight-table key: the snapshot generation, the delta epoch and the
/// normalized query key, so a flight can never dedup across an
/// `install` *or* an `apply_delta`.
type FlightKey = (u64, u64, String);

/// A single-flight table: at most one thread computes the value for a
/// given `(generation, epoch, key)` at a time; the rest wait for its
/// answer.
struct SingleFlight<V> {
    inflight: Mutex<HashMap<FlightKey, Arc<Flight<V>>>>,
}

/// The outcome of [`SingleFlight::enter`].
enum FlightEntry<'a, V> {
    /// This thread owns the computation; it must call
    /// [`FlightGuard::publish`] (dropping the guard un-published wakes
    /// the followers to retry).
    Leader(FlightGuard<'a, V>),
    /// Another thread computed the value; here is its clone.
    Joined(V),
}

/// Leadership token for one in-flight key. Publishing (or dropping)
/// wakes every follower and retires the flight.
struct FlightGuard<'a, V> {
    table: &'a SingleFlight<V>,
    key: FlightKey,
    flight: Arc<Flight<V>>,
    published: bool,
}

impl<V: Clone> SingleFlight<V> {
    fn new() -> Self {
        SingleFlight { inflight: Mutex::new(HashMap::new()) }
    }

    /// Joins (blocking) or leads the computation for `(generation,
    /// epoch, key)`.
    fn enter(&self, generation: u64, epoch: u64, key: &str) -> FlightEntry<'_, V> {
        loop {
            let flight = {
                let mut map = self.inflight.lock().expect("single-flight table poisoned");
                match map.get(&(generation, epoch, key.to_string())) {
                    Some(f) => Arc::clone(f),
                    None => {
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            cv: Condvar::new(),
                        });
                        map.insert((generation, epoch, key.to_string()), Arc::clone(&flight));
                        return FlightEntry::Leader(FlightGuard {
                            table: self,
                            key: (generation, epoch, key.to_string()),
                            flight,
                            published: false,
                        });
                    }
                }
            };
            let mut state = flight.state.lock().expect("flight poisoned");
            while matches!(*state, FlightState::Pending) {
                state = flight.cv.wait(state).expect("flight poisoned");
            }
            match &*state {
                FlightState::Done(v) => return FlightEntry::Joined(v.clone()),
                // Leader abandoned (panicked): take over on a fresh slot.
                FlightState::Abandoned => continue,
                FlightState::Pending => unreachable!("left the wait loop while pending"),
            }
        }
    }
}

impl<V> FlightGuard<'_, V> {
    /// Publishes `value` to every follower and retires the flight. The
    /// caller must make the value visible in the cache *before* this,
    /// so a thread arriving after retirement finds the cached entry.
    fn publish(mut self, value: V) {
        *self.flight.state.lock().expect("flight poisoned") = FlightState::Done(value);
        self.flight.cv.notify_all();
        self.published = true;
        self.table.inflight.lock().expect("single-flight table poisoned").remove(&self.key);
    }
}

impl<V> Drop for FlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.published {
            // Leader died without an answer: wake followers to retry.
            *self.flight.state.lock().expect("flight poisoned") = FlightState::Abandoned;
            self.flight.cv.notify_all();
            self.table.inflight.lock().expect("single-flight table poisoned").remove(&self.key);
        }
    }
}

/// The service's owned metric instances, published by name in a
/// [`Registry`]. Owning (rather than sharing get-or-create handles)
/// keeps per-service readouts exact even when several services coexist
/// in one process, as they do under `cargo test`.
struct ServiceMetrics {
    result_hits: Arc<Counter>,
    result_misses: Arc<Counter>,
    result_dedup: Arc<Counter>,
    plan_hits: Arc<Counter>,
    plan_misses: Arc<Counter>,
    plan_dedup: Arc<Counter>,
    plan_evictions: Arc<Counter>,
    result_evictions: Arc<Counter>,
    stale_put_rejects: Arc<Counter>,
    installs: Arc<Counter>,
    delta_installs: Arc<Counter>,
    result_retained: Arc<Counter>,
    result_invalidated: Arc<Counter>,
    parse_us: Arc<Histogram>,
    plan_us: Arc<Histogram>,
    exec_us: Arc<Histogram>,
    clock: Arc<dyn Clock>,
}

impl ServiceMetrics {
    /// Fresh instances, registered (replacing same-named predecessors)
    /// in `registry`.
    fn publish(registry: &Registry) -> Self {
        let counter = |name: &str| {
            let c = Arc::new(Counter::new());
            registry.register_counter(name, Arc::clone(&c));
            c
        };
        let histogram = |name: &str| {
            let h = Arc::new(Histogram::latency());
            registry.register_histogram(name, Arc::clone(&h));
            h
        };
        ServiceMetrics {
            result_hits: counter("query.cache.result_hits"),
            result_misses: counter("query.cache.result_misses"),
            result_dedup: counter("query.cache.result_dedup"),
            plan_hits: counter("query.cache.plan_hits"),
            plan_misses: counter("query.cache.plan_misses"),
            plan_dedup: counter("query.cache.plan_dedup"),
            plan_evictions: counter("query.cache.plan_evictions"),
            result_evictions: counter("query.cache.result_evictions"),
            stale_put_rejects: counter("query.cache.stale_put_rejects"),
            installs: counter("query.service.installs"),
            delta_installs: counter("query.service.delta_installs"),
            result_retained: counter("query.cache.result_retained"),
            result_invalidated: counter("query.cache.result_invalidated"),
            parse_us: histogram("query.parse_us"),
            plan_us: histogram("query.plan_us"),
            exec_us: histogram("query.exec_us"),
            clock: registry.clock(),
        }
    }

    fn span(&self, hist: &Arc<Histogram>) -> SpanTimer {
        SpanTimer::start(Arc::clone(&self.clock), Arc::clone(hist))
    }

    fn count_put(&self, which: &Arc<Counter>, outcome: PutOutcome) {
        match outcome {
            PutOutcome::Inserted => {}
            PutOutcome::Evicted => which.inc(),
            PutOutcome::StaleRejected => self.stale_put_rejects.inc(),
        }
    }
}

/// The current serving view (base + delta stack) and its planner
/// statistics, swapped atomically under one lock. `number` bumps on
/// full installs and scopes plan validity; `epoch` bumps on delta
/// installs (resetting on full installs) and scopes result freshness
/// per predicate.
struct Generation {
    view: Arc<SegmentedSnapshot>,
    stats: Arc<StatsCatalog>,
    number: u64,
    epoch: u64,
}

/// A concurrent query service over an immutable, segmentable KB view.
///
/// Shared by reference (or `Arc`) across client threads; all methods
/// take `&self`. See the module docs for the caching discipline, the
/// single-flight dedup and the metrics it publishes.
pub struct QueryService {
    current: Mutex<Generation>,
    plans: Mutex<LruCache<Arc<Plan>>>,
    results: Mutex<LruCache<Arc<QueryOutput>>>,
    /// raw query text → normalized cache key.
    aliases: Mutex<LruCache<String>>,
    plan_flight: SingleFlight<Result<Arc<Plan>, QueryError>>,
    result_flight: SingleFlight<Arc<QueryOutput>>,
    single_flight: AtomicBool,
    /// Standing views maintained across delta installs. Lock order is
    /// always `current` → `views`, never the reverse.
    views: Mutex<ViewRegistry>,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// Creates a service over `snapshot` with
    /// [`DEFAULT_CACHE_CAPACITY`] for both caches. Builds the
    /// statistics catalog once, up front. Metrics are published in the
    /// process-global [`kb_obs::global()`] registry.
    pub fn new(snapshot: Arc<KbSnapshot>) -> Self {
        Self::with_capacity(snapshot, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`new`](Self::new) with an explicit per-cache bound.
    pub fn with_capacity(snapshot: Arc<KbSnapshot>, capacity: usize) -> Self {
        Self::with_instrumentation(snapshot, capacity, kb_obs::global())
    }

    /// Like [`with_capacity`](Self::with_capacity), publishing metrics
    /// in `registry` and timing spans with its clock. Tests pass a
    /// private registry (usually on a
    /// [`ManualClock`](kb_obs::ManualClock)) for exact, isolated
    /// readouts.
    pub fn with_instrumentation(
        snapshot: Arc<KbSnapshot>,
        capacity: usize,
        registry: &Registry,
    ) -> Self {
        let view = Arc::new(SegmentedSnapshot::from_base(snapshot));
        let stats = Arc::new(StatsCatalog::build(view.as_ref()));
        QueryService {
            current: Mutex::new(Generation { view, stats, number: 0, epoch: 0 }),
            plans: Mutex::new(LruCache::new(capacity)),
            results: Mutex::new(LruCache::new(capacity)),
            aliases: Mutex::new(LruCache::new(capacity * 4)),
            plan_flight: SingleFlight::new(),
            result_flight: SingleFlight::new(),
            single_flight: AtomicBool::new(true),
            views: Mutex::new(ViewRegistry::new(registry)),
            metrics: ServiceMetrics::publish(registry),
        }
    }

    /// Like [`with_instrumentation`](Self::with_instrumentation), but
    /// planning with a caller-provided statistics catalog instead of
    /// one built from `snapshot`.
    ///
    /// This is the partitioned-replica constructor: a router slicing
    /// one KB into N partition services hands every replica the
    /// *global* catalog, so each partition makes exactly the join-order
    /// decisions a monolithic service over the whole KB would — the
    /// key to byte-identical routed-single answers.
    pub fn with_shared_stats(
        snapshot: Arc<KbSnapshot>,
        stats: Arc<StatsCatalog>,
        capacity: usize,
        registry: &Registry,
    ) -> Self {
        let service = Self::with_instrumentation(snapshot, capacity, registry);
        service.current.lock().expect("service lock poisoned").stats = stats;
        service
    }

    /// Builds a service that serves an already-layered view — the
    /// cold-start path for a durable
    /// [`SegmentStore`](kb_store::SegmentStore): the recovered base
    /// installs first, then each delta stacks in order, leaving caches
    /// and planner statistics exactly as if the deltas had been applied
    /// live.
    pub fn from_view(view: &SegmentedSnapshot) -> Self {
        let service = Self::new(Arc::clone(view.base()));
        for delta in view.deltas() {
            service.apply_delta(Arc::clone(delta));
        }
        service
    }

    /// [`from_view`](Self::from_view) for lazily opened stores: faults
    /// every region of the view first (see
    /// [`KbRead::prefault`](kb_store::KbRead::prefault)) so that a
    /// cold-region corruption surfaces here as a typed
    /// [`QueryError::Store`] instead of panicking mid-query later.
    pub fn try_from_view(view: &SegmentedSnapshot) -> Result<Self, QueryError> {
        use kb_store::KbRead as _;
        view.prefault()?;
        Ok(Self::from_view(view))
    }

    /// Enables or disables single-flight dedup (on by default). Only
    /// meant for benchmarking the thundering-herd effect the dedup
    /// exists to prevent — see EXPERIMENTS.md T14.
    pub fn set_single_flight(&self, enabled: bool) {
        self.single_flight.store(enabled, Ordering::Relaxed);
    }

    fn single_flight_enabled(&self) -> bool {
        self.single_flight.load(Ordering::Relaxed)
    }

    /// Installs a new base snapshot, bumping the generation and
    /// starting a fresh (empty) delta stack. The caches are cleared and
    /// their generation floor raised, so entries computed against older
    /// generations can neither be probed nor re-inserted afterwards
    /// (see the module docs); the alias map is generation-independent
    /// and survives.
    ///
    /// The cache sweeps happen while the generation lock is held, so an
    /// `apply_delta` racing this install cannot interleave between the
    /// swap and the floor raise. (Lock order is always `current` →
    /// cache, never the reverse, so this cannot deadlock.)
    pub fn install(&self, snapshot: Arc<KbSnapshot>) {
        let view = Arc::new(SegmentedSnapshot::from_base(snapshot));
        let stats = Arc::new(StatsCatalog::build(view.as_ref()));
        let mut cur = self.current.lock().expect("service lock poisoned");
        cur.number += 1;
        cur.epoch = 0;
        let generation = cur.number;
        cur.view = view;
        cur.stats = stats;
        self.plans.lock().expect("plan cache poisoned").set_floor(generation);
        self.results.lock().expect("result cache poisoned").set_floor(generation);
        drop(cur);
        self.metrics.installs.inc();
    }

    /// Stacks `delta` onto the current view *without* a full
    /// invalidation: the epoch bumps, the delta's statistics fold into
    /// the planner catalog incrementally, and only cached results whose
    /// footprint intersects the delta's
    /// [`touched_predicates`](DeltaSegment::touched_predicates) (plus
    /// all wildcard entries) are swept — everything else keeps serving.
    /// Plans survive unless wildcard: term ids are append-only across
    /// deltas, so a cached plan stays *correct*, merely possibly
    /// mis-costed until the next full install.
    ///
    /// The delta must have been frozen (via
    /// [`KbBuilder::freeze_delta`](kb_store::KbBuilder::freeze_delta))
    /// against the currently-served view — the sequential-stacking
    /// contract; a mismatch panics. The sweep runs while the generation
    /// lock is held so no query can observe the new view with the old
    /// cache epoch.
    pub fn apply_delta(&self, delta: Arc<DeltaSegment>) {
        self.apply_delta_inner(delta, None);
    }

    /// Like [`apply_delta`](Self::apply_delta), additionally returning
    /// one consistent [`ViewUpdate`] per registered standing view the
    /// delta touches — the subscription feed. Views are maintained
    /// under the same generation lock as the install itself, so every
    /// update batch corresponds to exactly one epoch.
    pub fn apply_delta_publishing(&self, delta: Arc<DeltaSegment>) -> Vec<ViewUpdate> {
        self.apply_delta_inner(delta, None)
    }

    /// Like [`apply_delta`](Self::apply_delta), but installing a
    /// caller-provided statistics catalog instead of folding the
    /// delta's statistics into the current one.
    ///
    /// Partitioned deployments use this: the router merges the *full*
    /// delta into the global catalog once and hands the result to every
    /// partition replica, so all replicas keep planning against
    /// identical whole-KB statistics no matter which slice of the delta
    /// they received.
    pub fn apply_delta_with_stats(&self, delta: Arc<DeltaSegment>, stats: Arc<StatsCatalog>) {
        self.apply_delta_inner(delta, Some(stats));
    }

    fn apply_delta_inner(
        &self,
        delta: Arc<DeltaSegment>,
        shared: Option<Arc<StatsCatalog>>,
    ) -> Vec<ViewUpdate> {
        let mut cur = self.current.lock().expect("service lock poisoned");
        let old_view = Arc::clone(&cur.view);
        let view = Arc::new(cur.view.with_delta(Arc::clone(&delta)));
        let stats = shared.unwrap_or_else(|| Arc::new(cur.stats.merged_with_delta(&delta)));
        cur.epoch += 1;
        let epoch = cur.epoch;
        cur.view = view;
        cur.stats = stats;
        let touched = delta.touched_predicates();
        self.plans.lock().expect("plan cache poisoned").apply_delta(epoch, touched, true);
        let (retained, invalidated) =
            self.results.lock().expect("result cache poisoned").apply_delta(epoch, touched, false);
        let updates = self.views.lock().expect("view registry poisoned").apply_delta(
            delta.as_ref(),
            old_view.as_ref(),
            cur.view.as_ref(),
            &cur.stats,
        );
        drop(cur);
        self.metrics.delta_installs.inc();
        self.metrics.result_retained.add(retained);
        self.metrics.result_invalidated.add(invalidated);
        updates
    }

    /// Registers `text` as a materialized standing view over the
    /// currently-served view; later [`apply_delta`](Self::apply_delta)
    /// calls patch its answer incrementally (see [`crate::view`]).
    /// Registration holds the generation lock so the initial answer is
    /// consistent with one epoch.
    pub fn register_view(&self, text: &str) -> Result<ViewId, QueryError> {
        let cur = self.current.lock().expect("service lock poisoned");
        self.views.lock().expect("view registry poisoned").register(
            text,
            cur.view.as_ref(),
            &cur.stats,
        )
    }

    /// Removes a standing view; returns whether it existed.
    pub fn unregister_view(&self, id: ViewId) -> bool {
        self.views.lock().expect("view registry poisoned").unregister(id)
    }

    /// The standing view's current materialized answer (canonical row
    /// order).
    pub fn view_result(&self, id: ViewId) -> Option<Arc<QueryOutput>> {
        self.views.lock().expect("view registry poisoned").result(id)
    }

    /// Number of registered standing views.
    pub fn view_count(&self) -> usize {
        self.views.lock().expect("view registry poisoned").len()
    }

    /// The current snapshot generation (starts at 0, bumps on
    /// [`install`](Self::install)).
    pub fn generation(&self) -> u64 {
        self.current.lock().expect("service lock poisoned").number
    }

    /// The delta epoch within the current generation (starts at 0,
    /// bumps on [`apply_delta`](Self::apply_delta), resets on
    /// [`install`](Self::install)).
    pub fn epoch(&self) -> u64 {
        self.current.lock().expect("service lock poisoned").epoch
    }

    /// The currently served view: the base snapshot plus any stacked
    /// deltas. Freeze incremental batches against this.
    pub fn snapshot(&self) -> Arc<SegmentedSnapshot> {
        self.current.lock().expect("service lock poisoned").view.clone()
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            result_hits: self.metrics.result_hits.get(),
            result_misses: self.metrics.result_misses.get(),
            result_dedup: self.metrics.result_dedup.get(),
            plan_hits: self.metrics.plan_hits.get(),
            plan_misses: self.metrics.plan_misses.get(),
            plan_dedup: self.metrics.plan_dedup.get(),
            plan_evictions: self.metrics.plan_evictions.get(),
            result_evictions: self.metrics.result_evictions.get(),
            stale_put_rejects: self.metrics.stale_put_rejects.get(),
            delta_installs: self.metrics.delta_installs.get(),
            result_retained: self.metrics.result_retained.get(),
            result_invalidated: self.metrics.result_invalidated.get(),
        }
    }

    /// Number of live entries in (plan cache, result cache).
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.plans.lock().expect("plan cache poisoned").len(),
            self.results.lock().expect("result cache poisoned").len(),
        )
    }

    /// Diagnostic: cached plan/result entries stamped with a generation
    /// older than the current one. The generation-floor invariant keeps
    /// this at zero from the moment [`install`](Self::install) returns —
    /// a dead snapshot's entries can never reappear (regression guard
    /// for the dead-snapshot pinning bug).
    pub fn stale_entries(&self) -> usize {
        let current = self.generation();
        self.plans.lock().expect("plan cache poisoned").stale_count(current)
            + self.results.lock().expect("result cache poisoned").stale_count(current)
    }

    fn generation_handles(&self) -> (Arc<SegmentedSnapshot>, Arc<StatsCatalog>, u64, u64) {
        let cur = self.current.lock().expect("service lock poisoned");
        (cur.view.clone(), cur.stats.clone(), cur.number, cur.epoch)
    }

    /// Looks up or compiles the plan for `text`. Public so callers can
    /// inspect [`Plan::explain`] (the CLI's `--explain` does).
    pub fn plan_for(&self, text: &str) -> Result<Arc<Plan>, QueryError> {
        let (view, stats, generation, epoch) = self.generation_handles();
        self.plan_for_generation(text, &view, &stats, generation, epoch).map(|(p, _)| p)
    }

    /// Returns the plan plus the normalized cache key.
    fn plan_for_generation(
        &self,
        text: &str,
        view: &SegmentedSnapshot,
        stats: &StatsCatalog,
        generation: u64,
        epoch: u64,
    ) -> Result<(Arc<Plan>, String), QueryError> {
        // Level 1: exact raw text (skips parsing).
        let alias = self.aliases.lock().expect("alias cache poisoned").get(text, 0, 0);
        if let Some(key) = &alias {
            if let Some(p) =
                self.plans.lock().expect("plan cache poisoned").get(key, generation, epoch)
            {
                self.metrics.plan_hits.inc();
                return Ok((p, key.clone()));
            }
        }
        // Level 2: parse, normalize, probe under the canonical key.
        let parse_span = self.metrics.span(&self.metrics.parse_us);
        let parsed = parse(text);
        parse_span.stop();
        let parsed = parsed?;
        let key = parsed.to_string();
        if let Some(p) =
            self.plans.lock().expect("plan cache poisoned").get(&key, generation, epoch)
        {
            self.metrics.plan_hits.inc();
            self.remember_alias(text, &key);
            return Ok((p, key));
        }
        if !self.single_flight_enabled() {
            let compiled = self.compile_and_cache(&parsed, &key, view, stats, generation, epoch)?;
            self.remember_alias(text, &key);
            return Ok((compiled, key));
        }
        match self.plan_flight.enter(generation, epoch, &key) {
            FlightEntry::Joined(result) => {
                self.metrics.plan_dedup.inc();
                self.remember_alias(text, &key);
                result.map(|p| (p, key))
            }
            FlightEntry::Leader(guard) => {
                // Double check: the previous leader may have cached the
                // plan after our probe but before our leadership.
                if let Some(p) =
                    self.plans.lock().expect("plan cache poisoned").get(&key, generation, epoch)
                {
                    self.metrics.plan_hits.inc();
                    guard.publish(Ok(Arc::clone(&p)));
                    self.remember_alias(text, &key);
                    return Ok((p, key));
                }
                let compiled =
                    self.compile_and_cache(&parsed, &key, view, stats, generation, epoch);
                guard.publish(compiled.clone());
                self.remember_alias(text, &key);
                compiled.map(|p| (p, key))
            }
        }
    }

    /// The plan-miss path: compiles `parsed` (timed) and stores the
    /// plan under `key`, subject to the generation floor and the delta
    /// epoch freshness rule.
    fn compile_and_cache(
        &self,
        parsed: &crate::ast::SelectQuery,
        key: &str,
        view: &SegmentedSnapshot,
        stats: &StatsCatalog,
        generation: u64,
        epoch: u64,
    ) -> Result<Arc<Plan>, QueryError> {
        self.metrics.plan_misses.inc();
        let plan_span = self.metrics.span(&self.metrics.plan_us);
        let compiled = plan(parsed, view, stats);
        plan_span.stop();
        let compiled = Arc::new(compiled?);
        let outcome = self.plans.lock().expect("plan cache poisoned").put(
            key.to_string(),
            generation,
            epoch,
            compiled.footprint().clone(),
            Arc::clone(&compiled),
        );
        self.metrics.count_put(&self.metrics.plan_evictions, outcome);
        Ok(compiled)
    }

    fn remember_alias(&self, raw: &str, key: &str) {
        // Aliases map text to text — generation- and delta-independent,
        // so they carry the empty footprint and never go stale.
        self.aliases.lock().expect("alias cache poisoned").put(
            raw.to_string(),
            0,
            0,
            Footprint::default(),
            key.to_string(),
        );
    }

    /// Probes the result cache; on a hit, counts it and returns it.
    fn result_probe(&self, key: &str, generation: u64, epoch: u64) -> Option<Arc<QueryOutput>> {
        let hit = self.results.lock().expect("result cache poisoned").get(key, generation, epoch);
        if hit.is_some() {
            self.metrics.result_hits.inc();
        }
        hit
    }

    /// The result-miss path: executes (timed) and stores the output
    /// under `key`, subject to the generation floor and the delta epoch
    /// freshness rule.
    fn execute_and_cache(
        &self,
        compiled: &Plan,
        key: &str,
        view: &SegmentedSnapshot,
        generation: u64,
        epoch: u64,
    ) -> Arc<QueryOutput> {
        self.metrics.result_misses.inc();
        let exec_span = self.metrics.span(&self.metrics.exec_us);
        let out = Arc::new(execute(compiled, view));
        exec_span.stop();
        let outcome = self.results.lock().expect("result cache poisoned").put(
            key.to_string(),
            generation,
            epoch,
            compiled.footprint().clone(),
            Arc::clone(&out),
        );
        self.metrics.count_put(&self.metrics.result_evictions, outcome);
        out
    }

    /// Parses (or reuses), plans (or reuses) and executes `text`
    /// against the current view, consulting the result cache first
    /// and deduplicating concurrent identical executions (single
    /// flight).
    pub fn query(&self, text: &str) -> Result<Arc<QueryOutput>, QueryError> {
        let (view, stats, generation, epoch) = self.generation_handles();
        // Result probe under the raw text first, then normalized.
        if let Some(key) = self.aliases.lock().expect("alias cache poisoned").get(text, 0, 0) {
            if let Some(r) = self.result_probe(&key, generation, epoch) {
                return Ok(r);
            }
        }
        let (compiled, key) = self.plan_for_generation(text, &view, &stats, generation, epoch)?;
        if let Some(r) = self.result_probe(&key, generation, epoch) {
            return Ok(r);
        }
        if !self.single_flight_enabled() {
            return Ok(self.execute_and_cache(compiled.as_ref(), &key, &view, generation, epoch));
        }
        match self.result_flight.enter(generation, epoch, &key) {
            FlightEntry::Joined(out) => {
                self.metrics.result_dedup.inc();
                Ok(out)
            }
            FlightEntry::Leader(guard) => {
                // Double check: the previous leader may have cached the
                // result between our probe and our leadership; without
                // this, a second burst thread could re-execute.
                if let Some(r) = self.result_probe(&key, generation, epoch) {
                    guard.publish(Arc::clone(&r));
                    return Ok(r);
                }
                let out = self.execute_and_cache(compiled.as_ref(), &key, &view, generation, epoch);
                guard.publish(Arc::clone(&out));
                Ok(out)
            }
        }
    }

    /// Serves a batch of queries on `workers` threads, returning results
    /// in input order. With one worker (or a single query) the batch
    /// runs inline. Worker chunking mirrors `kb-analytics`'
    /// `aggregate_parallel`.
    pub fn serve_batch(
        &self,
        queries: &[&str],
        workers: usize,
    ) -> Vec<Result<Arc<QueryOutput>, QueryError>> {
        let workers = workers.max(1);
        if workers == 1 || queries.len() < 2 {
            return queries.iter().map(|q| self.query(q)).collect();
        }
        let chunk_size = queries.len().div_ceil(workers);
        let chunks: Vec<Vec<Result<Arc<QueryOutput>, QueryError>>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = queries
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope
                            .spawn(move |_| chunk.iter().map(|q| self.query(q)).collect::<Vec<_>>())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
            })
            .expect("scope failed");
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbBuilder;
    use std::sync::Barrier;
    use std::thread;

    fn snapshot() -> Arc<KbSnapshot> {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("San_Francisco", "locatedIn", "California");
        b.assert_str("San_Jose", "locatedIn", "California");
        b.freeze().into_shared()
    }

    fn service() -> QueryService {
        // A private registry keeps counter readouts isolated from any
        // other service living in this (parallel) test process.
        QueryService::with_instrumentation(snapshot(), DEFAULT_CACHE_CAPACITY, &Registry::new())
    }

    #[test]
    fn repeated_query_hits_both_caches() {
        let svc = service();
        let q = "?p bornIn ?c . ?c locatedIn California";
        let a = svc.query(q).unwrap();
        let b = svc.query(q).unwrap();
        assert_eq!(a, b);
        let stats = svc.cache_stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.result_misses, 1);
        assert_eq!(stats.result_hits, 1);
    }

    #[test]
    fn formatting_variants_share_a_plan() {
        let svc = service();
        svc.query("SELECT ?p WHERE { ?p bornIn San_Jose }").unwrap();
        svc.query("select  ?p  where { ?p bornIn San_Jose . }").unwrap();
        let stats = svc.cache_stats();
        assert_eq!(stats.plan_misses, 1, "normalization should merge the variants");
        assert_eq!(stats.result_hits, 1);
    }

    /// Pins every counter transition on the two probe paths: the
    /// raw-alias fast path (no parse) vs the normalized path (parse,
    /// then canonical-key probes).
    #[test]
    fn counter_transitions_raw_alias_vs_normalized_path() {
        let svc = service();
        let raw = "select ?p where { ?p bornIn San_Jose }"; // non-canonical spelling

        // 1. Cold: alias miss → parse → plan miss → result miss.
        svc.query(raw).unwrap();
        assert_eq!(
            svc.cache_stats(),
            CacheStats { plan_misses: 1, result_misses: 1, ..Default::default() }
        );

        // 2. Same raw text: alias hit → result hit. No parse, no plan
        //    counter moves.
        svc.query(raw).unwrap();
        assert_eq!(
            svc.cache_stats(),
            CacheStats { plan_misses: 1, result_misses: 1, result_hits: 1, ..Default::default() }
        );

        // 3. A formatting variant (alias miss, same canonical form):
        //    parse → plan HIT under the canonical key → result hit.
        svc.query("SELECT ?p WHERE { ?p bornIn San_Jose . }").unwrap();
        assert_eq!(
            svc.cache_stats(),
            CacheStats {
                plan_misses: 1,
                plan_hits: 1,
                result_misses: 1,
                result_hits: 2,
                ..Default::default()
            }
        );

        // 4. The variant again: its alias is now remembered → pure
        //    result hit on the fast path.
        svc.query("SELECT ?p WHERE { ?p bornIn San_Jose . }").unwrap();
        assert_eq!(
            svc.cache_stats(),
            CacheStats {
                plan_misses: 1,
                plan_hits: 1,
                result_misses: 1,
                result_hits: 3,
                ..Default::default()
            }
        );

        // 5. plan_for alone on a fresh text: plan miss, result counters
        //    untouched.
        svc.plan_for("?c locatedIn California").unwrap();
        let s = svc.cache_stats();
        assert_eq!((s.plan_misses, s.result_misses, s.result_hits), (2, 1, 3));

        // Conservation: one result counter per query() call.
        assert_eq!(s.result_hits + s.result_misses + s.result_dedup, 4);
    }

    #[test]
    fn install_invalidates_results() {
        let svc = service();
        let q = "SELECT ?p WHERE { ?p bornIn San_Jose }";
        let before = svc.query(q).unwrap();
        assert_eq!(before.rows.len(), 1);

        let mut b = KbBuilder::new();
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("Another_Person", "bornIn", "San_Jose");
        svc.install(b.freeze().into_shared());
        assert_eq!(svc.generation(), 1);

        let after = svc.query(q).unwrap();
        assert_eq!(after.rows.len(), 2, "stale cached result must not survive install");
    }

    /// The partial-invalidation win: a delta that touches only a
    /// disjoint predicate leaves warm results serving, bumps the
    /// retention counter and never re-executes.
    #[test]
    fn delta_install_retains_untouched_results() {
        let svc = service();
        let qa = "SELECT ?p WHERE { ?p bornIn San_Jose }";
        let qb = "SELECT ?c WHERE { ?c locatedIn California }";
        svc.query(qa).unwrap();
        svc.query(qb).unwrap();

        // A delta touching only a brand-new predicate.
        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "worksAt", "Apple_Inc");
        svc.apply_delta(Arc::new(b.freeze_delta(&view)));
        assert_eq!(svc.epoch(), 1);
        assert_eq!(svc.generation(), 0, "a delta install is not a generation bump");

        // Both warm results survive: pure cache hits, no re-execution.
        svc.query(qa).unwrap();
        svc.query(qb).unwrap();
        let stats = svc.cache_stats();
        assert_eq!(stats.delta_installs, 1);
        assert_eq!(stats.result_retained, 2, "disjoint-footprint entries must survive");
        assert_eq!(stats.result_invalidated, 0);
        assert_eq!(stats.result_misses, 2, "no re-execution after the delta");
        assert_eq!(stats.result_hits, 2);

        // The new fact is still queryable (fresh execution).
        let out = svc.query("SELECT ?x WHERE { Steve_Jobs worksAt ?x }").unwrap();
        assert_eq!(out.rows.len(), 1);
    }

    /// The flip side: a delta touching a cached query's predicate
    /// sweeps exactly that entry, and the re-execution sees the delta.
    #[test]
    fn delta_install_invalidates_touched_predicates_only() {
        let svc = service();
        let qa = "SELECT ?p WHERE { ?p bornIn San_Jose }";
        let qb = "SELECT ?c WHERE { ?c locatedIn California }";
        assert_eq!(svc.query(qa).unwrap().rows.len(), 1);
        svc.query(qb).unwrap();

        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("Another_Person", "bornIn", "San_Jose");
        svc.apply_delta(Arc::new(b.freeze_delta(&view)));

        let after = svc.query(qa).unwrap();
        assert_eq!(after.rows.len(), 2, "swept entry must re-execute over the delta");
        let stats = svc.cache_stats();
        assert_eq!(stats.result_invalidated, 1, "only the bornIn entry dies");
        assert_eq!(stats.result_retained, 1, "the locatedIn entry survives");
        assert_eq!(stats.result_misses, 3, "qa cold, qb cold, qa after the delta");
    }

    /// Standing views ride the install path: a registered view is
    /// patched by `apply_delta_publishing` and the update batch carries
    /// exactly the changed rows.
    #[test]
    fn standing_view_patches_through_the_install_path() {
        let svc = service();
        let id = svc
            .register_view("SELECT ?p ?c WHERE { ?p bornIn ?c . ?c locatedIn California }")
            .unwrap();
        assert_eq!(svc.view_count(), 1);
        assert_eq!(svc.view_result(id).unwrap().rows.len(), 2);

        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("Jerry_Brown", "bornIn", "San_Francisco");
        b.retract_str("Steve_Wozniak", "bornIn", "San_Jose");
        let updates = svc.apply_delta_publishing(Arc::new(b.freeze_delta(&view)));
        assert_eq!(updates.len(), 1);
        assert!(updates[0].patched, "conjunctive SELECT must be delta-patched");
        assert_eq!(updates[0].added.len(), 1);
        assert_eq!(updates[0].removed.len(), 1);

        // The patched answer matches a fresh service-level execution.
        let direct = svc.query("SELECT ?p ?c WHERE { ?p bornIn ?c . ?c locatedIn California }");
        assert_eq!(svc.view_result(id).unwrap().rows.len(), direct.unwrap().rows.len());

        assert!(svc.unregister_view(id));
        assert_eq!(svc.view_count(), 0);
    }

    /// A delta disjoint from every view footprint produces no updates,
    /// and plain `apply_delta` (no publishing) still maintains state.
    #[test]
    fn standing_view_survives_silent_installs() {
        let svc = service();
        let id = svc.register_view("SELECT ?p WHERE { ?p bornIn San_Jose }").unwrap();

        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "worksAt", "Apple_Inc");
        let updates = svc.apply_delta_publishing(Arc::new(b.freeze_delta(&view)));
        assert!(updates.is_empty(), "disjoint delta must not touch the view");

        let view = svc.snapshot();
        let mut b = KbBuilder::new();
        b.assert_str("Another_Person", "bornIn", "San_Jose");
        svc.apply_delta(Arc::new(b.freeze_delta(&view)));
        assert_eq!(
            svc.view_result(id).unwrap().rows.len(),
            2,
            "non-publishing installs still patch the materialized answer"
        );
    }

    /// Epoch scoping at the cache level: entries probed or re-inserted
    /// after a delta touching their footprint bounce exactly like
    /// stale-generation entries.
    #[test]
    fn delta_epoch_rejects_raced_puts_and_probes() {
        let mut lru: LruCache<u32> = LruCache::new(8);
        let p = TermId(7);
        let fp = Footprint { preds: vec![p], wildcard: false };
        assert_eq!(lru.put("q".into(), 0, 0, fp.clone(), 1), PutOutcome::Inserted);

        // A delta touching p at epoch 1 sweeps and raises the bar.
        let (retained, invalidated) = lru.apply_delta(1, &[p], false);
        assert_eq!((retained, invalidated), (0, 1));

        // A straggler stamped with the pre-delta epoch bounces.
        assert_eq!(lru.put("q".into(), 0, 0, fp.clone(), 1), PutOutcome::StaleRejected);
        // Stamped at the new epoch it lands and serves.
        assert_eq!(lru.put("q".into(), 0, 1, fp.clone(), 2), PutOutcome::Inserted);
        assert_eq!(lru.get("q", 0, 1), Some(2));

        // An untouched-predicate entry sails through regardless.
        let other = Footprint { preds: vec![TermId(9)], wildcard: false };
        assert_eq!(lru.put("r".into(), 0, 0, other, 3), PutOutcome::Inserted);
        let (retained, invalidated) = lru.apply_delta(2, &[p], false);
        assert_eq!((retained, invalidated), (1, 1), "only the p-footprint entry dies");
        assert_eq!(lru.get("r", 0, 0), Some(3));

        // Wildcard footprints die on every delta, even a disjoint one.
        let wild = Footprint { preds: vec![], wildcard: true };
        assert_eq!(lru.put("w".into(), 0, 2, wild.clone(), 4), PutOutcome::Inserted);
        lru.apply_delta(3, &[TermId(1000)], false);
        assert_eq!(lru.get("w", 0, 3), None);
        assert_eq!(lru.put("w".into(), 0, 2, wild, 4), PutOutcome::StaleRejected);
    }

    /// The thundering-herd fix: N threads issuing the same cold query
    /// must produce exactly one execution (one `result_miss`); everyone
    /// else is a cache hit or a single-flight join.
    #[test]
    fn single_flight_dedups_concurrent_cold_queries() {
        const THREADS: usize = 8;
        let svc = Arc::new(service());
        let barrier = Arc::new(Barrier::new(THREADS));
        let q = "?p bornIn ?c . ?c locatedIn California";
        let outputs: Vec<Arc<QueryOutput>> = thread::scope(|scope| {
            (0..THREADS)
                .map(|_| {
                    let svc = Arc::clone(&svc);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        svc.query(q).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for out in &outputs[1..] {
            assert_eq!(out, &outputs[0], "all threads must see the same answer");
        }
        let stats = svc.cache_stats();
        assert_eq!(stats.result_misses, 1, "exactly one execution: {stats:?}");
        assert_eq!(stats.plan_misses, 1, "exactly one compilation: {stats:?}");
        assert_eq!(
            stats.result_hits + stats.result_dedup,
            (THREADS - 1) as u64,
            "everyone else reused the leader's work: {stats:?}"
        );
    }

    /// Regression for the dead-snapshot pinning bug, at the cache
    /// level: the deterministic interleave is `put(gen 0)` →
    /// `install` (floor raised to 1, map cleared) → a straggler
    /// re-inserting its generation-0 entry. The straggler must bounce.
    #[test]
    fn stale_put_after_install_is_rejected() {
        let mut lru: LruCache<u32> = LruCache::new(8);
        let fp = Footprint::default;
        assert_eq!(lru.put("q".into(), 0, 0, fp(), 1), PutOutcome::Inserted);
        // install(): bump generation, raise the floor, clear.
        lru.set_floor(1);
        assert_eq!(lru.len(), 0);
        // The in-flight straggler stamped with the dead generation.
        assert_eq!(lru.put("q".into(), 0, 0, fp(), 1), PutOutcome::StaleRejected);
        assert_eq!(lru.len(), 0, "dead-generation entry must not be pinned");
        assert_eq!(lru.stale_count(1), 0);
        // Current-generation inserts still land.
        assert_eq!(lru.put("q".into(), 1, 0, fp(), 2), PutOutcome::Inserted);
        assert_eq!(lru.get("q", 1, 0), Some(2));
    }

    /// Service-level version of the same regression: queries racing
    /// installs must never leave an entry stamped with an older
    /// generation once `install` has returned — and the stale puts are
    /// visible in the counters.
    #[test]
    fn install_racing_queries_leaves_no_stale_entries() {
        let svc = Arc::new(service());
        let queries = [
            "?p bornIn ?c",
            "SELECT ?c WHERE { ?c locatedIn California }",
            "?p bornIn ?c . ?c locatedIn California",
        ];
        thread::scope(|scope| {
            for t in 0..4usize {
                let svc = Arc::clone(&svc);
                scope.spawn(move || {
                    for i in 0..200 {
                        let _ = svc.query(queries[(t + i) % queries.len()]);
                    }
                });
            }
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                for _ in 0..20 {
                    let mut b = KbBuilder::new();
                    b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
                    b.assert_str("San_Francisco", "locatedIn", "California");
                    svc.install(b.freeze().into_shared());
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(svc.generation(), 20);
        assert_eq!(svc.stale_entries(), 0, "no dead generation may stay cached");
        // And the invariant persists for later traffic.
        svc.query("?p bornIn ?c").unwrap();
        assert_eq!(svc.stale_entries(), 0);
    }

    #[test]
    fn batch_matches_serial_for_any_worker_count() {
        let svc = service();
        let queries: Vec<String> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    "?p bornIn ?c".to_string()
                } else {
                    format!("SELECT ?c WHERE {{ ?c locatedIn California }} LIMIT {}", i)
                }
            })
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let serial = svc.serve_batch(&refs, 1);
        for w in [2, 4, 8] {
            let parallel = svc.serve_batch(&refs, w);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.as_ref().unwrap(), p.as_ref().unwrap(), "workers = {w}");
            }
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruCache<u32> = LruCache::new(2);
        let fp = Footprint::default;
        lru.put("a".into(), 0, 0, fp(), 1);
        lru.put("b".into(), 0, 0, fp(), 2);
        assert_eq!(lru.get("a", 0, 0), Some(1));
        assert_eq!(lru.put("c".into(), 0, 0, fp(), 3), PutOutcome::Evicted); // evicts "b"
        assert_eq!(lru.get("b", 0, 0), None);
        assert_eq!(lru.get("a", 0, 0), Some(1));
        assert_eq!(lru.get("c", 0, 0), Some(3));
        // Generation mismatch is a miss and drops the entry.
        assert_eq!(lru.get("a", 1, 0), None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn eviction_and_error_counters_are_exposed() {
        let reg = Registry::new();
        let svc = QueryService::with_instrumentation(snapshot(), 1, &reg);
        svc.query("?p bornIn ?c").unwrap();
        svc.query("?c locatedIn ?s").unwrap(); // evicts the first plan+result
        let stats = svc.cache_stats();
        assert_eq!(stats.plan_evictions, 1);
        assert_eq!(stats.result_evictions, 1);
        // A parse error increments nothing but leaves the service sane.
        assert!(svc.query("SELECT WHERE {").is_err());
        assert_eq!(svc.cache_stats().result_misses, 2);
        // The metrics are visible in the registry the service published
        // into.
        assert!(reg.render_json().contains("\"query.cache.plan_evictions\":1"));
    }

    /// Timing histograms record one sample per timed step, with
    /// durations from the injected clock — never the wall clock.
    #[test]
    fn latency_histograms_use_the_injected_clock() {
        let clock = kb_obs::ManualClock::shared(0);
        let reg = Registry::with_clock(clock);
        let svc = QueryService::with_instrumentation(snapshot(), DEFAULT_CACHE_CAPACITY, &reg);
        svc.query("?p bornIn ?c").unwrap(); // cold: parse + plan + exec
        svc.query("?p bornIn ?c").unwrap(); // alias fast path: no timing
        let parse = reg.histogram("query.parse_us").snapshot();
        let plan = reg.histogram("query.plan_us").snapshot();
        let exec = reg.histogram("query.exec_us").snapshot();
        assert_eq!((parse.count, plan.count, exec.count), (1, 1, 1));
        // The manual clock never advanced, so every duration is exactly
        // zero — deterministically.
        assert_eq!((parse.sum, plan.sum, exec.sum), (0, 0, 0));
    }
}
