//! Concurrent serving layer: an `Arc<KbSnapshot>`-backed service with a
//! bounded plan cache and a generation-invalidated result cache.
//!
//! ## Caching discipline
//!
//! Two cache levels sit in front of the parse → plan → execute
//! pipeline:
//!
//! 1. **Raw-text probe** — an exact match on the query string skips
//!    parsing entirely (the hot path for repeated identical queries).
//! 2. **Normalized probe** — on a raw miss the text is parsed and its
//!    canonical [`Display`](std::fmt::Display) form becomes the cache
//!    key, so formatting variants (case of keywords, whitespace,
//!    redundant dots) share one plan and one result entry. The raw
//!    text is then recorded as an alias for future level-1 hits.
//!
//! **Invalidation rule:** every cached plan and result is stamped with
//! the snapshot *generation* it was computed against. Installing a new
//! snapshot bumps the generation; stale entries fail the stamp check on
//! their next probe and are recomputed. Plans are generation-scoped
//! because resolved [`TermId`](kb_store::TermId)s are dictionary-
//! specific, not just because facts changed.
//!
//! Batches run on a crossbeam scoped worker pool (the same shape as
//! `kb-analytics`' `aggregate_parallel`): workers share the service and
//! the immutable snapshot, so no locking happens on the read path
//! beyond brief cache probes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kb_store::KbSnapshot;

use crate::error::QueryError;
use crate::exec::{execute, QueryOutput};
use crate::parse::parse;
use crate::plan::{plan, Plan};
use crate::stats::StatsCatalog;

/// Default bound on each cache (plans and results separately).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Cache hit/miss counters, cheap to read at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered straight from the result cache.
    pub result_hits: u64,
    /// Queries that had to execute.
    pub result_misses: u64,
    /// Executions that reused a cached plan (raw or normalized hit).
    pub plan_hits: u64,
    /// Executions that parsed and planned from scratch.
    pub plan_misses: u64,
}

/// A bounded LRU keyed by `String`, stamped with the snapshot
/// generation. Recency is a monotone counter; eviction scans for the
/// minimum — `O(capacity)`, fine for the few hundred entries a plan
/// cache holds.
struct LruCache<V> {
    capacity: usize,
    tick: u64,
    map: HashMap<String, (u64, u64, V)>, // (generation, last_used, value)
}

impl<V: Clone> LruCache<V> {
    fn new(capacity: usize) -> Self {
        LruCache { capacity: capacity.max(1), tick: 0, map: HashMap::new() }
    }

    fn get(&mut self, key: &str, generation: u64) -> Option<V> {
        match self.map.get_mut(key) {
            Some((gen, used, v)) if *gen == generation => {
                self.tick += 1;
                *used = self.tick;
                Some(v.clone())
            }
            Some(_) => {
                // Stale generation: drop eagerly.
                self.map.remove(key);
                None
            }
            None => None,
        }
    }

    fn put(&mut self, key: String, generation: u64, value: V) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(evict) =
                self.map.iter().min_by_key(|(_, (_, used, _))| *used).map(|(k, _)| k.clone())
            {
                self.map.remove(&evict);
            }
        }
        self.map.insert(key, (generation, self.tick, value));
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The current snapshot and its planner statistics, swapped atomically
/// under one lock.
struct Generation {
    snapshot: Arc<KbSnapshot>,
    stats: Arc<StatsCatalog>,
    number: u64,
}

/// A concurrent query service over an immutable KB snapshot.
///
/// Shared by reference (or `Arc`) across client threads; all methods
/// take `&self`. See the module docs for the caching discipline.
pub struct QueryService {
    current: Mutex<Generation>,
    plans: Mutex<LruCache<Arc<Plan>>>,
    results: Mutex<LruCache<Arc<QueryOutput>>>,
    /// raw query text → normalized cache key.
    aliases: Mutex<LruCache<String>>,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

impl QueryService {
    /// Creates a service over `snapshot` with
    /// [`DEFAULT_CACHE_CAPACITY`] for both caches. Builds the
    /// statistics catalog once, up front.
    pub fn new(snapshot: Arc<KbSnapshot>) -> Self {
        Self::with_capacity(snapshot, DEFAULT_CACHE_CAPACITY)
    }

    /// Like [`new`](Self::new) with an explicit per-cache bound.
    pub fn with_capacity(snapshot: Arc<KbSnapshot>, capacity: usize) -> Self {
        let stats = Arc::new(StatsCatalog::build(snapshot.as_ref()));
        QueryService {
            current: Mutex::new(Generation { snapshot, stats, number: 0 }),
            plans: Mutex::new(LruCache::new(capacity)),
            results: Mutex::new(LruCache::new(capacity)),
            aliases: Mutex::new(LruCache::new(capacity * 4)),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
        }
    }

    /// Installs a new snapshot, bumping the generation. Cached plans and
    /// results from older generations die lazily on their next probe
    /// (the generation stamp no longer matches); the alias map is
    /// generation-independent and survives.
    pub fn install(&self, snapshot: Arc<KbSnapshot>) {
        let stats = Arc::new(StatsCatalog::build(snapshot.as_ref()));
        let mut cur = self.current.lock().expect("service lock poisoned");
        cur.number += 1;
        cur.snapshot = snapshot;
        cur.stats = stats;
        drop(cur);
        // Eagerly drop stale entries so a long-lived service does not
        // pin dead snapshots' plans in the LRU.
        self.plans.lock().expect("plan cache poisoned").clear();
        self.results.lock().expect("result cache poisoned").clear();
    }

    /// The current snapshot generation (starts at 0, bumps on
    /// [`install`](Self::install)).
    pub fn generation(&self) -> u64 {
        self.current.lock().expect("service lock poisoned").number
    }

    /// The currently served snapshot.
    pub fn snapshot(&self) -> Arc<KbSnapshot> {
        self.current.lock().expect("service lock poisoned").snapshot.clone()
    }

    /// Cache counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            result_hits: self.result_hits.load(Ordering::Relaxed),
            result_misses: self.result_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries in (plan cache, result cache).
    pub fn cache_sizes(&self) -> (usize, usize) {
        (
            self.plans.lock().expect("plan cache poisoned").len(),
            self.results.lock().expect("result cache poisoned").len(),
        )
    }

    fn generation_handles(&self) -> (Arc<KbSnapshot>, Arc<StatsCatalog>, u64) {
        let cur = self.current.lock().expect("service lock poisoned");
        (cur.snapshot.clone(), cur.stats.clone(), cur.number)
    }

    /// Looks up or compiles the plan for `text`. Public so callers can
    /// inspect [`Plan::explain`] (the CLI's `--explain` does).
    pub fn plan_for(&self, text: &str) -> Result<Arc<Plan>, QueryError> {
        let (snapshot, stats, generation) = self.generation_handles();
        self.plan_for_generation(text, &snapshot, &stats, generation).map(|(p, _)| p)
    }

    /// Returns the plan plus the normalized cache key.
    fn plan_for_generation(
        &self,
        text: &str,
        snapshot: &KbSnapshot,
        stats: &StatsCatalog,
        generation: u64,
    ) -> Result<(Arc<Plan>, String), QueryError> {
        // Level 1: exact raw text (skips parsing).
        let alias = self.aliases.lock().expect("alias cache poisoned").get(text, 0);
        if let Some(key) = &alias {
            if let Some(p) = self.plans.lock().expect("plan cache poisoned").get(key, generation) {
                self.plan_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((p, key.clone()));
            }
        }
        // Level 2: parse, normalize, probe under the canonical key.
        let parsed = parse(text)?;
        let key = parsed.to_string();
        if let Some(p) = self.plans.lock().expect("plan cache poisoned").get(&key, generation) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            self.remember_alias(text, &key);
            return Ok((p, key));
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(plan(&parsed, snapshot, stats)?);
        self.plans.lock().expect("plan cache poisoned").put(
            key.clone(),
            generation,
            compiled.clone(),
        );
        self.remember_alias(text, &key);
        Ok((compiled, key))
    }

    fn remember_alias(&self, raw: &str, key: &str) {
        if raw != key {
            self.aliases.lock().expect("alias cache poisoned").put(
                raw.to_string(),
                0,
                key.to_string(),
            );
        } else {
            self.aliases.lock().expect("alias cache poisoned").put(
                raw.to_string(),
                0,
                raw.to_string(),
            );
        }
    }

    /// Parses (or reuses), plans (or reuses) and executes `text`
    /// against the current snapshot, consulting the result cache first.
    pub fn query(&self, text: &str) -> Result<Arc<QueryOutput>, QueryError> {
        let (snapshot, stats, generation) = self.generation_handles();
        // Result probe under the raw text first, then normalized.
        if let Some(key) = self.aliases.lock().expect("alias cache poisoned").get(text, 0) {
            if let Some(r) =
                self.results.lock().expect("result cache poisoned").get(&key, generation)
            {
                self.result_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(r);
            }
        }
        let (compiled, key) = self.plan_for_generation(text, &snapshot, &stats, generation)?;
        if let Some(r) = self.results.lock().expect("result cache poisoned").get(&key, generation) {
            self.result_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        self.result_misses.fetch_add(1, Ordering::Relaxed);
        let out = Arc::new(execute(compiled.as_ref(), snapshot.as_ref()));
        self.results.lock().expect("result cache poisoned").put(key, generation, out.clone());
        Ok(out)
    }

    /// Serves a batch of queries on `workers` threads, returning results
    /// in input order. With one worker (or a single query) the batch
    /// runs inline. Worker chunking mirrors `kb-analytics`'
    /// `aggregate_parallel`.
    pub fn serve_batch(
        &self,
        queries: &[&str],
        workers: usize,
    ) -> Vec<Result<Arc<QueryOutput>, QueryError>> {
        let workers = workers.max(1);
        if workers == 1 || queries.len() < 2 {
            return queries.iter().map(|q| self.query(q)).collect();
        }
        let chunk_size = queries.len().div_ceil(workers);
        let chunks: Vec<Vec<Result<Arc<QueryOutput>, QueryError>>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = queries
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope
                            .spawn(move |_| chunk.iter().map(|q| self.query(q)).collect::<Vec<_>>())
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
            })
            .expect("scope failed");
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kb_store::KbBuilder;

    fn service() -> QueryService {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("San_Francisco", "locatedIn", "California");
        b.assert_str("San_Jose", "locatedIn", "California");
        QueryService::new(b.freeze().into_shared())
    }

    #[test]
    fn repeated_query_hits_both_caches() {
        let svc = service();
        let q = "?p bornIn ?c . ?c locatedIn California";
        let a = svc.query(q).unwrap();
        let b = svc.query(q).unwrap();
        assert_eq!(a, b);
        let stats = svc.cache_stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.result_misses, 1);
        assert_eq!(stats.result_hits, 1);
    }

    #[test]
    fn formatting_variants_share_a_plan() {
        let svc = service();
        svc.query("SELECT ?p WHERE { ?p bornIn San_Jose }").unwrap();
        svc.query("select  ?p  where { ?p bornIn San_Jose . }").unwrap();
        let stats = svc.cache_stats();
        assert_eq!(stats.plan_misses, 1, "normalization should merge the variants");
        assert_eq!(stats.result_hits, 1);
    }

    #[test]
    fn install_invalidates_results() {
        let svc = service();
        let q = "SELECT ?p WHERE { ?p bornIn San_Jose }";
        let before = svc.query(q).unwrap();
        assert_eq!(before.rows.len(), 1);

        let mut b = KbBuilder::new();
        b.assert_str("Steve_Wozniak", "bornIn", "San_Jose");
        b.assert_str("Another_Person", "bornIn", "San_Jose");
        svc.install(b.freeze().into_shared());
        assert_eq!(svc.generation(), 1);

        let after = svc.query(q).unwrap();
        assert_eq!(after.rows.len(), 2, "stale cached result must not survive install");
    }

    #[test]
    fn batch_matches_serial_for_any_worker_count() {
        let svc = service();
        let queries: Vec<String> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    "?p bornIn ?c".to_string()
                } else {
                    format!("SELECT ?c WHERE {{ ?c locatedIn California }} LIMIT {}", i)
                }
            })
            .collect();
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let serial = svc.serve_batch(&refs, 1);
        for w in [2, 4, 8] {
            let parallel = svc.serve_batch(&refs, w);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.as_ref().unwrap(), p.as_ref().unwrap(), "workers = {w}");
            }
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruCache<u32> = LruCache::new(2);
        lru.put("a".into(), 0, 1);
        lru.put("b".into(), 0, 2);
        assert_eq!(lru.get("a", 0), Some(1));
        lru.put("c".into(), 0, 3); // evicts "b"
        assert_eq!(lru.get("b", 0), None);
        assert_eq!(lru.get("a", 0), Some(1));
        assert_eq!(lru.get("c", 0), Some(3));
        // Generation mismatch is a miss and drops the entry.
        assert_eq!(lru.get("a", 1), None);
        assert_eq!(lru.len(), 1);
    }
}
