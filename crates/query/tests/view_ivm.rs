//! Property tests for standing-view maintenance: after any chain of
//! delta installs (assertions and retractions) over any small KB, a
//! registered view's delta-patched answer must be byte-identical to
//! re-executing its query from scratch on the post-install snapshot —
//! for every query shape, whether the registry maintains it
//! incrementally or via the re-execution fallback.

use std::sync::Arc;

use proptest::prelude::*;

use kb_obs::Registry;
use kb_query::{canonical_output, execute, parse, plan as compile, StatsCatalog, ViewRegistry};
use kb_store::{KbBuilder, SegmentedSnapshot};

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// One pattern component: kinds 0..4 pick a shared variable, anything
/// else a constant entity.
fn entity_term(kind: u8, idx: u32) -> String {
    if kind < 4 {
        format!("?{}", VARS[kind as usize])
    } else {
        format!("e{}", idx % 6)
    }
}

type PatternTuple = ((u8, u32), (u8, u32), (u8, u32));

/// Renders the pattern list, forcing the first subject to be `?x` so
/// every query has at least one variable to project / group on.
fn render_patterns(patterns: &[PatternTuple]) -> (String, Vec<String>) {
    let mut vars: Vec<String> = Vec::new();
    let seen = |t: &str, vars: &mut Vec<String>| {
        if t.starts_with('?') && !vars.iter().any(|v| v == t) {
            vars.push(t.to_string());
        }
    };
    let body = patterns
        .iter()
        .enumerate()
        .map(|(i, ((sk, si), (pk, pi), (ok, oi)))| {
            let s = if i == 0 { "?x".to_string() } else { entity_term(*sk, *si) };
            let p = format!("r{}", if *pk == 0 { *pi % 2 } else { *pi % 4 });
            let o = entity_term(*ok, *oi);
            seen(&s, &mut vars);
            seen(&o, &mut vars);
            format!("{s} {p} {o}")
        })
        .collect::<Vec<_>>()
        .join(" . ");
    (body, vars)
}

/// Wraps the conjunctive body in one of the supported query shapes.
/// Shapes 3 and 4 are always incrementally maintainable; 5 (LIMIT)
/// always takes the re-execution fallback — the property holds either
/// way, which is exactly what pins the fallback decision as sound.
fn render_query(form: u8, body: &str, vars: &[String]) -> String {
    let v0 = &vars[0];
    let vlast = vars.last().expect("?x is always present");
    match form % 6 {
        0 => body.to_string(),
        1 => format!("SELECT {v0} WHERE {{ {body} }}"),
        2 => format!("SELECT DISTINCT {v0} WHERE {{ {body} }}"),
        3 => format!("SELECT {v0} COUNT({vlast}) AS ?n WHERE {{ {body} }} GROUP BY {v0}"),
        4 => format!("SELECT {v0} WHERE {{ {body} . FILTER({v0} != e0) }} ORDER BY DESC({v0})"),
        _ => format!("SELECT {v0} WHERE {{ {body} }} ORDER BY {v0} LIMIT 3"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random KB, random standing-view shape, then a chain of 1–4
    /// random deltas mixing assertions with retractions: after every
    /// install the registry's materialized answer equals a from-scratch
    /// re-execution, byte for byte.
    #[test]
    fn patched_views_match_reexecution_across_delta_chains(
        triples in prop::collection::vec((0u32..6, 0u32..4, 0u32..6), 1..30),
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (0u8..3, 0u32..4), (0u8..6, 0u32..6)),
            1..3
        ),
        form in 0u8..6,
        deltas in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u32..6, 0u32..4, 0u32..6), 1..8),
            1..5
        ),
    ) {
        let mut b = KbBuilder::new();
        for &(s, p, o) in &triples {
            b.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let mut view = SegmentedSnapshot::from_base(b.freeze().into_shared());
        let (body, vars) = render_patterns(&patterns);
        let text = render_query(form, &body, &vars);

        let mut reg = ViewRegistry::new(&Registry::new());
        let mut stats = StatsCatalog::build(&view);
        let id = reg.register(&text, &view, &stats).expect("generated query registers");

        for ops in &deltas {
            let mut b = KbBuilder::new();
            for &(kind, s, p, o) in ops {
                let (s, p, o) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
                // kind 0 retracts (25% of ops), the rest assert.
                if kind > 0 {
                    b.assert_str(&s, &p, &o);
                } else {
                    b.retract_str(&s, &p, &o);
                }
            }
            let delta = Arc::new(b.freeze_delta(&view));
            let next = view.with_delta(Arc::clone(&delta));
            stats = stats.merged_with_delta(&delta);
            let updates = reg.apply_delta(&delta, &view, &next, &stats);
            view = next;

            // Oracle: re-parse, re-plan and re-execute on the new view.
            let parsed = parse(&text).expect("query re-parses");
            let plan = compile(&parsed, &view, &stats).expect("query re-plans");
            let want = canonical_output(&plan, &execute(&plan, &view), &view);
            let got = reg.result(id).expect("view stays registered");
            prop_assert_eq!(
                got.render(&view),
                want.render(&view),
                "standing view {} diverged after installing {:?}",
                &text,
                ops
            );
            // Every emitted update must carry the same full answer it
            // claims subscribers can resync from.
            for u in &updates {
                prop_assert_eq!(u.output.render(&view), got.render(&view));
            }
        }
    }
}
