//! Differential tests: the new engine against the legacy
//! `kb_store::query` oracle, plus parser round-trip properties.
//!
//! The legacy engine stays in-tree precisely so these tests can compare
//! binding sets on random KBs and random conjunctive queries — any
//! divergence is a bug in exactly one of the two engines.

use proptest::prelude::*;

use kb_query::exec::{cell_str, QueryOutput};
use kb_store::{KbRead, KnowledgeBase};

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// Decodes one pattern component: kinds 0..4 pick a shared variable,
/// anything else a constant entity.
fn entity_term(kind: u8, idx: u32) -> String {
    if kind < 4 {
        format!("?{}", VARS[kind as usize])
    } else {
        format!("e{}", idx % 6)
    }
}

/// Predicate position: kind 0 is a variable, else a constant relation.
fn pred_term(kind: u8, idx: u32) -> String {
    if kind == 0 {
        "?r".to_string()
    } else {
        format!("r{}", idx % 3)
    }
}

/// Resolves the new engine's rows to sorted, deduplicated string rows.
fn new_rows<K: KbRead + ?Sized>(out: &QueryOutput, kb: &K) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> =
        out.rows.iter().map(|r| r.iter().map(|c| cell_str(c, kb).into_owned()).collect()).collect();
    rows.sort();
    rows.dedup();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random conjunctive queries over random small KBs: the new engine
    /// and the legacy oracle produce identical binding sets.
    #[test]
    fn new_engine_matches_legacy_oracle(
        triples in prop::collection::vec((0u32..6, 0u32..3, 0u32..6), 1..30),
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (0u8..3, 0u32..3), (0u8..6, 0u32..6)),
            1..4
        ),
    ) {
        let mut kb = KnowledgeBase::new();
        for &(s, p, o) in &triples {
            kb.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let text = patterns
            .iter()
            .map(|((sk, si), (pk, pi), (ok, oi))| {
                format!(
                    "{} {} {}",
                    entity_term(*sk, *si),
                    pred_term(*pk, *pi),
                    entity_term(*ok, *oi)
                )
            })
            .collect::<Vec<_>>()
            .join(" . ");

        // The legacy parser rejects constants absent from the
        // dictionary; the new planner answers them with an empty result.
        let legacy = match kb_store::query::query(&kb, &text) {
            Ok(solutions) => solutions,
            Err(_) => {
                let out = kb_query::query(&kb, &text).unwrap();
                prop_assert_eq!(
                    out.rows.len(), 0,
                    "constants unknown to the dictionary can match nothing: {}", text
                );
                return Ok(());
            }
        };

        let out = kb_query::query(&kb, &text).unwrap();

        // Column names agree (both engines project all variables,
        // sorted by name).
        let legacy_q = kb_store::query::Query::parse(&kb, &text).unwrap();
        prop_assert_eq!(
            out.cols.iter().map(String::as_str).collect::<Vec<_>>(),
            legacy_q.variables()
        );

        // Binding sets agree.
        let got = new_rows(&out, &kb);
        let mut expect: Vec<Vec<String>> = legacy
            .iter()
            .map(|b| {
                b.iter_sorted()
                    .into_iter()
                    .map(|(_, t)| kb.resolve(t).unwrap().to_string())
                    .collect()
            })
            .collect();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(got, expect, "query: {}", text);
    }

    /// Both engines agree when run over a frozen snapshot as well as the
    /// live façade (same query, same KB content, different view).
    #[test]
    fn snapshot_and_facade_agree(
        triples in prop::collection::vec((0u32..5, 0u32..2, 0u32..5), 1..20),
        p1 in 0u32..2, p2 in 0u32..2,
    ) {
        let mut kb = KnowledgeBase::new();
        let mut builder = kb_store::KbBuilder::new();
        for &(s, p, o) in &triples {
            kb.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
            builder.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let snap = builder.freeze();
        let text = format!("?x r{p1} ?y . ?y r{p2} ?z");
        let a = kb_query::query(&kb, &text).unwrap();
        let b = kb_query::query(&snap, &text).unwrap();
        prop_assert_eq!(new_rows(&a, &kb), new_rows(&b, &snap));
    }

    /// Segmented vs monolithic read path, at the engine level: the
    /// same op sequence — asserts and retractions — split into a base
    /// plus 1–3 random deltas must produce identical SELECT binding
    /// sets to the single-shot monolithic snapshot, for random
    /// conjunctive queries.
    #[test]
    fn select_results_identical_across_segment_splits(
        ops in prop::collection::vec((0u8..5, 0u32..6, 0u32..3, 0u32..6), 1..40),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (0u8..3, 0u32..3), (0u8..6, 0u32..6)),
            1..4
        ),
    ) {
        use std::sync::Arc;
        // kind 0 retracts (a tombstone when it crosses a segment
        // boundary), anything else asserts.
        let apply = |b: &mut kb_store::KbBuilder, (kind, s, p, o): (u8, u32, u32, u32)| {
            let (es, rp, eo) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
            if kind == 0 {
                b.retract_str(&es, &rp, &eo);
            } else {
                b.assert_str(&es, &rp, &eo);
            }
        };
        let mut mono_b = kb_store::KbBuilder::new();
        for &op in &ops {
            apply(&mut mono_b, op);
        }
        let mono = mono_b.freeze();

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c.index(ops.len() + 1)).collect();
        bounds.push(0);
        bounds.push(ops.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut chunks = bounds.windows(2).map(|w| &ops[w[0]..w[1]]);
        let mut base = kb_store::KbBuilder::new();
        for &op in chunks.next().unwrap_or(&[]) {
            apply(&mut base, op);
        }
        let mut view = kb_store::SegmentedSnapshot::from_base(base.freeze().into_shared());
        for chunk in chunks {
            let mut b = kb_store::KbBuilder::new();
            for &op in chunk {
                apply(&mut b, op);
            }
            view = view.with_delta(Arc::new(b.freeze_delta(&view)));
        }

        let text = patterns
            .iter()
            .map(|((sk, si), (pk, pi), (ok, oi))| {
                format!(
                    "{} {} {}",
                    entity_term(*sk, *si),
                    pred_term(*pk, *pi),
                    entity_term(*ok, *oi)
                )
            })
            .collect::<Vec<_>>()
            .join(" . ");
        let a = kb_query::query(&mono, &text).unwrap();
        let b = kb_query::query(&view, &text).unwrap();
        prop_assert_eq!(
            new_rows(&a, &mono), new_rows(&b, &view),
            "segment split diverged on: {}", text
        );
    }

    /// The batch executor is the tuple executor, vectorized: on random
    /// KBs and random query shapes (conjunctions, OPTIONAL, UNION,
    /// FILTER, aggregates, modifiers) the default [`kb_query::execute`]
    /// path must return output *byte-identical* to
    /// [`kb_query::execute_tuple`] — same rows, same order — over both
    /// the monolithic snapshot and a segmented delta stack.
    #[test]
    fn batch_executor_matches_tuple_oracle(
        ops in prop::collection::vec((0u8..5, 0u32..6, 0u32..3, 0u32..6), 1..40),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (0u8..3, 0u32..3), (0u8..6, 0u32..6)),
            1..4
        ),
        optional in prop::option::of(((0u8..6, 0u32..6), (1u8..3, 0u32..3), (0u8..6, 0u32..6))),
        union in any::<bool>(),
        filter in prop::option::of((0u8..4, 0u8..6, 0u32..6)),
        aggregate in any::<bool>(),
        limit in prop::option::of(0usize..20),
    ) {
        use std::sync::Arc;
        let apply = |b: &mut kb_store::KbBuilder, (kind, s, p, o): (u8, u32, u32, u32)| {
            let (es, rp, eo) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
            if kind == 0 {
                b.retract_str(&es, &rp, &eo);
            } else {
                b.assert_str(&es, &rp, &eo);
            }
        };
        let mut mono_b = kb_store::KbBuilder::new();
        for &op in &ops {
            apply(&mut mono_b, op);
        }
        let mono = mono_b.freeze();

        let mut bounds: Vec<usize> = cuts.iter().map(|c| c.index(ops.len() + 1)).collect();
        bounds.push(0);
        bounds.push(ops.len());
        bounds.sort_unstable();
        bounds.dedup();
        let mut chunks = bounds.windows(2).map(|w| &ops[w[0]..w[1]]);
        let mut base = kb_store::KbBuilder::new();
        for &op in chunks.next().unwrap_or(&[]) {
            apply(&mut base, op);
        }
        let mut seg = kb_store::SegmentedSnapshot::from_base(base.freeze().into_shared());
        for chunk in chunks {
            let mut b = kb_store::KbBuilder::new();
            for &op in chunk {
                apply(&mut b, op);
            }
            seg = seg.with_delta(Arc::new(b.freeze_delta(&seg)));
        }

        let mut body: Vec<String> = patterns
            .iter()
            .map(|((sk, si), (pk, pi), (ok, oi))| {
                format!(
                    "{} {} {}",
                    entity_term(*sk, *si),
                    pred_term(*pk, *pi),
                    entity_term(*ok, *oi)
                )
            })
            .collect();
        if union {
            body.push("{ ?x r0 ?y } UNION { ?x r1 ?y }".to_string());
        }
        if let Some(((sk, si), (pk, pi), (ok, oi))) = optional {
            body.push(format!(
                "OPTIONAL {{ {} {} {} }}",
                entity_term(sk, si),
                pred_term(pk, pi),
                entity_term(ok, oi)
            ));
        }
        if let Some((v, op, e)) = filter {
            let sym = ["=", "!=", "<", "<=", ">", ">="][op as usize % 6];
            body.push(format!("FILTER(?{} {} e{})", VARS[v as usize % 4], sym, e));
        }
        let mut text = if aggregate {
            format!(
                "SELECT ?x COUNT(?y) AS ?n WHERE {{ {} }} GROUP BY ?x ORDER BY DESC(?n) ?x",
                body.join(" . ")
            )
        } else {
            format!("SELECT * WHERE {{ {} }}", body.join(" . "))
        };
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }

        let parsed = match kb_query::parse(&text) {
            Ok(q) => q,
            // Aggregate shape may project a variable the body never
            // binds; planning rejects it identically on both paths.
            Err(_) => return Ok(()),
        };
        for view in [&mono as &dyn KbRead, &seg as &dyn KbRead] {
            let stats = kb_query::StatsCatalog::build(view);
            let plan = match kb_query::plan(&parsed, view, &stats) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let (batch, trace) = kb_query::execute_traced(&plan, view);
            let tuple = kb_query::execute_tuple(&plan, view);
            prop_assert_eq!(
                &batch, &tuple,
                "batch/tuple divergence on {:?} (segmented: {})",
                &text, !std::ptr::addr_eq(view, &mono)
            );
            prop_assert_eq!(plan.ops().len(), trace.op_rows.len());
        }
    }

    /// Parser round-trip: `parse ∘ display` is the identity on the
    /// algebra, and the canonical display form is a fixpoint.
    #[test]
    fn display_then_parse_is_identity(
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (1u8..3, 0u32..3), (0u8..6, 0u32..6), prop::option::of(1900i32..2030)),
            1..4
        ),
        distinct in any::<bool>(),
        project in prop::option::of(prop::collection::vec(0usize..4, 1..3)),
        filter in prop::option::of((0u8..4, 0u8..6, 1900i32..2030)),
        optional in prop::option::of(((0u8..6, 0u32..6), (1u8..3, 0u32..3), (0u8..6, 0u32..6))),
        union in any::<bool>(),
        limit in prop::option::of(0usize..50),
        offset in prop::option::of(1usize..10),
        order in prop::option::of((0usize..4, any::<bool>())),
    ) {
        let fmt_pattern = |(sk, si): (u8, u32), (pk, pi): (u8, u32), (ok, oi): (u8, u32), at: Option<i32>| {
            let mut s = format!(
                "{} {} {}",
                entity_term(sk, si),
                pred_term(pk, pi),
                entity_term(ok, oi)
            );
            if let Some(year) = at {
                s.push_str(&format!(" @{year}"));
            }
            s
        };
        let mut body: Vec<String> = patterns
            .iter()
            .map(|&(s, p, o, at)| fmt_pattern(s, p, o, at))
            .collect();
        if union {
            body.push("{ ?x r0 ?y } UNION { ?x r1 ?y }".to_string());
        }
        if let Some((s, p, o)) = optional {
            body.push(format!("OPTIONAL {{ {} }}", fmt_pattern(s, p, o, None)));
        }
        if let Some((v, op, year)) = filter {
            let sym = ["<", "<=", ">", ">="][op as usize % 4];
            body.push(format!("FILTER(?{} {} {})", VARS[v as usize % 4], sym, year));
        }
        let mut text = String::new();
        if project.is_some() || distinct || limit.is_some() || offset.is_some() || order.is_some() {
            text.push_str("SELECT ");
            if distinct {
                text.push_str("DISTINCT ");
            }
            match &project {
                None => text.push('*'),
                Some(vars) => {
                    let items: Vec<String> =
                        vars.iter().map(|&v| format!("?{}", VARS[v])).collect();
                    text.push_str(&items.join(" "));
                }
            }
            text.push_str(&format!(" WHERE {{ {} }}", body.join(" . ")));
            if let Some((v, desc)) = order {
                if desc {
                    text.push_str(&format!(" ORDER BY DESC(?{})", VARS[v]));
                } else {
                    text.push_str(&format!(" ORDER BY ?{}", VARS[v]));
                }
            }
            if let Some(n) = limit {
                text.push_str(&format!(" LIMIT {n}"));
            }
            if let Some(n) = offset {
                text.push_str(&format!(" OFFSET {n}"));
            }
        } else {
            text.push_str(&body.join(" . "));
        }

        let q1 = kb_query::parse(&text).unwrap_or_else(|e| panic!("generated query failed to parse: {text:?}: {e}"));
        let canonical = q1.to_string();
        let q2 = kb_query::parse(&canonical)
            .unwrap_or_else(|e| panic!("canonical form failed to re-parse: {canonical:?}: {e}"));
        prop_assert_eq!(&q1, &q2, "display → parse changed the algebra for {:?}", text);
        prop_assert_eq!(q2.to_string(), canonical, "canonical display is not a fixpoint");
    }

    /// Normalization maps formatting variants of the same query to one
    /// canonical string.
    #[test]
    fn normalize_merges_formatting_variants(
        p in 0u32..3,
        spaces in 1usize..4,
        upper in any::<bool>(),
    ) {
        let pad = " ".repeat(spaces);
        let kw = if upper { "SELECT" } else { "select" };
        let variant = format!("{kw}{pad}?x{pad}WHERE {{ ?x r{p} ?y .{pad}}}");
        let reference = format!("SELECT ?x WHERE {{ ?x r{p} ?y }}");
        prop_assert_eq!(
            kb_query::normalize(&variant).unwrap(),
            kb_query::normalize(&reference).unwrap()
        );
    }
}

/// Regression (PR 3 review finding, promoted from a scratch test): an
/// OPTIONAL block after a UNION must correlate its merge-range join
/// with the bindings produced by the union branches — the merge-range
/// physical operator must not cross-join uncorrelated `bornIn`/`diedIn`
/// rows onto every union binding.
#[test]
fn optional_after_union_keeps_merge_range_correlated() {
    use kb_store::KbBuilder;

    let mut b = KbBuilder::new();
    // Union binds ?a.
    b.assert_str("alice", "knows", "bob");
    b.assert_str("carol", "likes", "bob");
    // Merge-eligible pair inside the OPTIONAL: ?a bornIn ?c . ?d diedIn ?c
    b.assert_str("alice", "bornIn", "town1");
    b.assert_str("carol", "bornIn", "town2");
    b.assert_str("dave", "diedIn", "town1");
    b.assert_str("erin", "diedIn", "town2");
    let snap = b.freeze();

    let q = "SELECT ?a ?c ?d WHERE { { ?a knows bob } UNION { ?a likes bob } \
             OPTIONAL { ?a bornIn ?c . ?d diedIn ?c } }";
    let parsed = kb_query::parse(q).unwrap();
    let stats = kb_query::StatsCatalog::build(&snap);
    let plan = kb_query::plan(&parsed, &snap, &stats).unwrap();
    let out = kb_query::execute(&plan, &snap);

    // Each union branch correlates with its own bornIn town and that
    // town's diedIn counterpart — never a cross-joined mix. (The engine
    // uses bag semantics and may emit duplicate rows; the correlation
    // invariant is about the distinct bindings.)
    let distinct = new_rows(&out, &snap);
    assert_eq!(
        distinct,
        vec![
            vec!["alice".to_string(), "town1".to_string(), "dave".to_string()],
            vec!["carol".to_string(), "town2".to_string(), "erin".to_string()],
        ],
        "rows: {:?}",
        out.rows
    );
}
