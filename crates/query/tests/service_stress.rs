//! Concurrent serving stress test: many client threads hammering one
//! `QueryService` must see byte-identical results to a serial run —
//! and, with single-flight dedup, *exact* (not merely plausible) cache
//! counters.

use std::sync::{Arc, Barrier};
use std::thread;

use kb_obs::Registry;
use kb_query::QueryService;
use kb_store::{KbBuilder, KbSnapshot};

/// A service with isolated metrics, so counter assertions cannot be
/// perturbed by other tests running in the same process.
fn isolated_service(snap: Arc<KbSnapshot>) -> QueryService {
    QueryService::with_instrumentation(snap, kb_query::DEFAULT_CACHE_CAPACITY, &Registry::new())
}

/// A deterministic synthetic KB with skewed relation sizes, shared
/// entities and a temporal column rendered as year literals.
fn build_kb() -> KbSnapshot {
    let mut b = KbBuilder::new();
    for i in 0..2000u32 {
        b.assert_str(&format!("p{}", i % 400), "bornIn", &format!("c{}", i % 40));
    }
    for i in 0..40u32 {
        b.assert_str(&format!("c{i}"), "locatedIn", &format!("s{}", i % 5));
    }
    for i in 0..300u32 {
        b.assert_str(&format!("p{}", i % 400), "worksAt", &format!("co{}", i % 20));
    }
    for i in 0..20u32 {
        b.assert_str(&format!("co{i}"), "headquarteredIn", &format!("c{}", i % 40));
    }
    for i in 0..100u32 {
        b.assert_str(&format!("p{i}"), "bornOn", &format!("{}", 1900 + (i % 100)));
    }
    b.freeze()
}

/// A workload of distinct query shapes: joins, filters, optionals,
/// unions, aggregates, modifiers.
fn workload() -> Vec<String> {
    let mut qs = vec![
        "?p bornIn ?c . ?c locatedIn s0".to_string(),
        "SELECT DISTINCT ?c WHERE { ?p bornIn ?c . ?p worksAt ?co }".to_string(),
        "SELECT ?p ?co WHERE { ?p bornIn c1 OPTIONAL { ?p worksAt ?co } } ORDER BY ?p LIMIT 25"
            .to_string(),
        "SELECT ?x WHERE { { ?x locatedIn s1 } UNION { ?x headquarteredIn c1 } }".to_string(),
        "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c ORDER BY DESC(?n) ?c LIMIT 10"
            .to_string(),
        "SELECT ?p ?y WHERE { ?p bornOn ?y . FILTER(?y < 1930) } ORDER BY ?y ?p".to_string(),
        "?a bornIn ?c . ?b bornIn ?c . FILTER(?a != ?b)".to_string(),
        "?p worksAt ?co . ?co headquarteredIn ?c . ?c locatedIn ?s".to_string(),
    ];
    for i in 0..12 {
        qs.push(format!("SELECT ?p WHERE {{ ?p bornIn c{i} }} ORDER BY ?p"));
    }
    qs
}

/// Renders every query result (or error) as one deterministic string.
fn run_serial(svc: &QueryService, queries: &[String]) -> Vec<String> {
    let snap = svc.snapshot();
    queries
        .iter()
        .map(|q| match svc.query(q) {
            Ok(out) => out.render(snap.as_ref()),
            Err(e) => format!("error: {e}"),
        })
        .collect()
}

#[test]
fn client_threads_match_serial_byte_for_byte() {
    let snap = build_kb().into_shared();
    let queries: Vec<String> = {
        // Repeat the workload so cache hits and misses interleave.
        let base = workload();
        (0..6).flat_map(|_| base.clone()).collect()
    };

    let serial_svc = isolated_service(snap.clone());
    let expected = run_serial(&serial_svc, &queries);
    let serial_stats = serial_svc.cache_stats();
    // Serial ground truth: each distinct normalized query misses
    // exactly once; everything else hits.
    assert_eq!(
        serial_stats.result_hits + serial_stats.result_misses,
        queries.len() as u64,
        "serial conservation: {serial_stats:?}"
    );

    for clients in [2usize, 4, 8] {
        let svc = Arc::new(isolated_service(snap.clone()));
        let mut slots: Vec<Option<String>> = vec![None; queries.len()];
        let answers: Vec<(usize, String)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let svc = Arc::clone(&svc);
                    let queries = &queries;
                    let snap = snap.clone();
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        // Strided assignment: every client touches every
                        // query shape eventually.
                        for i in (c..queries.len()).step_by(clients) {
                            let rendered = match svc.query(&queries[i]) {
                                Ok(out) => out.render(snap.as_ref()),
                                Err(e) => format!("error: {e}"),
                            };
                            mine.push((i, rendered));
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
        });
        for (i, rendered) in answers {
            slots[i] = Some(rendered);
        }
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(
                slot.as_deref(),
                Some(expected[i].as_str()),
                "{clients} clients diverged from serial on query #{i}: {}",
                queries[i]
            );
        }
        // Counters are exact under concurrency, not merely racy
        // approximations: every query() increments exactly one of
        // hits/misses/dedup, and single-flight guarantees each distinct
        // query executes exactly once — the same miss counts as the
        // serial run.
        let stats = svc.cache_stats();
        assert_eq!(
            stats.result_hits + stats.result_misses + stats.result_dedup,
            queries.len() as u64,
            "{clients} clients: result-counter conservation violated: {stats:?}"
        );
        assert_eq!(
            stats.result_misses, serial_stats.result_misses,
            "{clients} clients: each distinct query must execute exactly once: {stats:?}"
        );
        assert_eq!(
            stats.plan_misses, serial_stats.plan_misses,
            "{clients} clients: each distinct query must be planned exactly once: {stats:?}"
        );
        assert!(stats.result_hits > 0, "repeated workload should hit the result cache: {stats:?}");
    }
}

/// The thundering-herd regression at integration scale: for every query
/// shape in the workload, 8 threads hitting the same *cold* query
/// through one barrier must produce exactly one execution.
#[test]
fn cold_query_bursts_execute_exactly_once() {
    const THREADS: usize = 8;
    let snap = build_kb().into_shared();
    let svc = Arc::new(isolated_service(snap.clone()));
    for (i, q) in workload().iter().enumerate() {
        let misses_before = svc.cache_stats().result_misses;
        let barrier = Arc::new(Barrier::new(THREADS));
        thread::scope(|scope| {
            for _ in 0..THREADS {
                let svc = Arc::clone(&svc);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    svc.query(q).expect("workload query must parse");
                });
            }
        });
        let stats = svc.cache_stats();
        assert_eq!(
            stats.result_misses,
            misses_before + 1,
            "burst #{i} ({q}) must execute exactly once: {stats:?}"
        );
    }
    let stats = svc.cache_stats();
    let issued = (workload().len() * THREADS) as u64;
    assert_eq!(
        stats.result_hits + stats.result_misses + stats.result_dedup,
        issued,
        "conservation across all bursts: {stats:?}"
    );
}

#[test]
fn serve_batch_matches_serial_for_every_worker_count() {
    let snap = build_kb().into_shared();
    let queries = workload();
    let refs: Vec<&str> = queries.iter().map(String::as_str).collect();

    let svc = QueryService::new(snap.clone());
    let serial = svc.serve_batch(&refs, 1);
    for workers in [2usize, 3, 4, 8] {
        let fresh = QueryService::new(snap.clone());
        let parallel = fresh.serve_batch(&refs, workers);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            let s = s.as_ref().expect("serial query failed");
            let p = p.as_ref().expect("parallel query failed");
            assert_eq!(
                s.render(snap.as_ref()),
                p.render(snap.as_ref()),
                "workers={workers} diverged on query #{i}"
            );
        }
    }
}

/// Delta installs racing live queries: answers stay well-formed, no
/// stale-generation entry survives, and — the point of segmenting —
/// warm results whose predicates the deltas never touch keep serving
/// (the retention counter must move).
#[test]
fn delta_installs_under_load_retain_untouched_results() {
    const DELTAS: u64 = 8;
    let snap = build_kb().into_shared();
    let svc = Arc::new(isolated_service(snap));
    // Queries whose footprints the deltas never touch...
    let untouched = ["?c locatedIn ?s", "?co headquarteredIn ?c"];
    // ...and one footprint every delta hits.
    let touched = "SELECT ?p ?y WHERE { ?p bornOn ?y } ORDER BY ?y ?p LIMIT 5";
    for q in untouched {
        svc.query(q).unwrap();
    }
    svc.query(touched).unwrap();

    thread::scope(|scope| {
        for c in 0..4usize {
            let svc = Arc::clone(&svc);
            scope.spawn(move || {
                for i in 0..150 {
                    let q = if (c + i) % 3 == 0 { touched } else { untouched[(c + i) % 2] };
                    svc.query(q).expect("query must stay well-formed under delta installs");
                }
            });
        }
        // One installer thread owns the delta stack, so the
        // sequential-stacking contract holds by construction.
        let svc = Arc::clone(&svc);
        scope.spawn(move || {
            for d in 0..DELTAS {
                let view = svc.snapshot();
                let mut b = KbBuilder::new();
                b.assert_str(&format!("px{d}"), "bornOn", &format!("{}", 1850 + d));
                svc.apply_delta(Arc::new(b.freeze_delta(&view)));
                thread::yield_now();
            }
        });
    });

    let stats = svc.cache_stats();
    assert_eq!(stats.delta_installs, DELTAS);
    assert!(
        stats.result_retained > 0,
        "untouched-footprint entries must survive delta installs: {stats:?}"
    );
    assert_eq!(svc.generation(), 0, "deltas must not bump the generation");
    assert_eq!(svc.epoch(), DELTAS);
    assert_eq!(svc.stale_entries(), 0);
    // Every delta's fact is visible in the final view.
    let out =
        svc.query("SELECT ?p ?y WHERE { ?p bornOn ?y . FILTER(?y < 1900) } ORDER BY ?y").unwrap();
    assert_eq!(out.rows.len(), DELTAS as usize);
}

#[test]
fn install_under_concurrent_load_is_safe() {
    let snap = build_kb().into_shared();
    let svc = Arc::new(QueryService::new(snap.clone()));
    let queries = workload();

    thread::scope(|scope| {
        for c in 0..4usize {
            let svc = Arc::clone(&svc);
            let queries = &queries;
            scope.spawn(move || {
                for i in 0..100 {
                    let q = &queries[(c + i) % queries.len()];
                    // Results vary across generations; the invariant is
                    // no panic, no poisoned lock, always a well-formed
                    // answer.
                    let _ = svc.query(q);
                }
            });
        }
        let svc = Arc::clone(&svc);
        scope.spawn(move || {
            for gen in 0..5u32 {
                let mut b = KbBuilder::new();
                for i in 0..(100 * (gen + 1)) {
                    b.assert_str(&format!("p{}", i % 50), "bornIn", &format!("c{}", i % 10));
                }
                svc.install(b.freeze().into_shared());
            }
        });
    });
    assert_eq!(svc.generation(), 5);
    // Dead-snapshot pinning regression: once the last install returned,
    // no cache entry may be stamped with an older generation — the
    // generation floor rejects stragglers' re-inserts.
    assert_eq!(svc.stale_entries(), 0, "stale entries pin dead snapshots");
    let out = svc.query("?p bornIn c1").unwrap();
    assert!(!out.rows.is_empty());
}
