//! Scratch test (review only, not part of the PR).

use kb_query::exec::cell_str;
use kb_store::KbBuilder;

#[test]
fn optional_after_union_merge_range_correlation() {
    let mut b = KbBuilder::new();
    // Union binds ?a.
    b.assert_str("alice", "knows", "bob");
    b.assert_str("carol", "likes", "bob");
    // Merge-eligible pair inside the OPTIONAL: ?a bornIn ?c . ?d diedIn ?c
    b.assert_str("alice", "bornIn", "town1");
    b.assert_str("carol", "bornIn", "town2");
    b.assert_str("dave", "diedIn", "town1");
    b.assert_str("erin", "diedIn", "town2");
    let snap = b.freeze();

    let q = "SELECT ?a ?c ?d WHERE { { ?a knows bob } UNION { ?a likes bob } OPTIONAL { ?a bornIn ?c . ?d diedIn ?c } }";
    let parsed = kb_query::parse(q).unwrap();
    let stats = kb_query::StatsCatalog::build(&snap);
    let plan = kb_query::plan(&parsed, &snap, &stats).unwrap();
    eprintln!("EXPLAIN:");
    for l in plan.explain() {
        eprintln!("  {l}");
    }
    let out = kb_query::execute(&plan, &snap);
    eprintln!("ROWS:");
    for r in &out.rows {
        eprintln!("  {}", out.render_row(r, &snap));
    }
    // Expected: alice correlates only with town1/dave; carol only with town2/erin.
    for r in &out.rows {
        let a = cell_str(&r[0], &snap).into_owned();
        let c = cell_str(&r[1], &snap).into_owned();
        if a == "alice" {
            assert_eq!(c, "town1", "alice must correlate with her own bornIn: {r:?}");
        }
        if a == "carol" {
            assert_eq!(c, "town2", "carol must correlate with her own bornIn: {r:?}");
        }
    }
}
