//! The hand-tuned rule matcher: the classical baseline a learned
//! matcher must beat (experiment T6).

use crate::features::pair_features;
use crate::record::Record;

/// Rule-matcher thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RuleConfig {
    /// Names at or above this Jaro-Winkler match outright (absent
    /// attribute conflicts).
    pub high_name_sim: f64,
    /// Names at or above this match when attributes agree.
    pub mid_name_sim: f64,
    /// Minimum attribute agreement for the mid-similarity path.
    pub min_agreement: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self { high_name_sim: 0.92, mid_name_sim: 0.78, min_agreement: 0.5 }
    }
}

/// Decides whether two records match by rule.
pub fn rule_match(a: &Record, b: &Record, cfg: &RuleConfig) -> bool {
    let f = pair_features(a, b);
    let (jw, agree, conflict) = (f[1], f[6], f[7]);
    if conflict > 0.5 {
        // Majority of shared attributes disagree: reject outright.
        return false;
    }
    if jw >= cfg.high_name_sim {
        return true;
    }
    jw >= cfg.mid_name_sim && agree >= cfg.min_agreement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_names_match() {
        let a = Record::new(0, 0, "Alan Varen", &[]);
        let b = Record::new(1, 1, "Alan Varen", &[]);
        assert!(rule_match(&a, &b, &RuleConfig::default()));
    }

    #[test]
    fn typo_names_match_when_attributes_agree() {
        let a = Record::new(0, 0, "Alan Varen", &[("year", "1950")]);
        let b = Record::new(1, 1, "Alan Vraen", &[("year", "1950")]);
        assert!(rule_match(&a, &b, &RuleConfig::default()));
    }

    #[test]
    fn conflicting_attributes_block_matches() {
        let a = Record::new(0, 0, "Alan Varen", &[("year", "1950")]);
        let b = Record::new(1, 1, "Alan Varen", &[("year", "1981")]);
        assert!(!rule_match(&a, &b, &RuleConfig::default()));
    }

    #[test]
    fn unrelated_names_do_not_match() {
        let a = Record::new(0, 0, "Alan Varen", &[]);
        let b = Record::new(1, 1, "Quinta Osterberg", &[]);
        assert!(!rule_match(&a, &b, &RuleConfig::default()));
    }
}
