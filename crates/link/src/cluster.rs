//! Constrained transitive closure: turning pairwise match decisions
//! into `sameAs` clusters without letting one bad match glue distinct
//! entities together.
//!
//! The closure is a union-find over matched pairs, but a merge is
//! *refused* when the two clusters carry conflicting values for a
//! distinguishing attribute (e.g. two different birth years) — the
//! "graph algorithms" + constraint checking of tutorial §4.

use std::collections::{HashMap, HashSet};

use crate::record::Record;

/// Clustering outcome.
#[derive(Debug, Clone)]
pub struct Clusters {
    /// record id → cluster representative id.
    pub assignment: HashMap<u32, u32>,
    /// Merges refused due to attribute conflicts.
    pub refused_merges: usize,
}

impl Clusters {
    /// Whether two records ended up in the same cluster.
    pub fn same(&self, a: u32, b: u32) -> bool {
        match (self.assignment.get(&a), self.assignment.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// All equivalent pairs `(a, b)` with `a < b` implied by the
    /// clustering (the evaluated closure).
    pub fn implied_pairs(&self) -> HashSet<(u32, u32)> {
        let mut by_cluster: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&id, &root) in &self.assignment {
            by_cluster.entry(root).or_default().push(id);
        }
        let mut pairs = HashSet::new();
        for members in by_cluster.values() {
            let mut m = members.clone();
            m.sort_unstable();
            for i in 0..m.len() {
                for j in i + 1..m.len() {
                    pairs.insert((m[i], m[j]));
                }
            }
        }
        pairs
    }
}

/// Attributes whose disagreement blocks a merge.
pub const DISTINGUISHING_ATTRS: [&str; 2] = ["year", "birth_place"];

/// Builds clusters from matched pairs with constraint checking.
///
/// Pairs are processed in the order given (process strongest matches
/// first for best results); each merge first checks that no
/// distinguishing attribute conflicts between the two clusters.
pub fn cluster_with_constraints(
    records: &[Record],
    matched_pairs: &[(u32, u32)],
    check_constraints: bool,
) -> Clusters {
    let by_id: HashMap<u32, &Record> = records.iter().map(|r| (r.id, r)).collect();
    let mut parent: HashMap<u32, u32> = records.iter().map(|r| (r.id, r.id)).collect();
    // Cluster attribute profile: root -> attr key -> value set.
    let mut profile: HashMap<u32, HashMap<String, HashSet<String>>> = HashMap::new();
    for r in records {
        let p = profile.entry(r.id).or_default();
        for (k, v) in &r.attrs {
            if DISTINGUISHING_ATTRS.contains(&k.as_str()) {
                p.entry(k.clone()).or_default().insert(v.to_lowercase());
            }
        }
    }
    fn find(parent: &mut HashMap<u32, u32>, x: u32) -> u32 {
        let mut root = x;
        while parent[&root] != root {
            root = parent[&root];
        }
        let mut cur = x;
        while parent[&cur] != root {
            let next = parent[&cur];
            parent.insert(cur, root);
            cur = next;
        }
        root
    }
    let mut refused = 0usize;
    for &(a, b) in matched_pairs {
        if !by_id.contains_key(&a) || !by_id.contains_key(&b) {
            continue;
        }
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra == rb {
            continue;
        }
        if check_constraints {
            let pa = profile.get(&ra).cloned().unwrap_or_default();
            let pb = profile.get(&rb).cloned().unwrap_or_default();
            let conflict =
                DISTINGUISHING_ATTRS.iter().any(|key| match (pa.get(*key), pb.get(*key)) {
                    (Some(va), Some(vb)) => va.is_disjoint(vb) && !va.is_empty() && !vb.is_empty(),
                    _ => false,
                });
            if conflict {
                refused += 1;
                continue;
            }
        }
        // Merge rb into ra, folding profiles.
        parent.insert(rb, ra);
        let pb = profile.remove(&rb).unwrap_or_default();
        let pa = profile.entry(ra).or_default();
        for (k, vs) in pb {
            pa.entry(k).or_default().extend(vs);
        }
    }
    let ids: Vec<u32> = records.iter().map(|r| r.id).collect();
    let assignment = ids
        .into_iter()
        .map(|id| {
            let root = find(&mut parent, id);
            (id, root)
        })
        .collect();
    Clusters { assignment, refused_merges: refused }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_closure_clusters_transitively() {
        let records = vec![
            Record::new(0, 0, "A", &[]),
            Record::new(1, 1, "A.", &[]),
            Record::new(2, 0, "A..", &[]),
            Record::new(3, 1, "B", &[]),
        ];
        let clusters = cluster_with_constraints(&records, &[(0, 1), (1, 2)], true);
        assert!(clusters.same(0, 2), "transitive");
        assert!(!clusters.same(0, 3));
        assert_eq!(clusters.refused_merges, 0);
    }

    #[test]
    fn conflicting_years_block_a_merge() {
        let records = vec![
            Record::new(0, 0, "Alan Varen", &[("year", "1950")]),
            Record::new(1, 1, "Alan Varen", &[("year", "1981")]),
        ];
        let strict = cluster_with_constraints(&records, &[(0, 1)], true);
        assert!(!strict.same(0, 1));
        assert_eq!(strict.refused_merges, 1);
        let lax = cluster_with_constraints(&records, &[(0, 1)], false);
        assert!(lax.same(0, 1));
    }

    #[test]
    fn conflict_propagates_through_merged_profiles() {
        // 0 and 1 merge (same year); 2 has a conflicting year and must
        // not join even via a pair with 1 (which has no year itself).
        let records = vec![
            Record::new(0, 0, "X", &[("year", "1950")]),
            Record::new(1, 1, "X", &[]),
            Record::new(2, 1, "X", &[("year", "1999")]),
        ];
        let clusters = cluster_with_constraints(&records, &[(0, 1), (1, 2)], true);
        assert!(clusters.same(0, 1));
        assert!(!clusters.same(0, 2), "merged profile must carry the 1950 year");
        assert_eq!(clusters.refused_merges, 1);
    }

    #[test]
    fn implied_pairs_enumerate_clusters() {
        let records = vec![
            Record::new(0, 0, "A", &[]),
            Record::new(1, 1, "A", &[]),
            Record::new(2, 0, "A", &[]),
        ];
        let clusters = cluster_with_constraints(&records, &[(0, 1), (0, 2)], true);
        let pairs = clusters.implied_pairs();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(0, 1)) && pairs.contains(&(0, 2)) && pairs.contains(&(1, 2)));
    }

    #[test]
    fn unknown_ids_in_pairs_are_ignored() {
        let records = vec![Record::new(0, 0, "A", &[])];
        let clusters = cluster_with_constraints(&records, &[(0, 99)], true);
        assert_eq!(clusters.assignment.len(), 1);
    }
}
