//! Pair features for record matching.

use kb_nlp::similarity::{
    dice_bigrams, jaccard_tokens, jaro_winkler, levenshtein_sim, monge_elkan,
};

use crate::record::Record;

/// Number of features produced by [`pair_features`] (including bias).
pub const NUM_FEATURES: usize = 8;

/// Computes the feature vector of a record pair:
/// `[bias, jaro_winkler, levenshtein, jaccard, dice, monge_elkan_sym,
/// attr_agreement, attr_conflict]`.
pub fn pair_features(a: &Record, b: &Record) -> [f64; NUM_FEATURES] {
    let na = a.name.to_lowercase();
    let nb = b.name.to_lowercase();
    // Token-sorted names neutralize "Last, First" reordering for the
    // character-level measures.
    let sa = a.sort_key();
    let sb = b.sort_key();
    let jw = jaro_winkler(&sa, &sb).max(jaro_winkler(&na, &nb));
    let lev = levenshtein_sim(&sa, &sb).max(levenshtein_sim(&na, &nb));
    // Jaccard over the alphanumeric-normalized token sets, so that
    // "Varen, Alan" and "Alan Varen" compare as equal sets.
    let jac = jaccard_tokens(&sa, &sb);
    let dice = dice_bigrams(&na, &nb);
    let me = 0.5 * (monge_elkan(&na, &nb) + monge_elkan(&nb, &na));
    let (agree, conflict) = attr_agreement(a, b);
    [1.0, jw, lev, jac, dice, me, agree, conflict]
}

/// Attribute agreement and conflict rates over shared attribute keys.
/// Returns `(agreement, conflict)`, both in `[0, 1]`; `(0, 0)` when the
/// records share no keys.
pub fn attr_agreement(a: &Record, b: &Record) -> (f64, f64) {
    let mut shared = 0usize;
    let mut agree = 0usize;
    for (k, va) in &a.attrs {
        if let Some(vb) = b.attr(k) {
            shared += 1;
            if va.eq_ignore_ascii_case(vb) {
                agree += 1;
            }
        }
    }
    if shared == 0 {
        return (0.0, 0.0);
    }
    let agree_rate = agree as f64 / shared as f64;
    (agree_rate, 1.0 - agree_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_records_score_high() {
        let a = Record::new(0, 0, "Alan Varen", &[("year", "1950")]);
        let b = Record::new(1, 1, "Alan Varen", &[("year", "1950")]);
        let f = pair_features(&a, &b);
        assert_eq!(f[0], 1.0, "bias");
        assert!((f[1] - 1.0).abs() < 1e-9, "jw");
        assert!((f[6] - 1.0).abs() < 1e-9, "agreement");
        assert_eq!(f[7], 0.0, "no conflict");
    }

    #[test]
    fn reordered_names_still_score_high() {
        let a = Record::new(0, 0, "Alan Varen", &[]);
        let b = Record::new(1, 1, "Varen, Alan", &[]);
        let f = pair_features(&a, &b);
        assert!(f[1] > 0.95, "sorted-token JW should neutralize reorder: {}", f[1]);
        assert!((f[3] - 1.0).abs() < 1e-9, "jaccard over tokens");
    }

    #[test]
    fn different_records_score_low() {
        let a = Record::new(0, 0, "Alan Varen", &[("year", "1950")]);
        let b = Record::new(1, 1, "Quinta Oster", &[("year", "1999")]);
        let f = pair_features(&a, &b);
        assert!(f[1] < 0.7);
        assert_eq!(f[6], 0.0);
        assert_eq!(f[7], 1.0, "year conflicts");
    }

    #[test]
    fn missing_attrs_are_neutral() {
        let a = Record::new(0, 0, "Alan", &[("year", "1950")]);
        let b = Record::new(1, 1, "Alan", &[("birth_place", "Lund")]);
        let (agree, conflict) = attr_agreement(&a, &b);
        assert_eq!((agree, conflict), (0.0, 0.0));
    }

    #[test]
    fn features_are_bounded() {
        let a = Record::new(0, 0, "", &[]);
        let b = Record::new(1, 1, "X", &[]);
        for v in pair_features(&a, &b) {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
        }
    }
}
