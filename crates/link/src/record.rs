//! The record model: what a data source publishes about an entity.

/// A record from one source, to be matched against records from others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Dense id, unique across all sources in one linkage task.
    pub id: u32,
    /// Which source published it.
    pub source: u8,
    /// The entity name as this source writes it.
    pub name: String,
    /// Attribute key/value pairs (possibly incomplete).
    pub attrs: Vec<(String, String)>,
}

impl Record {
    /// Creates a record.
    pub fn new(id: u32, source: u8, name: &str, attrs: &[(&str, &str)]) -> Self {
        Self {
            id,
            source,
            name: name.to_string(),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    /// Value of an attribute, if present.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Lowercased name tokens (blocking keys).
    pub fn name_tokens(&self) -> Vec<String> {
        self.name
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .collect()
    }

    /// A normalized sort key: lowercase name tokens sorted and joined —
    /// robust to token reordering ("Varen, Alan" vs "Alan Varen").
    pub fn sort_key(&self) -> String {
        let mut toks = self.name_tokens();
        toks.sort();
        toks.join(" ")
    }
}

/// Converts a corpus linkage record (used by tests and benches).
pub fn from_corpus(r: &kb_corpus::gold::LinkRecord) -> Record {
    Record { id: r.id, source: r.source, name: r.name.clone(), attrs: r.attrs.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_lookup() {
        let r = Record::new(0, 0, "Alan Varen", &[("year", "1950"), ("birth_place", "Lundholm")]);
        assert_eq!(r.attr("year"), Some("1950"));
        assert_eq!(r.attr("missing"), None);
    }

    #[test]
    fn name_tokens_normalize() {
        let r = Record::new(0, 1, "Varen, Alan", &[]);
        assert_eq!(r.name_tokens(), vec!["varen", "alan"]);
    }

    #[test]
    fn sort_key_is_reorder_invariant() {
        let a = Record::new(0, 0, "Alan Varen", &[]);
        let b = Record::new(1, 1, "Varen, Alan", &[]);
        assert_eq!(a.sort_key(), b.sort_key());
    }
}
