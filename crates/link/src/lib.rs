//! # kb-link
//!
//! Entity linkage (record linkage / entity resolution / deduplication) —
//! tutorial §4: deciding whether two records describe the same
//! real-world entity, and maintaining `owl:sameAs` at scale.
//!
//! The pipeline follows the classical architecture:
//!
//! 1. **Blocking** ([`blocking`]) prunes the quadratic pair space:
//!    token blocking and sorted-neighborhood vs the full cross product
//!    (experiment T6 measures pairs vs pair-recall).
//! 2. **Pair features** ([`features`]): name similarities
//!    (Jaro-Winkler, Levenshtein, Jaccard, Dice, Monge-Elkan) and
//!    attribute agreement.
//! 3. **Matching**: a hand-tuned [rule matcher](rules) and a
//!    [logistic-regression matcher](logreg) trained on labeled pairs.
//! 4. **Clustering** ([`cluster`]): constrained transitive closure that
//!    refuses merges contradicting distinguishing attributes.

pub mod blocking;
pub mod cluster;
pub mod features;
pub mod logreg;
pub mod record;
pub mod rules;

pub use record::Record;
