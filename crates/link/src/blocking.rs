//! Blocking: pruning the quadratic comparison space before matching.
//!
//! Three strategies, compared in experiment T6:
//!
//! * [`Blocking::Full`] — every cross-source pair (the quadratic
//!   baseline);
//! * [`Blocking::Token`] — pairs sharing at least one name token;
//! * [`Blocking::SortedNeighborhood`] — records sorted by a normalized
//!   key, pairs within a sliding window.

use std::collections::{HashMap, HashSet};

use crate::record::Record;

/// A blocking strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// All cross-source pairs.
    Full,
    /// Shared-name-token blocking.
    Token,
    /// Sorted neighborhood with the given window size.
    SortedNeighborhood(usize),
}

/// Generates candidate pairs `(id_from_source0, id_from_source1)`,
/// deduplicated and sorted.
pub fn candidate_pairs(records: &[Record], strategy: Blocking) -> Vec<(u32, u32)> {
    let mut pairs: HashSet<(u32, u32)> = HashSet::new();
    match strategy {
        Blocking::Full => {
            for a in records.iter().filter(|r| r.source == 0) {
                for b in records.iter().filter(|r| r.source == 1) {
                    pairs.insert((a.id, b.id));
                }
            }
        }
        Blocking::Token => {
            let mut by_token: HashMap<String, Vec<&Record>> = HashMap::new();
            for r in records {
                for t in r.name_tokens() {
                    by_token.entry(t).or_default().push(r);
                }
            }
            for group in by_token.values() {
                for a in group.iter().filter(|r| r.source == 0) {
                    for b in group.iter().filter(|r| r.source == 1) {
                        pairs.insert((a.id, b.id));
                    }
                }
            }
        }
        Blocking::SortedNeighborhood(window) => {
            let mut sorted: Vec<&Record> = records.iter().collect();
            sorted.sort_by_key(|r| r.sort_key());
            let w = window.max(1);
            for (i, a) in sorted.iter().enumerate() {
                for b in sorted.iter().skip(i + 1).take(w) {
                    match (a.source, b.source) {
                        (0, 1) => {
                            pairs.insert((a.id, b.id));
                        }
                        (1, 0) => {
                            pairs.insert((b.id, a.id));
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    let mut out: Vec<(u32, u32)> = pairs.into_iter().collect();
    out.sort_unstable();
    out
}

/// Blocking quality: candidate count and pair recall against gold pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Candidate pairs generated.
    pub pairs: usize,
    /// Fraction of gold pairs covered by the candidates.
    pub pair_recall: f64,
}

/// Measures a strategy against gold duplicate pairs.
pub fn blocking_quality(candidates: &[(u32, u32)], gold: &HashSet<(u32, u32)>) -> BlockingQuality {
    let set: HashSet<&(u32, u32)> = candidates.iter().collect();
    let covered = gold.iter().filter(|p| set.contains(p)).count();
    BlockingQuality {
        pairs: candidates.len(),
        pair_recall: if gold.is_empty() { 1.0 } else { covered as f64 / gold.len() as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<Record> {
        vec![
            Record::new(0, 0, "Alan Varen", &[]),
            Record::new(1, 0, "Bea Holford", &[]),
            Record::new(2, 1, "Varen, Alan", &[]),
            Record::new(3, 1, "B. Holford", &[]),
            Record::new(4, 1, "Cyrus Unrelated", &[]),
        ]
    }

    #[test]
    fn full_blocking_is_the_cross_product() {
        let pairs = candidate_pairs(&records(), Blocking::Full);
        assert_eq!(pairs.len(), 2 * 3);
    }

    #[test]
    fn token_blocking_keeps_shared_token_pairs() {
        let pairs = candidate_pairs(&records(), Blocking::Token);
        assert!(pairs.contains(&(0, 2)), "varen+alan shared");
        assert!(pairs.contains(&(1, 3)), "holford shared");
        assert!(!pairs.contains(&(0, 4)));
        assert!(pairs.len() < 6, "fewer than the cross product");
    }

    #[test]
    fn sorted_neighborhood_finds_reordered_names() {
        let pairs = candidate_pairs(&records(), Blocking::SortedNeighborhood(2));
        // "alan varen" sorts next to "alan varen" (from "Varen, Alan").
        assert!(pairs.contains(&(0, 2)));
    }

    #[test]
    fn pair_orientation_is_source0_then_source1() {
        for strat in [Blocking::Full, Blocking::Token, Blocking::SortedNeighborhood(3)] {
            let recs = records();
            for (a, b) in candidate_pairs(&recs, strat) {
                assert_eq!(recs[a as usize].source, 0);
                assert_eq!(recs[b as usize].source, 1);
            }
        }
    }

    #[test]
    fn quality_measures_recall() {
        let gold: HashSet<(u32, u32)> = [(0, 2), (1, 3)].into_iter().collect();
        let full = candidate_pairs(&records(), Blocking::Full);
        let q = blocking_quality(&full, &gold);
        assert_eq!(q.pair_recall, 1.0);
        let none = blocking_quality(&[], &gold);
        assert_eq!(none.pair_recall, 0.0);
        let empty_gold = blocking_quality(&[], &HashSet::new());
        assert_eq!(empty_gold.pair_recall, 1.0);
    }

    #[test]
    fn token_blocking_on_corpus_dump_prunes_hard() {
        use kb_corpus::{gold::linkage_dump, CorpusConfig, World};
        let world = World::generate(&CorpusConfig::tiny().world);
        let dump = linkage_dump(&world, 3);
        let records: Vec<Record> = dump.records.iter().map(crate::record::from_corpus).collect();
        let full = candidate_pairs(&records, Blocking::Full);
        let token = candidate_pairs(&records, Blocking::Token);
        assert!(token.len() * 2 < full.len(), "token {} vs full {}", token.len(), full.len());
        let q = blocking_quality(&token, &dump.gold_pairs);
        assert!(q.pair_recall > 0.9, "recall {}", q.pair_recall);
    }
}
