//! A logistic-regression matcher trained with mini-batch-free SGD —
//! the "statistical learning approaches" of tutorial §4 for entity
//! linkage.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::features::{pair_features, NUM_FEATURES};
use crate::record::Record;

/// A trained logistic-regression pair classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegMatcher {
    /// Learned weights (index 0 is the bias, aligned with the feature
    /// vector's constant-1 component).
    pub weights: [f64; NUM_FEATURES],
    /// Decision threshold on the predicted probability.
    pub threshold: f64,
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Epochs over the training pairs.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, epochs: 40, l2: 1e-4, seed: 13 }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogRegMatcher {
    /// Trains on labeled record pairs. `labeled` holds
    /// `(record_a, record_b, is_match)`.
    pub fn train(labeled: &[(&Record, &Record, bool)], cfg: &TrainConfig) -> Self {
        let mut weights = [0.0; NUM_FEATURES];
        let mut order: Vec<usize> = (0..labeled.len()).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let examples: Vec<([f64; NUM_FEATURES], f64)> = labeled
            .iter()
            .map(|(a, b, y)| (pair_features(a, b), f64::from(u8::from(*y))))
            .collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, y) = &examples[i];
                let z: f64 = weights.iter().zip(x).map(|(w, xi)| w * xi).sum();
                let err = sigmoid(z) - y;
                for (w, xi) in weights.iter_mut().zip(x) {
                    *w -= cfg.learning_rate * (err * xi + cfg.l2 * *w);
                }
            }
        }
        Self { weights, threshold: 0.5 }
    }

    /// Predicted match probability.
    pub fn probability(&self, a: &Record, b: &Record) -> f64 {
        let x = pair_features(a, b);
        sigmoid(self.weights.iter().zip(&x).map(|(w, xi)| w * xi).sum())
    }

    /// Match decision at the configured threshold.
    pub fn matches(&self, a: &Record, b: &Record) -> bool {
        self.probability(a, b) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training_data() -> Vec<(Record, Record, bool)> {
        let mut data = Vec::new();
        // Positives: same entity, perturbed names, agreeing attrs.
        for i in 0..20 {
            let name = format!("Person Number{i}");
            let typo = format!("Persn Number{i}");
            data.push((
                Record::new(i * 2, 0, &name, &[("year", "1950")]),
                Record::new(i * 2 + 1, 1, &typo, &[("year", "1950")]),
                true,
            ));
        }
        // Negatives: different entities.
        for i in 0..20 {
            data.push((
                Record::new(100 + i * 2, 0, &format!("Alpha Beta{i}"), &[("year", "1950")]),
                Record::new(101 + i * 2, 1, &format!("Gamma Delta{i}"), &[("year", "1999")]),
                false,
            ));
        }
        data
    }

    #[test]
    fn learns_to_separate_matches_from_non_matches() {
        let data = training_data();
        let labeled: Vec<(&Record, &Record, bool)> =
            data.iter().map(|(a, b, y)| (a, b, *y)).collect();
        let model = LogRegMatcher::train(&labeled, &TrainConfig::default());
        let pos = Record::new(900, 0, "Test Person", &[("year", "1950")]);
        let pos2 = Record::new(901, 1, "Tset Person", &[("year", "1950")]);
        let neg2 = Record::new(902, 1, "Wholly Different", &[("year", "2001")]);
        assert!(model.probability(&pos, &pos2) > 0.6);
        assert!(model.probability(&pos, &neg2) < 0.4);
        assert!(model.matches(&pos, &pos2));
        assert!(!model.matches(&pos, &neg2));
    }

    #[test]
    fn training_is_deterministic() {
        let data = training_data();
        let labeled: Vec<(&Record, &Record, bool)> =
            data.iter().map(|(a, b, y)| (a, b, *y)).collect();
        let m1 = LogRegMatcher::train(&labeled, &TrainConfig::default());
        let m2 = LogRegMatcher::train(&labeled, &TrainConfig::default());
        assert_eq!(m1, m2);
    }

    #[test]
    fn name_similarity_weights_are_positive() {
        let data = training_data();
        let labeled: Vec<(&Record, &Record, bool)> =
            data.iter().map(|(a, b, y)| (a, b, *y)).collect();
        let model = LogRegMatcher::train(&labeled, &TrainConfig::default());
        // The name-similarity block (features 1..=5) is heavily
        // correlated, so individual weights can flip sign; their sum and
        // the attribute-agreement weight must push toward match.
        let name_block: f64 = model.weights[1..=5].iter().sum();
        assert!(name_block > 0.0, "name weights sum {name_block}");
        assert!(model.weights[6] > 0.0);
    }

    #[test]
    fn empty_training_yields_neutral_model() {
        let model = LogRegMatcher::train(&[], &TrainConfig::default());
        let a = Record::new(0, 0, "X", &[]);
        let b = Record::new(1, 1, "Y", &[]);
        assert!((model.probability(&a, &b) - 0.5).abs() < 1e-9);
    }
}
