//! Property-based tests for entity linkage invariants.

use proptest::prelude::*;
use std::collections::HashSet;

use kb_link::blocking::{blocking_quality, candidate_pairs, Blocking};
use kb_link::cluster::cluster_with_constraints;
use kb_link::features::{attr_agreement, pair_features, NUM_FEATURES};
use kb_link::Record;

fn record_strategy(id: u32, source: u8) -> impl Strategy<Value = Record> {
    ("[A-Z][a-z]{1,6}( [A-Z][a-z]{1,6})?", prop::option::of(1900u32..2000)).prop_map(
        move |(name, year)| {
            let attrs: Vec<(&str, String)> =
                year.map(|y| vec![("year", y.to_string())]).unwrap_or_default();
            let attr_refs: Vec<(&str, &str)> =
                attrs.iter().map(|(k, v)| (*k, v.as_str())).collect();
            Record::new(id, source, &name, &attr_refs)
        },
    )
}

fn records_strategy() -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec(
        ("[A-Z][a-z]{1,6}", any::<bool>(), prop::option::of(1900u32..1910)),
        2..20,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (name, second_source, year))| {
                let attrs: Vec<(String, String)> =
                    year.map(|y| vec![("year".to_string(), y.to_string())]).unwrap_or_default();
                Record { id: i as u32, source: u8::from(second_source), name, attrs }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pair features are bounded and symmetric in their name components.
    #[test]
    fn features_are_bounded(
        a in record_strategy(0, 0),
        b in record_strategy(1, 1),
    ) {
        let f = pair_features(&a, &b);
        prop_assert_eq!(f.len(), NUM_FEATURES);
        prop_assert_eq!(f[0], 1.0, "bias");
        for v in f {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
        }
        let (agree, conflict) = attr_agreement(&a, &b);
        prop_assert!(agree + conflict <= 1.0 + 1e-9);
    }

    /// Identity pairs maximize every name feature.
    #[test]
    fn identity_features_are_maximal(a in record_strategy(0, 0)) {
        let mut b = a.clone();
        b.id = 1;
        b.source = 1;
        let f = pair_features(&a, &b);
        for v in &f[1..6] {
            prop_assert!((v - 1.0).abs() < 1e-9, "name feature {v} < 1 on identical records");
        }
    }

    /// Every blocking strategy yields a subset of the full cross product,
    /// oriented source0 → source1, without duplicates.
    #[test]
    fn blocking_is_a_sound_subset(records in records_strategy()) {
        let full: HashSet<(u32, u32)> =
            candidate_pairs(&records, Blocking::Full).into_iter().collect();
        for strategy in [Blocking::Token, Blocking::SortedNeighborhood(3)] {
            let pairs = candidate_pairs(&records, strategy);
            let set: HashSet<(u32, u32)> = pairs.iter().copied().collect();
            prop_assert_eq!(set.len(), pairs.len(), "duplicates from {:?}", strategy);
            for p in &pairs {
                prop_assert!(full.contains(p), "{:?} invented pair {:?}", strategy, p);
            }
        }
    }

    /// Token blocking finds every exact-name cross-source duplicate.
    #[test]
    fn token_blocking_catches_exact_duplicates(records in records_strategy()) {
        let gold: HashSet<(u32, u32)> = {
            let mut g = HashSet::new();
            for a in records.iter().filter(|r| r.source == 0) {
                for b in records.iter().filter(|r| r.source == 1) {
                    if a.name == b.name {
                        g.insert((a.id, b.id));
                    }
                }
            }
            g
        };
        let pairs = candidate_pairs(&records, Blocking::Token);
        let q = blocking_quality(&pairs, &gold);
        prop_assert!((q.pair_recall - 1.0).abs() < 1e-9, "recall {}", q.pair_recall);
    }

    /// Clustering produces a valid partition: assignment is total,
    /// `same` is an equivalence relation, and constrained clusters never
    /// contain conflicting distinguishing attributes.
    #[test]
    fn clustering_is_a_sound_partition(
        records in records_strategy(),
        pair_seed in prop::collection::vec((0usize..20, 0usize..20), 0..15),
    ) {
        let pairs: Vec<(u32, u32)> = pair_seed
            .into_iter()
            .filter(|&(a, b)| a < records.len() && b < records.len() && a != b)
            .map(|(a, b)| (a as u32, b as u32))
            .collect();
        let clusters = cluster_with_constraints(&records, &pairs, true);
        prop_assert_eq!(clusters.assignment.len(), records.len());
        // Reflexive + symmetric + transitive via representative equality
        // is automatic; verify constraint: no cluster holds two records
        // with different years.
        let mut year_of_cluster: std::collections::HashMap<u32, String> =
            std::collections::HashMap::new();
        for r in &records {
            let root = clusters.assignment[&r.id];
            if let Some(y) = r.attr("year") {
                if let Some(prev) = year_of_cluster.get(&root) {
                    prop_assert_eq!(prev.as_str(), y, "conflicting years inside a cluster");
                } else {
                    year_of_cluster.insert(root, y.to_string());
                }
            }
        }
    }
}
