//! Layered snapshots: an immutable base [`KbSnapshot`] plus an ordered
//! stack of small [`DeltaSegment`]s, served as one coherent view by
//! [`SegmentedSnapshot`] — the LSM-style answer to the curation-vs-
//! freshness tension of continuously maintained KBs (NELL's 24/7 loop,
//! Wikidata's live edits): a hundred-fact update must not cost a
//! hundred-thousand-fact index rebuild.
//!
//! Design:
//!
//! * Every segment keeps its own frozen SPO/POS/OSP permutation arrays.
//!   A delta's arrays cover only *its* facts, so freezing one is
//!   `O(d log d)` in the delta size — independent of the base.
//! * Term and source ids are **global**: a delta's builder re-interns
//!   against the view it stacks on
//!   ([`KbBuilder::freeze_delta`](crate::KbBuilder::freeze_delta)), so
//!   unknown terms continue the view's dense id space and every segment
//!   speaks the same [`TermId`] language. `with_delta` enforces the
//!   sequential-stacking contract.
//! * Queries k-way merge the per-segment index slices (see
//!   [`MatchIter`]): at each key the *newest* holding
//!   segment wins, which implements both evidence shadowing (a delta's
//!   noisy-or-merged fact replaces the base's) and retraction
//!   (tombstones — confidence-zero facts indexed only in deltas —
//!   suppress the key).
//! * The [`Compactor`] folds the delta stack back into a monolithic
//!   base off the serving path once the stack grows past a size ratio,
//!   bounding merge fan-in.

use std::collections::HashMap;
use std::sync::Arc;

use crate::builder::{KbBuilder, KbCore};
use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::TriplePattern;
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::snapshot::{FrozenIndexes, IndexStats, KbSnapshot, LiveFactsIter, MatchIter};
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;

/// How a delta fact relates to the view it was frozen against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Triple not visible in the underlying view: a net-new fact.
    New,
    /// Triple already visible: this entry carries the evidence-merged
    /// (noisy-or) fact and shadows the older segment's copy.
    Shadow,
    /// Retraction of a view-visible triple (confidence zero).
    Tombstone,
}

/// One immutable increment of a segmented view: facts over *global*
/// term/source ids, the extension of the dictionary and source table
/// those facts needed, and the delta's own frozen permutation indexes
/// (tombstones included, so the merge sees their keys).
///
/// Built by [`KbBuilder::freeze_delta`](crate::KbBuilder::freeze_delta);
/// installed by [`SegmentedSnapshot::with_delta`].
#[derive(Debug)]
pub struct DeltaSegment {
    /// Terms unknown to the underlying view, in allocation order; term
    /// id `first_term + i` resolves to `ext_terms[i]`.
    pub(crate) ext_terms: Vec<Arc<str>>,
    pub(crate) ext_lookup: HashMap<Arc<str>, TermId>,
    /// First term id this segment allocates (== the view's term count
    /// at freeze time — the sequential-stacking contract).
    pub(crate) first_term: u32,
    /// Provenance sources unknown to the underlying view.
    pub(crate) ext_sources: Vec<String>,
    pub(crate) first_source: u32,
    /// The delta's facts (new, shadow and tombstone entries alike),
    /// over global ids.
    pub(crate) facts: Vec<Fact>,
    /// Parallel to `facts`.
    pub(crate) kinds: Vec<FactKind>,
    pub(crate) by_triple: HashMap<Triple, FactId>,
    /// Frozen permutation arrays over `facts`, tombstones included.
    pub(crate) indexes: FrozenIndexes,
    /// Distinct predicates this delta touches (including tombstones),
    /// sorted — the unit of cache invalidation upstream.
    touched: Vec<TermId>,
    new_facts: usize,
    shadowed: usize,
    tombstones: usize,
    /// Net change to the view's live-fact count (`new - tombstoned`).
    net_live: isize,
}

impl DeltaSegment {
    /// See [`KbBuilder::freeze_delta`](crate::KbBuilder::freeze_delta).
    pub(crate) fn from_builder(builder: KbBuilder, view: &SegmentedSnapshot) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.delta.build_us");
        let core = builder.core;

        // Re-intern the builder's dictionary against the view; unknown
        // terms continue the view's dense id space in first-seen order.
        let first_term = view.term_count() as u32;
        let mut ext_terms: Vec<Arc<str>> = Vec::new();
        let mut ext_lookup: HashMap<Arc<str>, TermId> = HashMap::new();
        let remap: Vec<TermId> = core
            .dict
            .iter()
            .map(|(_, term)| {
                view.term(term).unwrap_or_else(|| {
                    let id = TermId(first_term + ext_terms.len() as u32);
                    let arc: Arc<str> = Arc::from(term);
                    ext_terms.push(Arc::clone(&arc));
                    ext_lookup.insert(arc, id);
                    id
                })
            })
            .collect();

        let first_source = view.source_count() as u32;
        let mut ext_sources: Vec<String> = Vec::new();
        let source_remap: Vec<SourceId> = core
            .sources
            .iter()
            .map(|name| {
                view.source_id(name).unwrap_or_else(|| {
                    let id = SourceId(first_source + ext_sources.len() as u32);
                    ext_sources.push(name.clone());
                    id
                })
            })
            .collect();

        let mut facts = Vec::with_capacity(core.facts.len());
        let mut kinds = Vec::with_capacity(core.facts.len());
        let mut by_triple = HashMap::with_capacity(core.facts.len());
        let (mut new_facts, mut shadowed, mut tombstones) = (0usize, 0usize, 0usize);
        let mut net_live = 0isize;
        for f in &core.facts {
            let t = Triple::new(
                remap[f.triple.s.index()],
                remap[f.triple.p.index()],
                remap[f.triple.o.index()],
            );
            let id = FactId(facts.len() as u32);
            if f.is_retracted() {
                // Only meaningful as a tombstone over a visible fact;
                // retracting something nobody can see is a no-op.
                if view.fact_for(&t).is_none() {
                    continue;
                }
                facts.push(Fact {
                    triple: t,
                    confidence: 0.0,
                    source: source_remap[f.source.0 as usize],
                    span: None,
                });
                kinds.push(FactKind::Tombstone);
                by_triple.insert(t, id);
                tombstones += 1;
                net_live -= 1;
                continue;
            }
            match view.fact_for(&t) {
                Some(seen) => {
                    // Same merge semantics as KbCore::add_fact, applied
                    // across the segment boundary: noisy-or confidence,
                    // first-known span, earliest source.
                    let confidence = 1.0 - (1.0 - seen.confidence) * (1.0 - f.confidence);
                    facts.push(Fact {
                        triple: t,
                        confidence,
                        source: seen.source,
                        span: seen.span.or(f.span),
                    });
                    kinds.push(FactKind::Shadow);
                    shadowed += 1;
                }
                None => {
                    facts.push(Fact {
                        triple: t,
                        confidence: f.confidence,
                        source: source_remap[f.source.0 as usize],
                        span: f.span,
                    });
                    kinds.push(FactKind::New);
                    new_facts += 1;
                    net_live += 1;
                }
            }
            by_triple.insert(t, id);
        }

        let mut touched: Vec<TermId> = facts.iter().map(|f| f.triple.p).collect();
        touched.sort_unstable();
        touched.dedup();

        let indexes = FrozenIndexes::build_with_tombstones(&facts);
        span.stop();
        obs.counter("store.delta.facts").add(facts.len() as u64);

        Self {
            ext_terms,
            ext_lookup,
            first_term,
            ext_sources,
            first_source,
            facts,
            kinds,
            by_triple,
            indexes,
            touched,
            new_facts,
            shadowed,
            tombstones,
            net_live,
        }
    }

    /// Rebuilds a delta segment from its serialized parts (see
    /// [`segment_io`](crate::segment_io)): extension tables, the fact
    /// table with its parallel kind column, and the frozen permutation
    /// indexes. Every derived structure — lookup maps, touched
    /// predicates, entry counters — is recomputed here, so the on-disk
    /// format never stores anything a reader could disagree with.
    pub(crate) fn from_parts(
        ext_terms: Vec<Arc<str>>,
        first_term: u32,
        ext_sources: Vec<String>,
        first_source: u32,
        facts: Vec<Fact>,
        kinds: Vec<FactKind>,
        indexes: FrozenIndexes,
    ) -> Self {
        debug_assert_eq!(facts.len(), kinds.len());
        let ext_lookup = ext_terms
            .iter()
            .enumerate()
            .map(|(i, t)| (Arc::clone(t), TermId(first_term + i as u32)))
            .collect();
        let by_triple =
            facts.iter().enumerate().map(|(i, f)| (f.triple, FactId(i as u32))).collect();
        let (mut new_facts, mut shadowed, mut tombstones) = (0usize, 0usize, 0usize);
        for k in &kinds {
            match k {
                FactKind::New => new_facts += 1,
                FactKind::Shadow => shadowed += 1,
                FactKind::Tombstone => tombstones += 1,
            }
        }
        let net_live = new_facts as isize - tombstones as isize;
        let mut touched: Vec<TermId> = facts.iter().map(|f| f.triple.p).collect();
        touched.sort_unstable();
        touched.dedup();
        Self {
            ext_terms,
            ext_lookup,
            first_term,
            ext_sources,
            first_source,
            facts,
            kinds,
            by_triple,
            indexes,
            touched,
            new_facts,
            shadowed,
            tombstones,
            net_live,
        }
    }

    /// First provenance source id this segment allocates.
    pub(crate) fn first_source_id(&self) -> u32 {
        self.first_source
    }

    /// Total entries in this delta (new + shadow + tombstone).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the delta carries no entries at all.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Net-new facts (triples invisible in the underlying view).
    pub fn new_facts(&self) -> usize {
        self.new_facts
    }

    /// Evidence-merge entries shadowing an older segment's fact.
    pub fn shadowed(&self) -> usize {
        self.shadowed
    }

    /// Retractions of view-visible triples.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Net change to the live-fact count when this delta is installed.
    pub fn net_live(&self) -> isize {
        self.net_live
    }

    /// Distinct predicates this delta touches (sorted) — shadow and
    /// tombstone predicates included, since both change query results.
    /// This is the unit of partial cache invalidation in the serving
    /// layer.
    pub fn touched_predicates(&self) -> &[TermId] {
        &self.touched
    }

    /// The net-new live facts, for incremental statistics maintenance
    /// (shadows only adjust confidence; tombstones subtract, which
    /// cost-model consumers may approximate away).
    pub fn new_facts_iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter().zip(&self.kinds).filter(|(_, k)| **k == FactKind::New).map(|(f, _)| f)
    }

    /// The retraction entries (view-visible triples this delta hides),
    /// for incremental statistics maintenance.
    pub fn tombstones_iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts
            .iter()
            .zip(&self.kinds)
            .filter(|(_, k)| **k == FactKind::Tombstone)
            .map(|(f, _)| f)
    }

    /// Every entry in the delta — new, shadow and tombstone alike —
    /// paired with its [`FactKind`]. Incremental view maintenance walks
    /// this to turn one install into a signed set of fact changes
    /// (`New` = +1, `Tombstone` = −1, `Shadow` = −old/+new).
    pub fn entries_iter(&self) -> impl Iterator<Item = (&Fact, FactKind)> {
        self.facts.iter().zip(self.kinds.iter().copied())
    }

    /// First term id this segment allocates; every id at or above it
    /// names a term the underlying view had never seen.
    pub fn first_term(&self) -> TermId {
        TermId(self.first_term)
    }

    /// Whether this delta has an entry (of any kind) for the triple.
    pub(crate) fn contains_triple(&self, t: &Triple) -> bool {
        self.by_triple.contains_key(t)
    }

    /// The delta's entry for a triple, tombstones included.
    pub(crate) fn fact_local(&self, t: &Triple) -> Option<&Fact> {
        self.by_triple.get(t).map(|id| &self.facts[id.index()])
    }

    pub(crate) fn fact_table(&self) -> &[Fact] {
        &self.facts
    }

    /// Size and compression accounting for this delta's permutation
    /// indexes.
    pub fn index_stats(&self) -> IndexStats {
        self.indexes.stats()
    }
}

/// Shape of a layered view: how many segments, and where its facts
/// live. Returned by [`SegmentedSnapshot::segment_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Total segments (base + deltas).
    pub segments: usize,
    /// Live facts in the base segment.
    pub base_facts: usize,
    /// Total entries across all delta segments.
    pub delta_facts: usize,
    /// Net-new facts across deltas.
    pub new_facts: usize,
    /// Shadow (evidence-merge) entries across deltas.
    pub shadowed: usize,
    /// Tombstones across deltas.
    pub tombstones: usize,
    /// Live facts visible through the merged view.
    pub live: usize,
}

/// A layered, immutable view: one base [`KbSnapshot`] plus zero or more
/// [`DeltaSegment`]s, served through [`KbRead`] exactly like a
/// monolithic snapshot — consumers (NED, linkage, analytics, rules, the
/// query engine) cannot tell the difference.
///
/// Installing a delta is `O(1)` sharing: [`with_delta`] clones the
/// `Arc` stack and pushes one more segment. With an empty stack every
/// query takes the monolithic fast path, so wrapping a snapshot via
/// [`from_base`] costs nothing on the read path.
///
/// ```
/// use std::sync::Arc;
/// use kb_store::{KbBuilder, KbRead, SegmentedSnapshot, TriplePattern};
///
/// let mut b = KbBuilder::new();
/// b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
/// let view = SegmentedSnapshot::from_base(b.freeze().into_shared());
///
/// let mut d = KbBuilder::new();
/// d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
/// let view = view.with_delta(Arc::new(d.freeze_delta(&view)));
///
/// assert_eq!(view.len(), 2);
/// let apple = view.term("Apple_Inc").unwrap();
/// assert_eq!(view.count_matching(&TriplePattern::with_o(apple)), 2);
/// ```
///
/// [`with_delta`]: Self::with_delta
/// [`from_base`]: Self::from_base
#[derive(Debug, Clone)]
pub struct SegmentedSnapshot {
    base: Arc<KbSnapshot>,
    /// Delta stack, oldest → newest.
    deltas: Vec<Arc<DeltaSegment>>,
}

impl SegmentedSnapshot {
    /// Wraps a monolithic snapshot as a single-segment view. Derived
    /// totals (live count, term/source totals) are computed on demand
    /// rather than stored, so wrapping a lazily opened base touches
    /// nothing on disk.
    pub fn from_base(base: Arc<KbSnapshot>) -> Self {
        Self { base, deltas: Vec::new() }
    }

    /// Total provenance sources across the base and every delta. Cheap
    /// on a lazy base (count-prefix read, no core fault).
    pub(crate) fn source_count(&self) -> usize {
        self.base.source_count() + self.deltas.iter().map(|d| d.ext_sources.len()).sum::<usize>()
    }

    /// Returns a new view with `delta` stacked on top (the receiver is
    /// untouched — readers holding it keep their consistent view).
    ///
    /// # Panics
    ///
    /// If the delta was not frozen against exactly this view's term and
    /// source id space (the sequential-stacking contract: freeze each
    /// delta against the view it will be installed on).
    pub fn with_delta(&self, delta: Arc<DeltaSegment>) -> Self {
        self.try_with_delta(delta).expect("delta was frozen against a different view")
    }

    /// Non-panicking [`with_delta`](Self::with_delta): a delta that
    /// violates the sequential-stacking contract is rejected as a typed
    /// [`StoreError::Corrupt`](crate::StoreError::Corrupt) instead of a panic. This is the install
    /// path recovery uses — a damaged or out-of-order on-disk delta must
    /// degrade gracefully, never crash the reopening process.
    pub fn try_with_delta(&self, delta: Arc<DeltaSegment>) -> Result<Self, crate::StoreError> {
        use crate::error::SegmentRegion;
        let term_total = self.term_count();
        let source_total = self.source_count();
        if delta.first_term as usize != term_total || delta.first_source as usize != source_total {
            return Err(crate::StoreError::Corrupt {
                region: SegmentRegion::DeltaMeta,
                detail: format!(
                    "delta stacks at term {}/source {} but the view has {} terms/{} sources",
                    delta.first_term, delta.first_source, term_total, source_total
                ),
            });
        }
        let mut deltas = self.deltas.clone();
        deltas.push(delta);
        Ok(Self { base: Arc::clone(&self.base), deltas })
    }

    /// The base segment.
    pub fn base(&self) -> &Arc<KbSnapshot> {
        &self.base
    }

    /// Number of delta segments stacked on the base.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// The delta stack, oldest → newest.
    pub fn deltas(&self) -> &[Arc<DeltaSegment>] {
        &self.deltas
    }

    /// Delta-aware shape statistics for the view.
    pub fn segment_stats(&self) -> SegmentStats {
        SegmentStats {
            segments: 1 + self.deltas.len(),
            base_facts: self.base.len(),
            delta_facts: self.deltas.iter().map(|d| d.len()).sum(),
            new_facts: self.deltas.iter().map(|d| d.new_facts()).sum(),
            shadowed: self.deltas.iter().map(|d| d.shadowed()).sum(),
            tombstones: self.deltas.iter().map(|d| d.tombstones()).sum(),
            live: self.len(),
        }
    }

    /// Size and compression accounting for every segment's permutation
    /// indexes (base plus deltas).
    pub fn index_stats(&self) -> IndexStats {
        let mut st = self.base.index_stats();
        for d in &self.deltas {
            st.absorb(&d.index_stats());
        }
        st
    }

    /// Looks up a provenance source by name across all segments.
    pub(crate) fn source_id(&self, name: &str) -> Option<SourceId> {
        if let Some(&id) = self.base.core().source_lookup.get(name) {
            return Some(id);
        }
        for d in &self.deltas {
            if let Some(pos) = d.ext_sources.iter().position(|s| s == name) {
                return Some(SourceId(d.first_source + pos as u32));
            }
        }
        None
    }

    /// Folds the delta stack into a fresh monolithic [`KbSnapshot`]
    /// (replaying each delta's entries over a clone of the base, then
    /// rebuilding the permutation indexes once). Runs off the serving
    /// path — readers keep using the layered view until the compacted
    /// snapshot is installed.
    pub fn compact(&self) -> KbSnapshot {
        let obs = kb_obs::global();
        let span = obs.span("store.compact_us");
        let mut core: KbCore = self.base.core().clone();
        for d in &self.deltas {
            for term in &d.ext_terms {
                let id = core.dict.intern(term);
                debug_assert_eq!(id.index() + 1, core.dict.len());
            }
            for name in &d.ext_sources {
                core.register_source(name);
            }
            for f in &d.facts {
                // Shadow entries already carry the view-merged
                // confidence/span and tombstones carry zero, so the
                // replay *overwrites* rather than re-merges.
                match core.by_triple.get(&f.triple) {
                    Some(&id) => core.facts[id.index()] = f.clone(),
                    None => {
                        let id = FactId(core.facts.len() as u32);
                        core.by_triple.insert(f.triple, id);
                        core.facts.push(f.clone());
                    }
                }
            }
        }
        core.live = core.facts.iter().filter(|f| !f.is_retracted()).count();
        debug_assert_eq!(core.live, self.len());
        let indexes = FrozenIndexes::build(&core.facts);
        span.stop();
        obs.counter("store.compactions").inc();
        KbSnapshot::from_parts(
            core,
            self.base.taxonomy().clone(),
            self.base.sameas().clone(),
            self.base.labels().clone(),
            indexes,
        )
    }
}

impl KbRead for SegmentedSnapshot {
    fn term(&self, term: &str) -> Option<TermId> {
        if let Some(id) = self.base.core().dict.get(term) {
            return Some(id);
        }
        self.deltas.iter().find_map(|d| d.ext_lookup.get(term).copied())
    }

    fn resolve(&self, id: TermId) -> Option<&str> {
        if id.index() < self.base.term_count() {
            return self.base.core().dict.resolve(id);
        }
        for d in &self.deltas {
            let first = d.first_term as usize;
            if id.index() < first + d.ext_terms.len() {
                return Some(&d.ext_terms[id.index() - first]);
            }
        }
        None
    }

    /// Total terms across the base and every delta's extension table.
    /// Cheap on a lazy base (count-prefix read, no core fault), which
    /// is what keeps delta stacking checks off the open path's cost.
    fn term_count(&self) -> usize {
        self.base.term_count() + self.deltas.iter().map(|d| d.ext_terms.len()).sum::<usize>()
    }

    // Taxonomy, sameAs and labels are served from the base segment:
    // deltas carry facts and provenance only, so ontology-level changes
    // ride the next compaction/rebuild.
    fn taxonomy(&self) -> &Taxonomy {
        self.base.taxonomy()
    }

    fn sameas(&self) -> &SameAsStore {
        self.base.sameas()
    }

    fn labels(&self) -> &LabelStore {
        self.base.labels()
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        let idx = id.0 as usize;
        if idx < self.base.source_count() {
            return self.base.core().source_name(id);
        }
        for d in &self.deltas {
            let first = d.first_source as usize;
            if idx < first + d.ext_sources.len() {
                return Some(&d.ext_sources[idx - first]);
            }
        }
        None
    }

    /// Fact ids address the concatenated fact tables: base first, then
    /// each delta in stack order.
    fn fact(&self, id: FactId) -> Option<&Fact> {
        let mut idx = id.index();
        let base_len = self.base.core().facts.len();
        if idx < base_len {
            return self.base.core().facts.get(idx);
        }
        idx -= base_len;
        for d in &self.deltas {
            if idx < d.facts.len() {
                return d.facts.get(idx);
            }
            idx -= d.facts.len();
        }
        None
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        // Newest segment holding the triple is authoritative.
        for d in self.deltas.iter().rev() {
            if let Some(f) = d.fact_local(t) {
                return (!f.is_retracted()).then_some(f);
            }
        }
        self.base.core().fact_for(t)
    }

    fn len(&self) -> usize {
        let net: isize = self.deltas.iter().map(|d| d.net_live()).sum();
        (self.base.len() as isize + net) as usize
    }

    fn facts(&self) -> LiveFactsIter<'_> {
        LiveFactsIter::segmented(&self.base.core().facts, &self.deltas)
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let (head, filter) = self.base.indexes.cursor(pattern, &self.base.core().facts);
        let deltas = self
            .deltas
            .iter()
            .map(|d| {
                let (cur, _) = d.indexes.cursor(pattern, &d.facts);
                cur
            })
            .collect();
        MatchIter::with_deltas(head, deltas, filter)
    }

    fn prefault(&self) -> Result<(), crate::StoreError> {
        self.base.prefault()?;
        for d in &self.deltas {
            d.indexes.prefault()?;
        }
        Ok(())
    }
}

/// Size-ratio compaction policy: fold the delta stack into the base
/// once it grows past `max_deltas` segments or `max_ratio` of the base
/// size in entries — the classic LSM trade between install latency
/// (deltas stay cheap) and read amplification (merge fan-in stays
/// bounded).
#[derive(Debug, Clone, Copy)]
pub struct Compactor {
    /// Compact when more than this many deltas are stacked.
    pub max_deltas: usize,
    /// Compact when total delta entries exceed this fraction of the
    /// base's live facts.
    pub max_ratio: f64,
}

impl Default for Compactor {
    fn default() -> Self {
        Self { max_deltas: 4, max_ratio: 0.2 }
    }
}

impl Compactor {
    /// Whether the view's delta stack has outgrown the policy.
    pub fn should_compact(&self, view: &SegmentedSnapshot) -> bool {
        if view.delta_count() == 0 {
            return false;
        }
        if view.delta_count() > self.max_deltas {
            return true;
        }
        let delta_entries: usize = view.deltas().iter().map(|d| d.len()).sum();
        delta_entries as f64 > self.max_ratio * view.base().len().max(1) as f64
    }

    /// Folds the stack into a fresh monolithic snapshot (see
    /// [`SegmentedSnapshot::compact`]).
    pub fn compact(&self, view: &SegmentedSnapshot) -> KbSnapshot {
        view.compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{TimePoint, TimeSpan};
    use crate::KbBuilder;

    fn base_view() -> SegmentedSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        SegmentedSnapshot::from_base(b.freeze().into_shared())
    }

    #[test]
    fn empty_stack_answers_like_the_base() {
        let view = base_view();
        let base = Arc::clone(view.base());
        assert_eq!(view.len(), base.len());
        assert_eq!(view.term_count(), base.term_count());
        let founded = view.term("founded").unwrap();
        assert_eq!(
            view.matching_triples(&TriplePattern::with_p(founded)),
            base.matching_triples(&TriplePattern::with_p(founded)),
        );
        assert_eq!(view.facts().count(), base.facts().count());
    }

    #[test]
    fn delta_adds_new_facts_and_terms() {
        let view = base_view();
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        d.assert_str("Steve_Jobs", "founded", "NeXT");
        let delta = d.freeze_delta(&view);
        assert_eq!(delta.new_facts(), 2);
        assert_eq!(delta.shadowed(), 0);
        let view = view.with_delta(Arc::new(delta));

        assert_eq!(view.len(), 6);
        // New terms continue the base id space and resolve both ways.
        let cook = view.term("Tim_Cook").unwrap();
        assert!(cook.index() >= view.base().term_count());
        assert_eq!(view.resolve(cook), Some("Tim_Cook"));
        // Merged scans see base + delta facts in key order.
        let founded = view.term("founded").unwrap();
        let apple = view.term("Apple_Inc").unwrap();
        assert_eq!(view.count_matching(&TriplePattern::with_p(founded)), 3);
        assert_eq!(view.count_matching(&TriplePattern::with_o(apple)), 3);
        // A ?p scan walks the POS index, so the merge must preserve
        // global (o, s) order within the predicate bucket.
        let keys: Vec<_> = view
            .matching_triples(&TriplePattern::with_p(founded))
            .iter()
            .map(|t| (t.o, t.s))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "merge preserves index key order");
    }

    #[test]
    fn shadow_entry_wins_over_the_base() {
        let view = base_view();
        let jobs = view.term("Steve_Jobs").unwrap();
        let founded = view.term("founded").unwrap();
        let apple = view.term("Apple_Inc").unwrap();
        let t = Triple::new(jobs, founded, apple);
        let base_conf = view.fact_for(&t).unwrap().confidence;

        let mut d = KbBuilder::new();
        let f = Fact {
            triple: Triple::new(d.intern("Steve_Jobs"), d.intern("founded"), d.intern("Apple_Inc")),
            confidence: 0.5,
            source: SourceId::DEFAULT,
            span: Some(TimeSpan::at(TimePoint::year(1976))),
        };
        d.add_fact(f);
        let delta = d.freeze_delta(&view);
        assert_eq!(delta.shadowed(), 1);
        assert_eq!(delta.net_live(), 0);
        let view = view.with_delta(Arc::new(delta));

        // Live count unchanged; confidence noisy-or merged; the span
        // arrives because the base fact had none.
        assert_eq!(view.len(), 4);
        let merged = view.fact_for(&t).unwrap();
        let expect = 1.0 - (1.0 - base_conf) * 0.5;
        assert!((merged.confidence - expect).abs() < 1e-12);
        assert!(merged.span.is_some());
        // The triple surfaces exactly once through every read path.
        assert_eq!(view.count_matching(&TriplePattern::exact(t)), 1);
        assert_eq!(view.facts().filter(|f| f.triple == t).count(), 1);
        assert!(view
            .facts()
            .find(|f| f.triple == t)
            .is_some_and(|f| (f.confidence - expect).abs() < 1e-12));
    }

    #[test]
    fn tombstone_hides_a_base_fact_until_resurrected() {
        let view = base_view();
        let jobs = view.term("Steve_Jobs").unwrap();
        let born = view.term("bornIn").unwrap();
        let sf = view.term("San_Francisco").unwrap();
        let t = Triple::new(jobs, born, sf);

        let mut d = KbBuilder::new();
        d.retract_str("Steve_Jobs", "bornIn", "San_Francisco");
        let delta = d.freeze_delta(&view);
        assert_eq!(delta.tombstones(), 1);
        assert_eq!(delta.net_live(), -1);
        let view2 = view.with_delta(Arc::new(delta));

        assert_eq!(view2.len(), 3);
        assert!(!view2.contains(&t));
        assert!(view2.fact_for(&t).is_none());
        assert_eq!(view2.count_matching(&TriplePattern::with_p(born)), 0);
        assert!(view2.facts().all(|f| f.triple != t));
        // The original view is untouched (readers keep their version).
        assert!(view.contains(&t));

        // A later delta resurrects the triple as a net-new fact.
        let mut d2 = KbBuilder::new();
        d2.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        let delta2 = d2.freeze_delta(&view2);
        assert_eq!(delta2.new_facts(), 1);
        let view3 = view2.with_delta(Arc::new(delta2));
        assert_eq!(view3.len(), 4);
        assert!(view3.contains(&t));
        assert_eq!(view3.count_matching(&TriplePattern::with_p(born)), 1);
    }

    #[test]
    fn retracting_an_invisible_triple_is_dropped_from_the_delta() {
        let view = base_view();
        let mut d = KbBuilder::new();
        d.retract_str("Nobody", "knows", "This");
        let delta = d.freeze_delta(&view);
        assert!(delta.is_empty());
        assert_eq!(delta.net_live(), 0);
        // The phantom terms were still interned as extension terms —
        // harmless, they just resolve.
        let view = view.with_delta(Arc::new(delta));
        assert_eq!(view.len(), 4);
    }

    #[test]
    fn touched_predicates_cover_all_entry_kinds() {
        let view = base_view();
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc"); // new
        d.assert_str("Steve_Jobs", "founded", "Apple_Inc"); // shadow
        d.retract_str("Steve_Jobs", "bornIn", "San_Francisco"); // tombstone
        let delta = d.freeze_delta(&view);
        let touched = delta.touched_predicates();
        assert_eq!(touched.len(), 3);
        for p in ["worksAt", "founded", "bornIn"] {
            let id = view.term(p).or_else(|| delta.ext_lookup.get(p).copied()).unwrap();
            assert!(touched.contains(&id), "{p} missing from touched set");
        }
        assert!(touched.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
    }

    #[test]
    fn stacking_contract_is_enforced() {
        let view = base_view();
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        let delta = Arc::new(d.freeze_delta(&view));
        let stacked = view.with_delta(Arc::clone(&delta));
        // Installing the same delta again would collide with the term
        // space it already extended.
        let err = std::panic::catch_unwind(|| stacked.with_delta(delta));
        assert!(err.is_err());
    }

    #[test]
    fn compaction_preserves_the_merged_view() {
        let view = base_view();
        let mut d1 = KbBuilder::new();
        d1.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        d1.assert_str("Steve_Jobs", "founded", "Apple_Inc"); // shadow
        let view = view.with_delta(Arc::new(d1.freeze_delta(&view)));
        let mut d2 = KbBuilder::new();
        d2.retract_str("San_Francisco", "locatedIn", "United_States");
        d2.assert_str("Tim_Cook", "bornIn", "Mobile_Alabama");
        let view = view.with_delta(Arc::new(d2.freeze_delta(&view)));

        let compacted = view.compact();
        assert_eq!(compacted.len(), view.len());
        assert_eq!(compacted.term_count(), view.term_count());
        // Identical answers, shape by shape.
        assert_eq!(
            compacted.matching_triples(&TriplePattern::any()),
            view.matching_triples(&TriplePattern::any()),
        );
        for f in view.facts() {
            let c = compacted.fact_for(&f.triple).expect("fact survives compaction");
            assert!((c.confidence - f.confidence).abs() < 1e-12);
            assert_eq!(c.span, f.span);
        }
        // Term ids are preserved exactly, so downstream TermId holders
        // stay valid across the swap.
        for id in 0..view.term_count() as u32 {
            assert_eq!(compacted.resolve(TermId(id)), view.resolve(TermId(id)));
        }
    }

    #[test]
    fn compactor_policy_triggers_on_ratio_and_count() {
        let c = Compactor::default();
        let mut view = base_view();
        assert!(!c.should_compact(&view));
        // 4 base facts → one 1-entry delta already exceeds 20%.
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        view = view.with_delta(Arc::new(d.freeze_delta(&view)));
        assert!(c.should_compact(&view));
        let strict = Compactor { max_deltas: 0, max_ratio: 1.0 };
        assert!(strict.should_compact(&view));
        let loose = Compactor { max_deltas: 8, max_ratio: 1.0 };
        assert!(!loose.should_compact(&view));
    }

    #[test]
    fn segment_stats_reflect_the_stack() {
        let view = base_view();
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        d.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        d.retract_str("Steve_Jobs", "bornIn", "San_Francisco");
        let view = view.with_delta(Arc::new(d.freeze_delta(&view)));
        let st = view.segment_stats();
        assert_eq!(st.segments, 2);
        assert_eq!(st.base_facts, 4);
        assert_eq!(st.delta_facts, 3);
        assert_eq!(st.new_facts, 1);
        assert_eq!(st.shadowed, 1);
        assert_eq!(st.tombstones, 1);
        assert_eq!(st.live, 4);
    }

    #[test]
    fn path_join_works_across_segments() {
        // bornIn lives in the base, locatedIn arrives via a delta.
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        let view = SegmentedSnapshot::from_base(b.freeze().into_shared());
        let mut d = KbBuilder::new();
        d.assert_str("San_Francisco", "locatedIn", "United_States");
        let view = view.with_delta(Arc::new(d.freeze_delta(&view)));
        let born = view.term("bornIn").unwrap();
        let located = view.term("locatedIn").unwrap();
        let pairs = view.path_join(born, located);
        assert_eq!(pairs.len(), 1);
        assert_eq!(view.resolve(pairs[0].1), Some("United_States"));
    }
}
