//! The delta write-ahead log: every incremental install is appended as
//! one CRC-framed record (the delta's full segment image) followed by
//! an fsync barrier, so a kill-9 at any instant loses at most the
//! record being written — and that loss is *detected*, not guessed at.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header (20 B): magic "KBWL" · version u32 · generation u64 · crc u32
//! record:        payload_len u32 · seq u64 · payload_crc u32 · payload
//! ```
//!
//! Replay policy — the two failure shapes are deliberately distinct:
//!
//! * **Torn tail** (file ends inside a record frame): the expected
//!   signature of a crash mid-append. The tail is truncated and replay
//!   succeeds with everything before it — byte-identical to the last
//!   barrier the writer completed.
//! * **Damaged record** (complete frame, CRC mismatch, or a sequence
//!   number that goes backwards): *not* a crash signature — something
//!   rewrote durable bytes. The record and everything after it are
//!   reported for quarantine; the intact prefix is still served.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::error::SegmentRegion;
use crate::segment_io::crc32;
use crate::StoreError;

/// Magic for a WAL file.
pub const MAGIC_WAL: [u8; 4] = *b"KBWL";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Size of the WAL file header in bytes.
pub const WAL_HEADER_LEN: u64 = 20;
const FRAME_LEN: usize = 4 + 8 + 4;

fn corrupt(region: SegmentRegion, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { region, detail: detail.into() }
}

/// What one durable append actually cost, split into the write itself
/// and the fsync barrier — the number `kbkit harvest --incremental`
/// prints next to install latency so the price of durability is visible
/// per delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCost {
    /// Bytes appended (frame + payload).
    pub bytes: u64,
    /// Time spent writing and flushing the record, in microseconds.
    pub write_micros: u64,
    /// Time spent in the fsync barrier, in microseconds (0 when fsync
    /// is disabled).
    pub fsync_micros: u64,
}

impl DurabilityCost {
    /// Sums component costs (a multi-file operation reports one total).
    pub fn add(&mut self, other: DurabilityCost) {
        self.bytes += other.bytes;
        self.write_micros += other.write_micros;
        self.fsync_micros += other.fsync_micros;
    }
}

/// An open write-ahead log, positioned at its end for appending.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    generation: u64,
    /// Sequence number of the last record written (or replayed).
    last_seq: u64,
    fsync: bool,
}

/// The outcome of replaying a WAL file: the decoded records plus an
/// honest account of what the tail looked like.
#[derive(Debug)]
pub struct WalReplay {
    /// Generation stamped in the WAL header.
    pub generation: u64,
    /// Decoded `(seq, payload)` records, in file order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// File length up to and including the last intact record — the
    /// length the file is truncated to before re-opening for append.
    pub valid_len: u64,
    /// Bytes of torn tail dropped (crash mid-append; expected, benign).
    pub torn_bytes: u64,
    /// A complete-but-damaged record, if one was hit: the error plus
    /// the number of bytes from it to end-of-file. Unlike a torn tail
    /// this is real corruption — the caller quarantines those bytes.
    pub damage: Option<(StoreError, u64)>,
}

impl Wal {
    /// Creates a fresh WAL at `path` (truncating any existing file) and
    /// makes the header durable.
    pub fn create(
        path: impl AsRef<Path>,
        generation: u64,
        fsync: bool,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC_WAL);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&generation.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());
        file.write_all(&header)?;
        file.flush()?;
        if fsync {
            file.sync_all()?;
            crate::segment_io::fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
        }
        Ok(Self { file, path, generation, last_seq: 0, fsync })
    }

    /// Re-opens an existing WAL for appending after replay: truncates
    /// the file to `replay.valid_len` (dropping any torn or damaged
    /// tail the caller has dealt with) and seeks to the end.
    pub fn reopen(
        path: impl AsRef<Path>,
        replay: &WalReplay,
        fsync: bool,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(replay.valid_len)?;
        if fsync {
            file.sync_all()?;
        }
        let mut file = file;
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0))?;
        let last_seq = replay.records.last().map_or(0, |&(seq, _)| seq);
        Ok(Self { file, path, generation: replay.generation, last_seq, fsync })
    }

    /// The WAL's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Generation stamped in this WAL's header.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Sequence number of the most recent record.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Appends one CRC-framed record and (unless disabled) fsyncs.
    /// Returns the measured [`DurabilityCost`]. On success the record
    /// is durable: a crash after `append` returns replays it.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> Result<DurabilityCost, StoreError> {
        debug_assert!(seq > self.last_seq, "WAL sequence numbers must increase");
        let len = crate::segment_io::check_len(payload.len(), SegmentRegion::WalRecord)?;
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let write_start = Instant::now();
        self.file.write_all(&frame)?;
        self.file.flush()?;
        let write_micros = write_start.elapsed().as_micros() as u64;

        let fsync_micros = if self.fsync {
            let fsync_start = Instant::now();
            self.file.sync_all()?;
            fsync_start.elapsed().as_micros() as u64
        } else {
            0
        };

        self.last_seq = seq;
        let obs = kb_obs::global();
        obs.counter("store.wal.appends").inc();
        obs.counter("store.wal.bytes").add(frame.len() as u64);
        obs.histogram("store.fsync_micros").observe(fsync_micros);
        Ok(DurabilityCost { bytes: frame.len() as u64, write_micros, fsync_micros })
    }

    /// Decodes a WAL file. Never fails on a torn tail (that is the
    /// normal crash signature — it is measured and dropped); fails only
    /// when the *header* is damaged. A damaged interior record stops
    /// replay and is reported in [`WalReplay::damage`].
    pub fn replay(path: impl AsRef<Path>) -> Result<WalReplay, StoreError> {
        let buf = std::fs::read(path.as_ref())?;
        if buf.len() < WAL_HEADER_LEN as usize {
            return Err(corrupt(
                SegmentRegion::WalHeader,
                format!(
                    "WAL is {} bytes, shorter than its {WAL_HEADER_LEN}-byte header",
                    buf.len()
                ),
            ));
        }
        if buf[0..4] != MAGIC_WAL {
            return Err(corrupt(SegmentRegion::WalHeader, "bad WAL magic"));
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != WAL_VERSION {
            return Err(corrupt(
                SegmentRegion::WalHeader,
                format!("unsupported WAL version {version}"),
            ));
        }
        let generation = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let header_crc = u32::from_le_bytes(buf[16..20].try_into().unwrap());
        if crc32(&buf[0..16]) != header_crc {
            return Err(corrupt(SegmentRegion::WalHeader, "WAL header checksum mismatch"));
        }

        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut valid_len = pos as u64;
        let mut torn_bytes = 0u64;
        let mut damage = None;
        let mut last_seq = 0u64;
        while pos < buf.len() {
            let remaining = buf.len() - pos;
            if remaining < FRAME_LEN {
                torn_bytes = remaining as u64;
                break;
            }
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let seq = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            let payload_crc = u32::from_le_bytes(buf[pos + 12..pos + 16].try_into().unwrap());
            if remaining < FRAME_LEN + len {
                // The frame promises more bytes than the file holds:
                // the writer died mid-record.
                torn_bytes = remaining as u64;
                break;
            }
            let payload = &buf[pos + FRAME_LEN..pos + FRAME_LEN + len];
            if crc32(payload) != payload_crc {
                damage = Some((
                    corrupt(
                        SegmentRegion::WalRecord,
                        format!("record seq {seq}: payload checksum mismatch"),
                    ),
                    remaining as u64,
                ));
                break;
            }
            if seq <= last_seq {
                damage = Some((
                    corrupt(
                        SegmentRegion::WalRecord,
                        format!("record sequence went backwards ({last_seq} then {seq})"),
                    ),
                    remaining as u64,
                ));
                break;
            }
            last_seq = seq;
            records.push((seq, payload.to_vec()));
            pos += FRAME_LEN + len;
            valid_len = pos as u64;
        }
        Ok(WalReplay { generation, records, valid_len, torn_bytes, damage })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kbwal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = temp_wal("roundtrip.log");
        let mut wal = Wal::create(&path, 7, false).unwrap();
        let cost = wal.append(1, b"first").unwrap();
        assert_eq!(cost.bytes, FRAME_LEN as u64 + 5);
        assert_eq!(cost.fsync_micros, 0, "fsync disabled");
        wal.append(2, b"second record").unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.generation, 7);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0], (1, b"first".to_vec()));
        assert_eq!(replay.records[1], (2, b"second record".to_vec()));
        assert_eq!(replay.torn_bytes, 0);
        assert!(replay.damage.is_none());
        assert_eq!(replay.valid_len, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_at_every_byte_boundary_is_truncated_not_fatal() {
        let path = temp_wal("torn.log");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        wal.append(1, b"keep me").unwrap();
        let keep_len = std::fs::metadata(&path).unwrap().len();
        wal.append(2, b"torn away").unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut the file at every byte inside the second record's frame.
        for cut in keep_len as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replay = Wal::replay(&path).unwrap();
            assert_eq!(replay.records.len(), 1, "cut at {cut}");
            assert_eq!(replay.valid_len, keep_len, "cut at {cut}");
            assert_eq!(replay.torn_bytes, (cut as u64) - keep_len, "cut at {cut}");
            assert!(replay.damage.is_none(), "a torn tail is not damage");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damaged_record_is_reported_and_prefix_survives() {
        let path = temp_wal("damaged.log");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        wal.append(1, b"good").unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        wal.append(2, b"about to rot").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xFF; // flip a payload byte of record 2
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.valid_len, good_len);
        let (err, quarantined) = replay.damage.expect("damage must be reported");
        assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::WalRecord, .. }));
        assert_eq!(quarantined, (n as u64) - good_len);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_damage_is_fatal() {
        let path = temp_wal("header.log");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        wal.append(1, b"x").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x01; // generation byte — covered by the header CRC
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::replay(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::WalHeader, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_truncates_and_continues_the_sequence() {
        let path = temp_wal("reopen.log");
        let mut wal = Wal::create(&path, 3, false).unwrap();
        wal.append(1, b"one").unwrap();
        wal.append(2, b"two").unwrap();
        // Simulate a crash mid-append of record 3.
        let full = std::fs::read(&path).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[9, 0, 0, 0, 3]); // half a frame
        std::fs::write(&path, &torn).unwrap();

        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        let mut wal = Wal::reopen(&path, &replay, false).unwrap();
        assert_eq!(wal.last_seq(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), replay.valid_len);
        wal.append(3, b"three").unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2, 3],);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_payload_is_rejected_before_touching_the_file() {
        let path = temp_wal("toolarge.log");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        let err = crate::segment_io::with_len_limit(4, || wal.append(1, b"way past the limit"))
            .unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { region: SegmentRegion::WalRecord, .. }));
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            WAL_HEADER_LEN,
            "the failed append must not write a frame"
        );
        // The WAL is still usable afterwards.
        wal.append(1, b"ok").unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_monotonic_sequence_is_damage() {
        let path = temp_wal("seq.log");
        let mut wal = Wal::create(&path, 1, false).unwrap();
        wal.append(5, b"five").unwrap();
        // Hand-craft a second record with a *lower* seq.
        let mut bytes = std::fs::read(&path).unwrap();
        let payload = b"stale";
        bytes.extend_from_slice(&u32::try_from(payload.len()).unwrap().to_le_bytes());
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.damage.is_some());
        std::fs::remove_file(&path).ok();
    }
}
