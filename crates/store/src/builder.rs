//! The write side of the storage engine: `KbCore` (the shared
//! dictionary + fact-table state), the batched [`KbBuilder`], and
//! per-worker [`KbShard`]s with local interning that merge
//! deterministically at a barrier.
//!
//! The construction/serving split mirrors the batch-curation vs
//! read-serving architecture of the industrial KBs the tutorial surveys
//! (YAGO-style batch builds): writers funnel into a builder, readers
//! get an immutable [`KbSnapshot`].
//!
//! Determinism contract: merging shards in shard order reproduces the
//! exact dictionary ids, fact ids and merge semantics of a serial
//! ingest that processed the same facts in the same order. This is what
//! keeps parallel harvest output bit-identical to the serial path.

use crate::fact::{Fact, Triple};
use crate::fx::FxHashMap;
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::sameas::SameAsStore;
use crate::snapshot::{FrozenIndexes, KbSnapshot};
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimeSpan;
use crate::Dictionary;

/// What [`KbCore::add_fact`] did with the incoming fact — the write
/// façade uses this to decide whether cached read indexes must be
/// invalidated (only structural changes touch the index key set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AddOutcome {
    /// A brand-new triple was appended.
    New,
    /// The triple already existed live; evidence was merged in place.
    Merged,
    /// The triple existed retracted and came back to life.
    Resurrected,
}

/// The mutable heart shared by every write-side type: term dictionary,
/// append-only fact table, triple→fact dedup map and provenance
/// sources. Holds *no* permutation indexes — those belong to the read
/// side ([`FrozenIndexes`]) and are built by freezing.
#[derive(Debug, Default, Clone)]
pub(crate) struct KbCore {
    pub(crate) dict: Dictionary,
    pub(crate) facts: Vec<Fact>,
    pub(crate) by_triple: FxHashMap<Triple, FactId>,
    pub(crate) sources: Vec<String>,
    pub(crate) source_lookup: FxHashMap<String, SourceId>,
    /// Number of live (non-retracted) facts, maintained incrementally
    /// so `len()` stays O(1) without any index.
    pub(crate) live: usize,
}

impl KbCore {
    /// An empty core with the default `"asserted"` source registered.
    pub(crate) fn new() -> Self {
        let mut core = Self::default();
        let id = core.register_source("asserted");
        debug_assert_eq!(id, SourceId::DEFAULT);
        core
    }

    pub(crate) fn register_source(&mut self, name: &str) -> SourceId {
        if let Some(&id) = self.source_lookup.get(name) {
            return id;
        }
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(name.to_string());
        self.source_lookup.insert(name.to_string(), id);
        id
    }

    pub(crate) fn source_name(&self, id: SourceId) -> Option<&str> {
        self.sources.get(id.0 as usize).map(|s| s.as_str())
    }

    /// Adds or merges a fact; see [`KnowledgeBase::add_fact`] for the
    /// merge semantics (noisy-or confidence, first-known span, earliest
    /// source).
    ///
    /// [`KnowledgeBase::add_fact`]: crate::KnowledgeBase::add_fact
    pub(crate) fn add_fact(&mut self, fact: Fact) -> (FactId, AddOutcome) {
        debug_assert!((0.0..=1.0).contains(&fact.confidence));
        if let Some(&id) = self.by_triple.get(&fact.triple) {
            let existing = &mut self.facts[id.index()];
            let was_retracted = existing.is_retracted();
            existing.confidence = 1.0 - (1.0 - existing.confidence) * (1.0 - fact.confidence);
            if existing.span.is_none() {
                existing.span = fact.span;
            }
            let outcome = if was_retracted && !existing.is_retracted() {
                self.live += 1;
                AddOutcome::Resurrected
            } else {
                AddOutcome::Merged
            };
            return (id, outcome);
        }
        let id = FactId(self.facts.len() as u32);
        let t = fact.triple;
        self.facts.push(fact);
        self.by_triple.insert(t, id);
        self.live += 1;
        (id, AddOutcome::New)
    }

    /// Retracts a live triple (confidence forced to zero). Returns
    /// whether anything changed.
    pub(crate) fn retract(&mut self, t: Triple) -> bool {
        let Some(&id) = self.by_triple.get(&t) else {
            return false;
        };
        let fact = &mut self.facts[id.index()];
        if fact.is_retracted() {
            return false;
        }
        fact.confidence = 0.0;
        self.live -= 1;
        true
    }

    /// Retracts a triple even when it is not present locally: an absent
    /// triple gets a confidence-zero *tombstone* entry (never counted
    /// live). Delta builders use this to retract facts that live in an
    /// older segment — the tombstone shadows them at merge time.
    pub(crate) fn retract_or_tombstone(&mut self, t: Triple) -> bool {
        if self.by_triple.contains_key(&t) {
            return self.retract(t);
        }
        let id = FactId(self.facts.len() as u32);
        self.facts.push(Fact { triple: t, confidence: 0.0, source: SourceId::DEFAULT, span: None });
        self.by_triple.insert(t, id);
        true
    }

    /// Sets the temporal scope of an existing triple. Does not change
    /// the index key set, so callers need not invalidate caches.
    pub(crate) fn set_span(&mut self, t: Triple, span: TimeSpan) -> bool {
        match self.by_triple.get(&t) {
            Some(&id) => {
                self.facts[id.index()].span = Some(span);
                true
            }
            None => false,
        }
    }

    /// Looks up a live fact by triple.
    pub(crate) fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.by_triple.get(t).map(|id| &self.facts[id.index()]).filter(|f| !f.is_retracted())
    }

    /// Replays one shard into this core. Local term ids are remapped by
    /// re-interning the shard dictionary in local-id (= first-seen)
    /// order, which reproduces the global id assignment a serial ingest
    /// of the same facts would have produced.
    pub(crate) fn merge_shard(&mut self, shard: &KbShard) -> usize {
        let remap: Vec<TermId> =
            shard.dict.iter().map(|(_, term)| self.dict.intern(term)).collect();
        let mut new_facts = 0usize;
        for fact in &shard.facts {
            let t = fact.triple;
            let triple = Triple::new(remap[t.s.index()], remap[t.p.index()], remap[t.o.index()]);
            let (_, outcome) = self.add_fact(Fact { triple, ..fact.clone() });
            if outcome == AddOutcome::New {
                new_facts += 1;
            }
        }
        new_facts
    }
}

/// A per-worker ingest shard: facts over a *local* dictionary, built
/// without any shared lock. Workers fill shards independently; the
/// merge barrier ([`KbBuilder::merge_shards`] /
/// [`KnowledgeBase::merge_shards`]) replays them in shard order, so the
/// result is bit-identical to a serial ingest of the concatenated
/// shards.
///
/// Provenance [`SourceId`]s are *global*: register sources on the
/// target builder/store before forking shards and pass the returned
/// ids in.
///
/// [`KnowledgeBase::merge_shards`]: crate::KnowledgeBase::merge_shards
#[derive(Debug, Default, Clone)]
pub struct KbShard {
    dict: Dictionary,
    facts: Vec<Fact>,
}

impl KbShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term into the shard-local dictionary.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.dict.intern(term)
    }

    /// Appends a fact whose triple uses shard-local term ids (from
    /// [`intern`](Self::intern)). Duplicates are *not* merged here —
    /// merge semantics are applied at the barrier, exactly as a serial
    /// ingest would.
    pub fn add_fact(&mut self, fact: Fact) {
        debug_assert!((0.0..=1.0).contains(&fact.confidence));
        self.facts.push(fact);
    }

    /// Convenience: interns three strings (subject first, then
    /// predicate, then object — the same order the serial ingest path
    /// uses, which keeps merged dictionaries identical) and appends the
    /// fact.
    pub fn add(
        &mut self,
        s: &str,
        p: &str,
        o: &str,
        confidence: f64,
        source: SourceId,
        span: Option<TimeSpan>,
    ) {
        let triple = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.add_fact(Fact { triple, confidence, source, span });
    }

    /// Number of facts buffered in this shard.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the shard holds no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Distinct terms in the shard-local dictionary.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }
}

/// The batched write-side builder: accepts ingest (directly or via
/// [`KbShard`]s), then freezes into an immutable, `Arc`-shareable
/// [`KbSnapshot`] whose queries run on sorted-array indexes.
///
/// ```
/// use kb_store::{KbBuilder, KbRead, TriplePattern};
///
/// let mut b = KbBuilder::new();
/// b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
/// let snap = b.freeze();
/// assert_eq!(snap.count_matching(&TriplePattern::any()), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KbBuilder {
    pub(crate) core: KbCore,
    /// Subclass-of DAG over class terms.
    pub taxonomy: Taxonomy,
    /// owl:sameAs equivalence classes over entity terms.
    pub sameas: SameAsStore,
    /// Multilingual labels and the reverse surface-form index.
    pub labels: LabelStore,
}

impl Default for KbBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl KbBuilder {
    /// Creates an empty builder with the default `"asserted"` source.
    pub fn new() -> Self {
        Self {
            core: KbCore::new(),
            taxonomy: Taxonomy::default(),
            sameas: SameAsStore::default(),
            labels: LabelStore::default(),
        }
    }

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.core.dict.intern(term)
    }

    /// Looks up an already-interned term.
    pub fn term(&self, term: &str) -> Option<TermId> {
        self.core.dict.get(term)
    }

    /// Resolves a term id back to its string.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.core.dict.resolve(id)
    }

    /// Registers (or retrieves) a provenance source by name.
    pub fn register_source(&mut self, name: &str) -> SourceId {
        self.core.register_source(name)
    }

    /// Adds a fully-confident fact with default provenance.
    pub fn add_triple(&mut self, s: TermId, p: TermId, o: TermId) -> FactId {
        self.add_fact(Fact::asserted(Triple::new(s, p, o)))
    }

    /// Convenience: interns three strings and asserts the triple.
    pub fn assert_str(&mut self, s: &str, p: &str, o: &str) -> FactId {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.add_fact(Fact::asserted(t))
    }

    /// Adds a fact with the same merge semantics as
    /// [`KnowledgeBase::add_fact`](crate::KnowledgeBase::add_fact).
    pub fn add_fact(&mut self, fact: Fact) -> FactId {
        self.core.add_fact(fact).0
    }

    /// Bulk ingest in iteration order.
    pub fn add_facts(&mut self, facts: impl IntoIterator<Item = Fact>) {
        for f in facts {
            self.core.add_fact(f);
        }
    }

    /// Retracts a triple. See
    /// [`KnowledgeBase::retract`](crate::KnowledgeBase::retract).
    pub fn retract(&mut self, t: Triple) -> bool {
        self.core.retract(t)
    }

    /// Retracts by strings, recording a tombstone even when the triple
    /// was never added to *this* builder. In a delta build
    /// ([`freeze_delta`](Self::freeze_delta)) the tombstone shadows the
    /// base segment's assertion; in a plain [`freeze`](Self::freeze) a
    /// tombstone for an absent triple is inert.
    pub fn retract_str(&mut self, s: &str, p: &str, o: &str) -> bool {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.core.retract_or_tombstone(t)
    }

    /// Sets the temporal scope of an existing triple.
    pub fn set_span(&mut self, t: Triple, span: TimeSpan) -> bool {
        self.core.set_span(t, span)
    }

    /// Number of live facts accumulated so far.
    pub fn len(&self) -> usize {
        self.core.live
    }

    /// Whether no live facts have been added.
    pub fn is_empty(&self) -> bool {
        self.core.live == 0
    }

    /// Merges one shard (replay in order; see [`KbShard`]). Returns the
    /// number of new facts.
    pub fn merge_shard(&mut self, shard: &KbShard) -> usize {
        self.core.merge_shard(shard)
    }

    /// The merge barrier: replays `shards` in iteration order, which
    /// must be the deterministic work-split order (chunk 0 first).
    /// Returns the number of new facts across all shards.
    pub fn merge_shards<I>(&mut self, shards: I) -> usize
    where
        I: IntoIterator<Item = KbShard>,
    {
        let obs = kb_obs::global();
        let span = obs.span("store.shard.merge_us");
        let mut merges = 0u64;
        let added = shards
            .into_iter()
            .map(|s| {
                merges += 1;
                self.core.merge_shard(&s)
            })
            .sum();
        span.stop();
        obs.counter("store.shard.merges").add(merges);
        obs.counter("store.shard.merged_facts").add(added as u64);
        added
    }

    /// Freezes the builder into an immutable snapshot: sorts the three
    /// permutation indexes once (`O(n log n)`) and hands everything
    /// over without copying the fact table.
    pub fn freeze(self) -> KbSnapshot {
        let indexes = FrozenIndexes::build(&self.core.facts);
        KbSnapshot::from_parts(self.core, self.taxonomy, self.sameas, self.labels, indexes)
    }

    /// Freezes the builder into a [`DeltaSegment`](crate::DeltaSegment)
    /// layered on top of `view`: terms are re-interned against the
    /// view's dictionary (unknown terms get fresh ids continuing the
    /// view's id space), facts whose triple already exists in the view
    /// become *shadow* entries carrying the evidence-merged confidence,
    /// and retractions of view-visible triples become tombstones. The
    /// resulting segment is installed with
    /// [`SegmentedSnapshot::with_delta`](crate::SegmentedSnapshot::with_delta).
    ///
    /// The builder's taxonomy, sameAs and label stores are *not* carried
    /// into the delta — segmented views serve those from the base
    /// segment until the next compaction.
    pub fn freeze_delta(self, view: &crate::SegmentedSnapshot) -> crate::DeltaSegment {
        crate::DeltaSegment::from_builder(self, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::KbRead;
    use crate::TriplePattern;

    #[test]
    fn builder_freeze_answers_queries() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "b");
        b.assert_str("a", "r", "c");
        b.assert_str("b", "r", "c");
        let snap = b.freeze();
        let a = snap.term("a").unwrap();
        let r = snap.term("r").unwrap();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.count_matching(&TriplePattern::with_s(a)), 2);
        assert_eq!(snap.count_matching(&TriplePattern::with_p(r)), 3);
    }

    #[test]
    fn shard_merge_matches_serial_ingest_exactly() {
        // Serial reference.
        let mut serial = KbBuilder::new();
        let facts = [
            ("x", "p", "y", 0.5),
            ("y", "p", "z", 0.9),
            ("x", "p", "y", 0.5), // duplicate → noisy-or merge
            ("z", "q", "x", 0.7),
        ];
        for &(s, p, o, c) in &facts {
            let t = Triple::new(serial.intern(s), serial.intern(p), serial.intern(o));
            serial.add_fact(Fact {
                triple: t,
                confidence: c,
                source: SourceId::DEFAULT,
                span: None,
            });
        }
        // Sharded: same facts split 2/2, merged in order.
        let mut sharded = KbBuilder::new();
        let mut shards = vec![KbShard::new(), KbShard::new()];
        for (i, &(s, p, o, c)) in facts.iter().enumerate() {
            shards[i / 2].add(s, p, o, c, SourceId::DEFAULT, None);
        }
        let added = sharded.merge_shards(shards);
        assert_eq!(added, 3);
        // Identical dictionaries (same ids in same order) and fact tables.
        assert_eq!(serial.core.dict.len(), sharded.core.dict.len());
        for (id, term) in serial.core.dict.iter() {
            assert_eq!(sharded.core.dict.resolve(id), Some(term));
        }
        assert_eq!(serial.core.facts, sharded.core.facts);
    }

    #[test]
    fn retract_then_resurrect_keeps_live_count_right() {
        let mut b = KbBuilder::new();
        let id = b.assert_str("a", "r", "b");
        let t =
            crate::Triple::new(b.term("a").unwrap(), b.term("r").unwrap(), b.term("b").unwrap());
        assert_eq!(b.len(), 1);
        assert!(b.retract(t));
        assert_eq!(b.len(), 0);
        assert!(!b.retract(t));
        let id2 =
            b.add_fact(Fact { triple: t, confidence: 0.8, source: SourceId::DEFAULT, span: None });
        assert_eq!(id, id2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn empty_shard_is_a_no_op() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "b");
        assert_eq!(b.merge_shard(&KbShard::new()), 0);
        assert_eq!(b.len(), 1);
        assert!(KbShard::new().is_empty());
    }
}
