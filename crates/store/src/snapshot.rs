//! The read side of the storage engine: `FrozenIndexes` (compressed
//! frame-backed SPO/POS/OSP permutations answered by binary-search
//! range scans), the zero-alloc query iterators, the columnar batch
//! cursors, and the immutable, `Arc`-shareable [`KbSnapshot`].
//!
//! Index layout: each permutation stores four compressed
//! [`ColFrames`] columns — the three key components in permuted order
//! plus the fact id — alongside a per-leading-term offset column
//! (`starts`). A [`TriplePattern`] with a bound leading term jumps
//! straight to its bucket — `starts[t] .. starts[t + 1]` — in `O(1)`;
//! any remaining bound components narrow the bucket with binary
//! searches whose probes go through the *bitpacked* fact-id column
//! (constant-time random access) into the fact table, so point lookups
//! never pay a sequential frame decode. Scans then stream the bucket
//! through a `SegCursor`, which decodes one frame-sized window at a
//! time (or takes a constant-time fid path for small ranges).
//!
//! The same cursors also serve layered views: a
//! [`SegmentedSnapshot`](crate::SegmentedSnapshot) opens one cursor
//! per segment and [`MatchIter`] k-way merges them by minimum key,
//! with the *newest* segment holding a key winning (shadowing) and
//! delta tombstones suppressing older assertions. Monolithic views
//! keep an empty delta stack and take the single-cursor fast path —
//! no merge overhead, no per-row allocation.
//!
//! [`MatchBatches`] is the vectorized face of the same machinery: it
//! emits ~[`BATCH_ROWS`]-row columnar [`TripleBatch`]es, splicing the
//! decoded key windows directly into the output columns on the
//! monolithic unfiltered path (no per-row iterator step, no fact-table
//! deref).

use std::sync::{Arc, OnceLock};

use crate::builder::KbCore;
use crate::error::StoreError;
use crate::fact::{Fact, Triple};
use crate::frames::{ColFrames, FRAME_ROWS};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::{IndexChoice, TriplePattern};
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::segmap::{ColSlot, FrameRegion, SegmentSource, FRAME_COLS};
use crate::segment::DeltaSegment;
use crate::segment_io::RegionEntry;
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimePoint;
use crate::Dictionary;

pub(crate) type Key = (TermId, TermId, TermId);

/// Rows per columnar batch emitted by [`MatchBatches`] (and the query
/// engine's binding batches). Matches the frame size so the monolithic
/// fast path can splice whole decoded windows.
pub const BATCH_ROWS: usize = 1024;

/// Ranges at or below this size fill their cursor window through the
/// `O(1)` bitpacked fact-id column instead of decoding key frames —
/// point lookups and narrow joins never pay a varint prefix decode.
const SMALL_SCAN: usize = 64;

/// Permutes a triple into one index's key order.
fn permute(choice: IndexChoice, t: &Triple) -> Key {
    match choice {
        IndexChoice::Spo => t.spo_key(),
        IndexChoice::Pos => t.pos_key(),
        IndexChoice::Osp => t.osp_key(),
    }
}

/// Inverts a permuted index key back into the `(s, p, o)` triple.
fn unpermute(choice: IndexChoice, k: Key) -> Triple {
    match choice {
        IndexChoice::Spo => Triple::new(k.0, k.1, k.2),
        IndexChoice::Pos => Triple::new(k.2, k.0, k.1),
        IndexChoice::Osp => Triple::new(k.1, k.2, k.0),
    }
}

/// One compressed permutation: the three key columns in permuted order
/// plus the fact-id column. Key columns may use any frame encoding;
/// the fact-id column is always bitpacked so random probes are `O(1)`.
#[derive(Debug, Default, Clone)]
pub(crate) struct PermFrames {
    k0: ColFrames,
    k1: ColFrames,
    k2: ColFrames,
    fid: ColFrames,
}

impl PermFrames {
    fn from_entries(entries: &[(Key, FactId)]) -> Self {
        let n = entries.len();
        let (mut k0, mut k1, mut k2, mut fid) = (
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
            Vec::with_capacity(n),
        );
        for &((a, b, c), id) in entries {
            k0.push(a.0);
            k1.push(b.0);
            k2.push(c.0);
            fid.push(id.0);
        }
        Self {
            k0: ColFrames::from_values(&k0),
            k1: ColFrames::from_values(&k1),
            k2: ColFrames::from_values(&k2),
            fid: ColFrames::from_values_packed(&fid),
        }
    }

    pub(crate) fn from_cols(k0: ColFrames, k1: ColFrames, k2: ColFrames, fid: ColFrames) -> Self {
        Self { k0, k1, k2, fid }
    }

    pub(crate) fn len(&self) -> usize {
        self.fid.len()
    }

    pub(crate) fn cols(&self) -> [&ColFrames; 4] {
        [&self.k0, &self.k1, &self.k2, &self.fid]
    }
}

/// A cursor's handle on one permutation's four columns: either borrowed
/// from resident [`EagerIndexes`] (zero cost) or pinned `Arc`s faulted
/// out of a lazily opened segment. Pinned columns stay alive for the
/// cursor even if the budget evicts the slot's copy mid-query — a spill
/// never invalidates an in-flight scan.
#[derive(Debug, Clone)]
pub(crate) enum PermRef<'a> {
    Borrowed(&'a PermFrames),
    Pinned { k0: Arc<ColFrames>, k1: Arc<ColFrames>, k2: Arc<ColFrames>, fid: Arc<ColFrames> },
}

impl PermRef<'_> {
    fn k0(&self) -> &ColFrames {
        match self {
            PermRef::Borrowed(p) => &p.k0,
            PermRef::Pinned { k0, .. } => k0,
        }
    }

    fn k1(&self) -> &ColFrames {
        match self {
            PermRef::Borrowed(p) => &p.k1,
            PermRef::Pinned { k1, .. } => k1,
        }
    }

    fn k2(&self) -> &ColFrames {
        match self {
            PermRef::Borrowed(p) => &p.k2,
            PermRef::Pinned { k2, .. } => k2,
        }
    }

    fn fid(&self) -> &ColFrames {
        match self {
            PermRef::Borrowed(p) => &p.fid,
            PermRef::Pinned { fid, .. } => fid,
        }
    }

    fn len(&self) -> usize {
        self.fid().len()
    }

    /// The key at row `i`, probed through the `O(1)` fact-id column
    /// and the fact table (never the possibly-varint key columns).
    fn key_at(&self, facts: &[Fact], choice: IndexChoice, i: usize) -> Key {
        permute(choice, &facts[self.fid().get(i) as usize].triple)
    }
}

/// Prefix-sum offsets over a sorted leading-key column:
/// `starts[t] .. starts[t + 1]` brackets term `t`'s entries. Terms past
/// the largest seen leading id have no slot (callers treat out-of-range
/// as empty).
pub(crate) fn starts_from_leading(leading: &[u32]) -> Vec<u32> {
    let top = leading.last().map_or(0, |&a| a as usize + 1);
    let mut starts = vec![0u32; top + 1];
    for &a in leading {
        starts[a as usize + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    starts
}

fn starts_of(entries: &[(Key, FactId)]) -> Vec<u32> {
    let top = entries.last().map_or(0, |&((a, _, _), _)| a.index() + 1);
    let mut starts = vec![0u32; top + 1];
    for &((a, _, _), _) in entries {
        starts[a.index() + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    starts
}

/// Binary search: the first `i` in `[lo, hi)` with `!below(i)`.
fn partition(mut lo: usize, mut hi: usize, mut below: impl FnMut(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if below(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Size and compression accounting for a set of frozen indexes.
/// `raw_bytes` is what the pre-compression layout (16-byte
/// key+fact-id entries plus 4-byte bucket slots) would occupy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Permutation entries across the three indexes.
    pub entries: usize,
    /// Offset-bucket slots across the three indexes.
    pub bucket_slots: usize,
    /// Compression frames across all columns.
    pub frames: usize,
    /// Resident bytes of the compressed columns.
    pub compressed_bytes: usize,
    /// Bytes the uncompressed sorted-array layout would use.
    pub raw_bytes: usize,
}

impl IndexStats {
    /// Accumulates another segment's stats (for segmented views).
    pub fn absorb(&mut self, other: &IndexStats) {
        self.entries += other.entries;
        self.bucket_slots += other.bucket_slots;
        self.frames += other.frames;
        self.compressed_bytes += other.compressed_bytes;
        self.raw_bytes += other.raw_bytes;
    }

    /// Fraction of the raw layout saved by compression, in `[0, 1]`.
    pub fn saved_ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 0.0;
        }
        1.0 - self.compressed_bytes as f64 / self.raw_bytes as f64
    }
}

/// The three compressed permutation indexes of a frozen store, fully
/// resident in memory — the build-side and small-segment form of
/// [`FrozenIndexes`].
#[derive(Debug, Default, Clone)]
pub(crate) struct EagerIndexes {
    spo: PermFrames,
    pos: PermFrames,
    osp: PermFrames,
    spo_starts: ColFrames,
    pos_starts: ColFrames,
    osp_starts: ColFrames,
}

impl EagerIndexes {
    fn build_impl(facts: &[Fact], include_retracted: bool) -> Self {
        let mut spo = Vec::with_capacity(facts.len());
        let mut pos = Vec::with_capacity(facts.len());
        let mut osp = Vec::with_capacity(facts.len());
        for (i, f) in facts.iter().enumerate() {
            if f.is_retracted() && !include_retracted {
                continue;
            }
            let id = FactId(i as u32);
            let t = f.triple;
            spo.push((t.spo_key(), id));
            pos.push((t.pos_key(), id));
            osp.push((t.osp_key(), id));
        }
        spo.sort_unstable();
        pos.sort_unstable();
        osp.sort_unstable();
        let spo_starts = ColFrames::from_values_packed(&starts_of(&spo));
        let pos_starts = ColFrames::from_values_packed(&starts_of(&pos));
        let osp_starts = ColFrames::from_values_packed(&starts_of(&osp));
        Self {
            spo: PermFrames::from_entries(&spo),
            pos: PermFrames::from_entries(&pos),
            osp: PermFrames::from_entries(&osp),
            spo_starts,
            pos_starts,
            osp_starts,
        }
    }

    /// Indexes every live fact in `facts` (retracted entries are
    /// skipped, so they never appear in query results).
    pub(crate) fn build(facts: &[Fact]) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.snapshot.freeze_us");
        let built = Self::build_impl(facts, false);
        span.stop();
        obs.counter("store.snapshot.freezes").inc();
        // Three permutation arrays plus their offset buckets.
        obs.gauge("store.index.entries").set((3 * built.spo.len()) as i64);
        obs.gauge("store.index.bucket_slots").set((3 * built.spo_starts.len()) as i64);
        built
    }

    /// Indexes every fact *including* retracted ones — the delta-segment
    /// build. A delta's tombstones must be present in its permutation
    /// arrays so the k-way merge sees their keys and lets them shadow
    /// (suppress) the base segment's assertions.
    pub(crate) fn build_with_tombstones(facts: &[Fact]) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.delta.freeze_us");
        let built = Self::build_impl(facts, true);
        span.stop();
        obs.counter("store.delta.freezes").inc();
        built
    }

    /// The three permutation columns as fact-id arrays (SPO, POS, OSP
    /// order) — the v1 serialized form: keys are redundant with the
    /// fact table, so the legacy segment writer stores only the ids.
    pub(crate) fn perm_fact_ids(&self) -> [Vec<u32>; 3] {
        [self.spo.fid.values(), self.pos.fid.values(), self.osp.fid.values()]
    }

    /// The three offset-bucket arrays (SPO, POS, OSP order), decoded —
    /// for the v1 segment writer.
    pub(crate) fn bucket_starts_vec(&self) -> [Vec<u32>; 3] {
        [self.spo_starts.values(), self.pos_starts.values(), self.osp_starts.values()]
    }

    /// The fifteen compressed columns in serialization order: for each
    /// of SPO/POS/OSP the `k0,k1,k2,fid` columns, then the three starts
    /// columns.
    pub(crate) fn frame_cols(&self) -> [&ColFrames; 15] {
        let [s0, s1, s2, s3] = self.spo.cols();
        let [p0, p1, p2, p3] = self.pos.cols();
        let [o0, o1, o2, o3] = self.osp.cols();
        [
            s0,
            s1,
            s2,
            s3,
            p0,
            p1,
            p2,
            p3,
            o0,
            o1,
            o2,
            o3,
            &self.spo_starts,
            &self.pos_starts,
            &self.osp_starts,
        ]
    }

    /// Size and compression accounting across every column.
    pub(crate) fn stats(&self) -> IndexStats {
        let mut st = IndexStats {
            entries: 3 * self.spo.len(),
            bucket_slots: self.spo_starts.len() + self.pos_starts.len() + self.osp_starts.len(),
            ..IndexStats::default()
        };
        for col in self.frame_cols() {
            st.frames += col.n_frames();
            st.compressed_bytes += col.compressed_bytes();
        }
        // A raw entry is a 12-byte key plus a 4-byte fact id; a raw
        // bucket slot is one u32.
        st.raw_bytes = st.entries * 16 + st.bucket_slots * 4;
        st
    }

    /// Reassembles frozen indexes from serialized fact-id permutations
    /// and offset buckets (v1 segments), re-deriving each key from the
    /// fact table in one linear pass.
    ///
    /// Validates everything a checksum cannot: ids in range, keys
    /// non-decreasing in each permutation, buckets exactly the prefix
    /// sums of the entries. Any violation is a [`StoreError::Corrupt`].
    pub(crate) fn from_fact_perms(
        facts: &[Fact],
        perms: [Vec<u32>; 3],
        starts: [Vec<u32>; 3],
    ) -> Result<Self, crate::StoreError> {
        use crate::error::SegmentRegion;
        let corrupt =
            |region: SegmentRegion, detail: String| crate::StoreError::Corrupt { region, detail };
        let [spo_ids, pos_ids, osp_ids] = perms;
        let [spo_starts, pos_starts, osp_starts] = starts;
        let build = |ids: &[u32],
                     key_of: fn(&Triple) -> Key,
                     starts: &[u32]|
         -> Result<(PermFrames, ColFrames), crate::StoreError> {
            let mut out = Vec::with_capacity(ids.len());
            let mut prev: Option<Key> = None;
            for &id in ids {
                let fact = facts.get(id as usize).ok_or_else(|| {
                    corrupt(
                        SegmentRegion::Permutations,
                        format!("fact id {id} out of range ({} facts)", facts.len()),
                    )
                })?;
                let key = key_of(&fact.triple);
                if prev.is_some_and(|p| p > key) {
                    return Err(corrupt(
                        SegmentRegion::Permutations,
                        "permutation column is not sorted".into(),
                    ));
                }
                prev = Some(key);
                out.push((key, FactId(id)));
            }
            if starts_of(&out) != starts {
                return Err(corrupt(
                    SegmentRegion::Buckets,
                    "offset buckets disagree with the permutation entries".into(),
                ));
            }
            Ok((PermFrames::from_entries(&out), ColFrames::from_values_packed(starts)))
        };
        // The three permutations are independent reads over the shared
        // fact table; validating and compressing them is the most
        // expensive step of a v1 cold open, so fan out across threads.
        let (spo, pos, osp) = std::thread::scope(|s| {
            let pos = s.spawn(|| build(&pos_ids, |t| t.pos_key(), &pos_starts));
            let osp = s.spawn(|| build(&osp_ids, |t| t.osp_key(), &osp_starts));
            let spo = build(&spo_ids, |t| t.spo_key(), &spo_starts);
            (spo, pos.join().expect("pos build"), osp.join().expect("osp build"))
        });
        let ((spo, spo_starts), (pos, pos_starts), (osp, osp_starts)) = (spo?, pos?, osp?);
        Ok(Self { spo, pos, osp, spo_starts, pos_starts, osp_starts })
    }

    /// Reassembles frozen indexes straight from deserialized compressed
    /// columns (v2 segments) — the frames are validated against the
    /// fact table but *not* re-encoded, which is what keeps the v2 cold
    /// open linear.
    ///
    /// `expected_len` is the entry count every permutation must have
    /// (live facts for a base segment, all facts for a delta);
    /// `is_base` additionally forbids retracted facts in the index.
    pub(crate) fn from_frames(
        facts: &[Fact],
        expected_len: usize,
        is_base: bool,
        perms: [PermFrames; 3],
        starts: [ColFrames; 3],
    ) -> Result<Self, crate::StoreError> {
        use crate::error::SegmentRegion;
        let corrupt =
            |detail: String| crate::StoreError::Corrupt { region: SegmentRegion::Frames, detail };
        let validate = |perm: &PermFrames,
                        starts: &ColFrames,
                        key_of: fn(&Triple) -> Key|
         -> Result<(), crate::StoreError> {
            for col in perm.cols() {
                if col.len() != expected_len {
                    return Err(corrupt(format!(
                        "permutation column has {} rows, expected {expected_len}",
                        col.len()
                    )));
                }
            }
            if perm.fid.has_varint() || starts.has_varint() {
                return Err(corrupt("sequential-only encoding in a random-access column".into()));
            }
            let fids = perm.fid.values();
            let (k0, k1, k2) = (perm.k0.values(), perm.k1.values(), perm.k2.values());
            let mut prev: Option<Key> = None;
            for (i, &id) in fids.iter().enumerate() {
                let fact = facts.get(id as usize).ok_or_else(|| {
                    corrupt(format!("fact id {id} out of range ({} facts)", facts.len()))
                })?;
                if is_base && fact.is_retracted() {
                    return Err(corrupt("retracted fact indexed in a base segment".into()));
                }
                let key = key_of(&fact.triple);
                if (key.0 .0, key.1 .0, key.2 .0) != (k0[i], k1[i], k2[i]) {
                    return Err(corrupt("key columns disagree with the fact table".into()));
                }
                if prev.is_some_and(|p| p > key) {
                    return Err(corrupt("permutation column is not sorted".into()));
                }
                prev = Some(key);
            }
            if starts.values() != starts_from_leading(&k0) {
                return Err(corrupt("offset buckets disagree with the permutation entries".into()));
            }
            Ok(())
        };
        let [spo, pos, osp] = perms;
        let [spo_starts, pos_starts, osp_starts] = starts;
        let (r_spo, r_pos, r_osp) = std::thread::scope(|s| {
            let rp = s.spawn(|| validate(&pos, &pos_starts, |t| t.pos_key()));
            let ro = s.spawn(|| validate(&osp, &osp_starts, |t| t.osp_key()));
            let rs = validate(&spo, &spo_starts, |t| t.spo_key());
            (rs, rp.join().expect("pos validate"), ro.join().expect("osp validate"))
        });
        r_spo?;
        r_pos?;
        r_osp?;
        Ok(Self { spo, pos, osp, spo_starts, pos_starts, osp_starts })
    }
}

/// Locates the row range answering `pattern` in one permutation and
/// opens a cursor over it, plus the post-filter kept for the `s?o`
/// shape (its range is already exact; the filter only preserves the
/// conservative size hint). `(a, b, c)` are the pattern components in
/// the permutation's key order.
fn locate<'a>(
    perm: PermRef<'a>,
    starts: &ColFrames,
    (a, b, c): (Option<TermId>, Option<TermId>, Option<TermId>),
    pattern: &TriplePattern,
    facts: &'a [Fact],
    choice: IndexChoice,
) -> (SegCursor<'a>, Option<TriplePattern>) {
    let filter = (pattern.bound_count() == 2 && pattern.p.is_none()).then_some(*pattern);
    // Leading term bound → O(1) bucket lookup via the offset column.
    // (`choose_index` only leaves the leading term unbound for the
    // all-wildcard pattern, which scans the whole index.)
    let (lo, hi) = match a {
        None => (0, perm.len()),
        Some(a) => {
            let i = a.index();
            if i + 1 >= starts.len() {
                return (SegCursor::new(perm, facts, choice, 0, 0), filter);
            }
            (starts.get(i) as usize, starts.get(i + 1) as usize)
        }
    };
    // Remaining bound components narrow within the bucket; probes
    // go through the O(1) fid column into the fact table.
    let (lo, hi) = match (b, c) {
        (None, _) => (lo, hi),
        (Some(b), None) => {
            let s = partition(lo, hi, |i| perm.key_at(facts, choice, i).1 < b);
            let e = partition(s, hi, |i| perm.key_at(facts, choice, i).1 <= b);
            (s, e)
        }
        (Some(b), Some(c)) => {
            let key12 = |i| {
                let k = perm.key_at(facts, choice, i);
                (k.1, k.2)
            };
            let s = partition(lo, hi, |i| key12(i) < (b, c));
            let e = partition(s, hi, |i| key12(i) <= (b, c));
            (s, e)
        }
    };
    (SegCursor::new(perm, facts, choice, lo, hi), filter)
}

/// The three permutation columns of a lazily opened segment: fifteen
/// budget-managed [`ColSlot`]s over one checksummed [`FrameRegion`], in
/// serialization order (SPO/POS/OSP × `k0,k1,k2,fid`, then the three
/// starts columns). Columns materialize on first touch and may be
/// spilled back to disk by the budget's clock sweep.
#[derive(Debug, Clone)]
pub(crate) struct LazyIndexes {
    region: Arc<FrameRegion>,
    slots: [Arc<ColSlot>; FRAME_COLS],
}

impl LazyIndexes {
    pub(crate) fn new(region: Arc<FrameRegion>, slots: [Arc<ColSlot>; FRAME_COLS]) -> Self {
        Self { region, slots }
    }

    /// Pins column `i` resident. The region was CRC-verified on its
    /// first touch, so a later load failure means the file changed (or
    /// rotted) *under* a live snapshot — there is no corrupt-tolerant
    /// answer at this point, only refusal.
    fn pin(&self, i: usize) -> Arc<ColFrames> {
        self.slots[i].pin().unwrap_or_else(|e| {
            panic!(
                "lazily opened segment failed while re-reading a verified column: {e}; \
                 run prefault() after open to surface cold corruption as a typed error"
            )
        })
    }
}

/// The three compressed permutation indexes of a frozen store, each
/// paired with a per-leading-term offset column.
///
/// Built once from the fact table in `O(n log n)`; answering a pattern
/// with a bound leading term is an `O(1)` bucket lookup plus
/// `O(log b)` fid-probe narrowing for a bucket of size `b`, with an
/// exact count in the same bounds for every shape.
///
/// `Eager` indexes are fully resident (the build side and every write
/// path); `Lazy` indexes page their columns in from a segment file on
/// demand under a [`MemoryBudget`](crate::MemoryBudget).
// The size skew is deliberate: there is one `FrozenIndexes` per open
// segment (not per row), and boxing the eager side would cost an
// indirection on every cursor dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum FrozenIndexes {
    Eager(EagerIndexes),
    Lazy(LazyIndexes),
}

impl Default for FrozenIndexes {
    fn default() -> Self {
        FrozenIndexes::Eager(EagerIndexes::default())
    }
}

impl FrozenIndexes {
    /// See [`EagerIndexes::build`].
    pub(crate) fn build(facts: &[Fact]) -> Self {
        FrozenIndexes::Eager(EagerIndexes::build(facts))
    }

    /// See [`EagerIndexes::build_with_tombstones`].
    pub(crate) fn build_with_tombstones(facts: &[Fact]) -> Self {
        FrozenIndexes::Eager(EagerIndexes::build_with_tombstones(facts))
    }

    /// See [`EagerIndexes::from_fact_perms`].
    pub(crate) fn from_fact_perms(
        facts: &[Fact],
        perms: [Vec<u32>; 3],
        starts: [Vec<u32>; 3],
    ) -> Result<Self, crate::StoreError> {
        EagerIndexes::from_fact_perms(facts, perms, starts).map(FrozenIndexes::Eager)
    }

    /// See [`EagerIndexes::from_frames`].
    pub(crate) fn from_frames(
        facts: &[Fact],
        expected_len: usize,
        is_base: bool,
        perms: [PermFrames; 3],
        starts: [ColFrames; 3],
    ) -> Result<Self, crate::StoreError> {
        EagerIndexes::from_frames(facts, expected_len, is_base, perms, starts)
            .map(FrozenIndexes::Eager)
    }

    fn eager(&self) -> &EagerIndexes {
        match self {
            FrozenIndexes::Eager(ix) => ix,
            FrozenIndexes::Lazy(_) => panic!(
                "operation requires fully resident indexes, but this snapshot was opened \
                 lazily (write paths always construct eager snapshots)"
            ),
        }
    }

    /// The three permutation columns as fact-id arrays (v1 writer).
    /// Panics on lazily opened indexes — serialization always starts
    /// from an eager snapshot.
    pub(crate) fn perm_fact_ids(&self) -> [Vec<u32>; 3] {
        self.eager().perm_fact_ids()
    }

    /// The three offset-bucket arrays (v1 writer). Panics on lazily
    /// opened indexes.
    pub(crate) fn bucket_starts_vec(&self) -> [Vec<u32>; 3] {
        self.eager().bucket_starts_vec()
    }

    /// The fifteen compressed columns in serialization order. Panics on
    /// lazily opened indexes.
    pub(crate) fn frame_cols(&self) -> [&ColFrames; 15] {
        self.eager().frame_cols()
    }

    /// Size and compression accounting. For lazy indexes this comes
    /// from the on-disk layout (no column is faulted in); a damaged
    /// region reports zeros rather than failing a diagnostics call.
    pub(crate) fn stats(&self) -> IndexStats {
        match self {
            FrozenIndexes::Eager(ix) => ix.stats(),
            FrozenIndexes::Lazy(ix) => {
                let mut st = IndexStats::default();
                let Ok(entries) = ix.region.col_len(3) else { return st };
                st.entries = 3 * entries;
                for i in 12..FRAME_COLS {
                    st.bucket_slots += ix.region.col_len(i).unwrap_or(0);
                }
                for i in 0..FRAME_COLS {
                    st.frames += ix.region.col_frames(i).unwrap_or(0);
                    st.compressed_bytes += ix.region.col_bytes(i).unwrap_or(0);
                }
                st.raw_bytes = st.entries * 16 + st.bucket_slots * 4;
                st
            }
        }
    }

    /// Verifies everything a query could later touch, surfacing cold
    /// corruption as a typed error. Eager indexes were validated at
    /// construction; lazy indexes verify the frames region CRC and
    /// walk its layout.
    pub(crate) fn prefault(&self) -> Result<(), StoreError> {
        match self {
            FrozenIndexes::Eager(_) => Ok(()),
            FrozenIndexes::Lazy(ix) => ix.region.prefault(),
        }
    }

    /// Locates the row range answering `pattern` and opens a cursor
    /// over it (see [`locate`]). On lazy indexes this pins the chosen
    /// permutation's four columns plus its starts column, faulting any
    /// that are cold.
    pub(crate) fn cursor<'a>(
        &'a self,
        pattern: &TriplePattern,
        facts: &'a [Fact],
    ) -> (SegCursor<'a>, Option<TriplePattern>) {
        let choice = pattern.choose_index();
        match self {
            FrozenIndexes::Eager(ix) => {
                let (perm, starts, abc) = match choice {
                    IndexChoice::Spo => {
                        (&ix.spo, &ix.spo_starts, (pattern.s, pattern.p, pattern.o))
                    }
                    IndexChoice::Pos => {
                        (&ix.pos, &ix.pos_starts, (pattern.p, pattern.o, pattern.s))
                    }
                    IndexChoice::Osp => {
                        (&ix.osp, &ix.osp_starts, (pattern.o, pattern.s, pattern.p))
                    }
                };
                locate(PermRef::Borrowed(perm), starts, abc, pattern, facts, choice)
            }
            FrozenIndexes::Lazy(ix) => {
                let (first, starts_col, abc) = match choice {
                    IndexChoice::Spo => (0, 12, (pattern.s, pattern.p, pattern.o)),
                    IndexChoice::Pos => (4, 13, (pattern.p, pattern.o, pattern.s)),
                    IndexChoice::Osp => (8, 14, (pattern.o, pattern.s, pattern.p)),
                };
                let perm = PermRef::Pinned {
                    k0: ix.pin(first),
                    k1: ix.pin(first + 1),
                    k2: ix.pin(first + 2),
                    fid: ix.pin(first + 3),
                };
                // The starts pin is dropped after the bucket lookup;
                // the slot keeps it resident until evicted.
                let starts = ix.pin(starts_col);
                locate(perm, &starts, abc, pattern, facts, choice)
            }
        }
    }
}

/// One segment's contribution to a merged scan: a row range of one
/// permutation plus the segment's fact table. Decodes one frame-sized
/// window at a time; ranges at or below [`SMALL_SCAN`] rows fill
/// through the `O(1)` fid column instead, so point lookups never pay a
/// frame decode.
#[derive(Debug, Clone)]
pub(crate) struct SegCursor<'a> {
    perm: PermRef<'a>,
    facts: &'a [Fact],
    choice: IndexChoice,
    /// Next row to yield (absolute).
    pos: usize,
    /// Exclusive end of the selected range (absolute).
    end: usize,
    /// Absolute row of the decoded window's first element.
    win_start: usize,
    k0: Vec<u32>,
    k1: Vec<u32>,
    k2: Vec<u32>,
    fid: Vec<u32>,
}

impl<'a> SegCursor<'a> {
    fn new(
        perm: PermRef<'a>,
        facts: &'a [Fact],
        choice: IndexChoice,
        pos: usize,
        end: usize,
    ) -> Self {
        Self {
            perm,
            facts,
            choice,
            pos,
            end,
            win_start: pos,
            k0: Vec::new(),
            k1: Vec::new(),
            k2: Vec::new(),
            fid: Vec::new(),
        }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn fill(&mut self) {
        self.k0.clear();
        self.k1.clear();
        self.k2.clear();
        self.fid.clear();
        self.win_start = self.pos;
        if self.pos >= self.end {
            return;
        }
        if self.end - self.pos <= SMALL_SCAN {
            // Small range: O(1) fid probes + fact-table derefs beat
            // decoding (possibly varint) key frames.
            let fid_col = self.perm.fid();
            for i in self.pos..self.end {
                let id = fid_col.get(i);
                let (a, b, c) = permute(self.choice, &self.facts[id as usize].triple);
                self.k0.push(a.0);
                self.k1.push(b.0);
                self.k2.push(c.0);
                self.fid.push(id);
            }
            return;
        }
        // Decode to the end of the current frame (keeps every later
        // fill frame-aligned, so varint frames decode exactly once).
        let stop = self.end.min((self.pos / FRAME_ROWS + 1) * FRAME_ROWS);
        self.perm.k0().decode_range(self.pos, stop, &mut self.k0);
        self.perm.k1().decode_range(self.pos, stop, &mut self.k1);
        self.perm.k2().decode_range(self.pos, stop, &mut self.k2);
        self.perm.fid().decode_range(self.pos, stop, &mut self.fid);
    }

    #[inline]
    fn ensure(&mut self) {
        if self.pos >= self.win_start + self.fid.len() {
            self.fill();
        }
    }

    #[inline]
    fn idx(&self) -> usize {
        self.pos - self.win_start
    }

    pub(crate) fn peek_key(&mut self) -> Option<Key> {
        if self.pos >= self.end {
            return None;
        }
        self.ensure();
        let i = self.idx();
        Some((TermId(self.k0[i]), TermId(self.k1[i]), TermId(self.k2[i])))
    }

    pub(crate) fn pop(&mut self) -> Option<(Key, &'a Fact)> {
        let key = self.peek_key()?;
        let facts: &'a [Fact] = self.facts;
        let fact = &facts[self.fid[self.idx()] as usize];
        self.pos += 1;
        Some((key, fact))
    }

    pub(crate) fn pop_key(&mut self) -> Option<Key> {
        let key = self.peek_key()?;
        self.pos += 1;
        Some(key)
    }

    /// The decoded key/fid windows at the cursor head (all four the
    /// same length; empty iff exhausted). Consume with
    /// [`skip`](Self::skip).
    pub(crate) fn windows(&mut self) -> (&[u32], &[u32], &[u32], &[u32]) {
        if self.pos >= self.end {
            return (&[], &[], &[], &[]);
        }
        self.ensure();
        let i = self.idx();
        (&self.k0[i..], &self.k1[i..], &self.k2[i..], &self.fid[i..])
    }

    pub(crate) fn skip(&mut self, n: usize) {
        debug_assert!(self.pos + n <= self.end);
        self.pos += n;
    }
}

/// Streaming cursor over the live facts matching one [`TriplePattern`],
/// in permutation-index order. Yields `&Fact` without allocating.
///
/// For a monolithic view this walks one cursor. For a
/// [`SegmentedSnapshot`](crate::SegmentedSnapshot) it k-way merges the
/// base cursor with one cursor per delta segment: at each step the
/// minimum key across cursor heads is taken, every cursor sitting on
/// that key is advanced (dedup), and the *newest* holder's fact wins —
/// so a delta's evidence-merge shadows the base and a delta tombstone
/// (retracted fact, indexed only in deltas) suppresses the key
/// entirely.
///
/// Returned by [`KbRead::matching_iter`].
#[derive(Debug, Clone)]
pub struct MatchIter<'a> {
    /// Base (oldest) segment cursor.
    head: SegCursor<'a>,
    /// Delta cursors, oldest → newest. Empty for monolithic views,
    /// which keep the single-cursor fast path.
    deltas: Vec<SegCursor<'a>>,
    filter: Option<TriplePattern>,
}

impl<'a> MatchIter<'a> {
    pub(crate) fn new(head: SegCursor<'a>, filter: Option<TriplePattern>) -> Self {
        Self { head, deltas: Vec::new(), filter }
    }

    pub(crate) fn with_deltas(
        head: SegCursor<'a>,
        deltas: Vec<SegCursor<'a>>,
        filter: Option<TriplePattern>,
    ) -> Self {
        Self { head, deltas, filter }
    }

    /// Consumes the cursor and returns the exact number of remaining
    /// matches — `O(1)` for every monolithic shape except `s?o`;
    /// segmented views must walk the merge (shadowing and tombstones
    /// make the count data-dependent).
    pub fn exact_count(self) -> usize {
        if self.deltas.is_empty() && self.filter.is_none() {
            return self.head.remaining();
        }
        self.count()
    }

    /// The k-way merge step: yields the authoritative fact for the next
    /// smallest key across all segment cursors, skipping tombstones.
    /// Only called on segmented views (`deltas` non-empty).
    fn merge_next(&mut self) -> Option<&'a Fact> {
        loop {
            let mut min: Option<Key> = self.head.peek_key();
            for c in self.deltas.iter_mut() {
                if let Some(k) = c.peek_key() {
                    if min.is_none_or(|m| k < m) {
                        min = Some(k);
                    }
                }
            }
            let min = min?;
            // Advance every cursor sitting on the key; cursors run
            // oldest → newest, so the last holder is authoritative.
            let mut winner: Option<&'a Fact> = None;
            if self.head.peek_key() == Some(min) {
                winner = Some(self.head.pop().expect("head holds the min key").1);
            }
            for c in self.deltas.iter_mut() {
                if c.peek_key() == Some(min) {
                    winner = Some(c.pop().expect("delta holds the min key").1);
                }
            }
            let fact = winner.expect("the min key has at least one holder");
            // A retracted winner is a tombstone: the key is suppressed.
            if !fact.is_retracted() {
                return Some(fact);
            }
        }
    }
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        if self.deltas.is_empty() {
            while let Some((_, fact)) = self.head.pop() {
                match self.filter {
                    None => return Some(fact),
                    Some(p) if p.matches(&fact.triple) => return Some(fact),
                    Some(_) => {}
                }
            }
            return None;
        }
        while let Some(fact) = self.merge_next() {
            match self.filter {
                None => return Some(fact),
                Some(p) if p.matches(&fact.triple) => return Some(fact),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.head.remaining() + self.deltas.iter().map(|c| c.remaining()).sum::<usize>();
        if self.deltas.is_empty() && self.filter.is_none() {
            (n, Some(n))
        } else {
            // Post-filtering, shadowing and tombstones can only shrink.
            (0, Some(n))
        }
    }
}

/// Streaming cursor over matching triples (projection of
/// [`MatchIter`]). Returned by [`KbRead::triples_iter`].
///
/// On a monolithic view each triple is reconstructed by un-permuting
/// the decoded index key — the fact table is never touched, so a
/// triple projection stays inside the decoded frame windows. A
/// segmented view must consult the winning fact anyway (tombstone
/// check), so it projects the merged fact's triple.
#[derive(Debug, Clone)]
pub struct TriplesIter<'a>(pub(crate) MatchIter<'a>);

impl Iterator for TriplesIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        let it = &mut self.0;
        if it.deltas.is_empty() {
            let choice = it.head.choice;
            while let Some(k) = it.head.pop_key() {
                let t = unpermute(choice, k);
                match it.filter {
                    None => return Some(t),
                    Some(p) if p.matches(&t) => return Some(t),
                    Some(_) => {}
                }
            }
            return None;
        }
        while let Some(fact) = it.merge_next() {
            match it.filter {
                None => return Some(fact.triple),
                Some(p) if p.matches(&fact.triple) => return Some(fact.triple),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// A columnar batch of matching triples: three parallel `TermId`
/// columns, at most [`BATCH_ROWS`] rows. The unit of vectorized
/// execution — filled by [`MatchBatches`] and consumed by the query
/// engine's batch operators.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TripleBatch {
    /// Subject column.
    pub s: Vec<TermId>,
    /// Predicate column.
    pub p: Vec<TermId>,
    /// Object column.
    pub o: Vec<TermId>,
}

impl TripleBatch {
    /// An empty batch with [`BATCH_ROWS`] capacity per column.
    pub fn new() -> Self {
        Self {
            s: Vec::with_capacity(BATCH_ROWS),
            p: Vec::with_capacity(BATCH_ROWS),
            o: Vec::with_capacity(BATCH_ROWS),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Drops all rows, keeping capacity.
    pub fn clear(&mut self) {
        self.s.clear();
        self.p.clear();
        self.o.clear();
    }

    /// Appends one triple.
    pub fn push(&mut self, t: Triple) {
        self.s.push(t.s);
        self.p.push(t.p);
        self.o.push(t.o);
    }

    /// The triple at row `i`.
    pub fn row(&self, i: usize) -> Triple {
        Triple::new(self.s[i], self.p[i], self.o[i])
    }
}

/// Vectorized face of [`MatchIter`]: fills columnar [`TripleBatch`]es
/// of up to [`BATCH_ROWS`] rows. On the monolithic unfiltered path the
/// decoded frame windows are spliced straight into the output columns —
/// no per-row iterator step, no fact-table deref. Segmented or
/// filtered scans fall back to the (still correct) row-at-a-time merge.
///
/// Returned by
/// [`KbReadBatch::matching_batches`](crate::read::KbReadBatch::matching_batches).
#[derive(Debug, Clone)]
pub struct MatchBatches<'a> {
    inner: MatchIter<'a>,
}

impl<'a> MatchBatches<'a> {
    pub(crate) fn new(inner: MatchIter<'a>) -> Self {
        Self { inner }
    }

    /// Exact remaining rows where the underlying scan knows them
    /// (monolithic unfiltered), else an upper bound.
    pub fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    /// Fills `out` (cleared first) with the next batch. Returns `false`
    /// when the scan is exhausted and no rows were produced.
    pub fn next_batch(&mut self, out: &mut TripleBatch) -> bool {
        out.clear();
        let it = &mut self.inner;
        if it.deltas.is_empty() && it.filter.is_none() {
            // Columnar fast path: splice decoded windows.
            let choice = it.head.choice;
            while out.len() < BATCH_ROWS {
                let take = {
                    let (k0, k1, k2, _) = it.head.windows();
                    if k0.is_empty() {
                        break;
                    }
                    let take = k0.len().min(BATCH_ROWS - out.len());
                    let (s, p, o) = match choice {
                        IndexChoice::Spo => (k0, k1, k2),
                        IndexChoice::Pos => (k2, k0, k1),
                        IndexChoice::Osp => (k1, k2, k0),
                    };
                    out.s.extend(s[..take].iter().map(|&v| TermId(v)));
                    out.p.extend(p[..take].iter().map(|&v| TermId(v)));
                    out.o.extend(o[..take].iter().map(|&v| TermId(v)));
                    take
                };
                it.head.skip(take);
            }
        } else {
            while out.len() < BATCH_ROWS {
                match it.next() {
                    Some(f) => out.push(f.triple),
                    None => break,
                }
            }
        }
        !out.is_empty()
    }
}

/// Streaming time-travel cursor: matching facts valid at a given
/// [`TimePoint`] (timeless facts always qualify). Returned by
/// [`KbRead::matching_at_iter`].
#[derive(Debug, Clone)]
pub struct MatchingAtIter<'a> {
    pub(crate) inner: MatchIter<'a>,
    pub(crate) point: TimePoint,
}

impl<'a> Iterator for MatchingAtIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        let point = self.point;
        self.inner.by_ref().find(|f| f.span.is_none_or(|sp| sp.contains(&point)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Streaming cursor over the live facts of a view in fact-table
/// (insertion) order — base segment first, then each delta in stack
/// order. Returned by [`KbRead::facts`]; this is the cheap path for
/// whole-KB aggregation (`stats`, `predicate_histogram`) that needs no
/// particular order.
///
/// Retracted facts are skipped, and a fact whose triple reappears in a
/// *newer* overlay segment is skipped too — the newer segment re-yields
/// its merged (or tombstoned) version, so each triple surfaces exactly
/// once.
#[derive(Debug, Clone)]
pub struct LiveFactsIter<'a> {
    cur: std::slice::Iter<'a, Fact>,
    /// Segments stacked above `cur`, oldest → newest: each shadows the
    /// current slice and then streams its own facts in turn.
    overlay: &'a [Arc<DeltaSegment>],
    /// Later `(base, overlay)` groups, streamed after the current group
    /// drains. Each group is an independent shadowing scope: a
    /// partitioned view's partitions hold disjoint triple sets, so a
    /// group's facts can never be shadowed by another group's overlay.
    groups: std::vec::IntoIter<(&'a [Fact], &'a [Arc<DeltaSegment>])>,
}

impl<'a> LiveFactsIter<'a> {
    pub(crate) fn new(facts: &'a [Fact]) -> Self {
        Self { cur: facts.iter(), overlay: &[], groups: Vec::new().into_iter() }
    }

    pub(crate) fn segmented(base: &'a [Fact], overlay: &'a [Arc<DeltaSegment>]) -> Self {
        Self { cur: base.iter(), overlay, groups: Vec::new().into_iter() }
    }

    /// Streams several independent segment groups back to back — one
    /// per partition of a
    /// [`PartitionedView`](crate::partition::PartitionedView).
    pub(crate) fn grouped(groups: Vec<(&'a [Fact], &'a [Arc<DeltaSegment>])>) -> Self {
        let mut groups = groups.into_iter();
        let (base, overlay) = groups.next().unwrap_or((&[], &[]));
        Self { cur: base.iter(), overlay, groups }
    }
}

impl<'a> Iterator for LiveFactsIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        loop {
            for f in self.cur.by_ref() {
                if f.is_retracted() {
                    continue;
                }
                if self.overlay.iter().any(|d| d.contains_triple(&f.triple)) {
                    continue;
                }
                return Some(f);
            }
            if let Some((next_seg, rest)) = self.overlay.split_first() {
                self.cur = next_seg.fact_table().iter();
                self.overlay = rest;
                continue;
            }
            let (base, overlay) = self.groups.next()?;
            self.cur = base.iter();
            self.overlay = overlay;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let pending: usize = self.overlay.iter().map(|d| d.fact_table().len()).sum();
        let grouped: usize = self
            .groups
            .as_slice()
            .iter()
            .map(|(base, overlay)| {
                base.len() + overlay.iter().map(|d| d.fact_table().len()).sum::<usize>()
            })
            .sum();
        (0, Some(self.cur.len() + pending + grouped))
    }
}

/// An immutable, query-optimized view of a knowledge base.
///
/// Produced by [`KbBuilder::freeze`](crate::KbBuilder::freeze) (moves
/// the builder's data, sorts the permutation arrays once) or
/// [`KnowledgeBase::snapshot`](crate::KnowledgeBase::snapshot)
/// (clones). A snapshot is `Send + Sync` and cheap to share:
/// [`into_shared`](Self::into_shared) wraps it in an [`Arc`] so
/// read-heavy consumers (NED, analytics, serving) can query it from
/// many threads with zero coordination.
///
/// All queries go through the [`KbRead`] trait.
#[derive(Debug, Clone)]
pub struct KbSnapshot {
    base: BaseState,
    pub(crate) indexes: FrozenIndexes,
}

/// The non-index regions of a snapshot, fully decoded: the fact table
/// with its dictionary/source universe plus the ontology-level stores.
#[derive(Debug, Clone)]
pub(crate) struct EagerBase {
    pub(crate) core: KbCore,
    pub(crate) taxonomy: Taxonomy,
    pub(crate) sameas: SameAsStore,
    pub(crate) labels: LabelStore,
}

/// A snapshot's base regions before they have been decoded: a `pread`
/// source plus the parsed region table. The first access that needs the
/// fact table or dictionary faults everything in at once (base regions
/// are interdependent — fact ids index the dictionary), caching either
/// the decoded [`EagerBase`] or the typed corruption error.
#[derive(Debug)]
pub(crate) struct LazyBase {
    source: Arc<SegmentSource>,
    entries: Vec<RegionEntry>,
    cell: OnceLock<Result<Box<EagerBase>, StoreError>>,
    /// `(term_count, source_count)` read from the regions' count
    /// prefixes — four-byte reads that keep delta stacking checks from
    /// faulting the whole core.
    counts: OnceLock<(usize, usize)>,
}

impl LazyBase {
    pub(crate) fn new(source: Arc<SegmentSource>, entries: Vec<RegionEntry>) -> Self {
        Self { source, entries, cell: OnceLock::new(), counts: OnceLock::new() }
    }

    fn fault(&self) -> Result<&EagerBase, StoreError> {
        self.cell
            .get_or_init(|| {
                crate::segment_io::fault_base(&self.source, &self.entries).map(Box::new)
            })
            .as_ref()
            .map(|b| &**b)
            .map_err(Clone::clone)
    }

    /// `(term_count, source_count)` without decoding the core: the
    /// dictionary and source regions are count-prefixed. The prefix is
    /// not CRC-verified here (that happens when the region faults); a
    /// corrupted count surfaces as a typed stacking or prefault error,
    /// never silent data.
    fn counts(&self) -> (usize, usize) {
        *self.counts.get_or_init(|| {
            if let Some(Ok(b)) = self.cell.get() {
                return (b.core.dict.len(), b.core.sources.len());
            }
            (
                crate::segment_io::region_count_prefix(
                    &self.source,
                    &self.entries,
                    crate::error::SegmentRegion::Dictionary,
                ),
                crate::segment_io::region_count_prefix(
                    &self.source,
                    &self.entries,
                    crate::error::SegmentRegion::Sources,
                ),
            )
        })
    }
}

#[derive(Debug, Clone)]
enum BaseState {
    Eager(Box<EagerBase>),
    Lazy(Arc<LazyBase>),
}

impl KbSnapshot {
    pub(crate) fn from_parts(
        core: KbCore,
        taxonomy: Taxonomy,
        sameas: SameAsStore,
        labels: LabelStore,
        indexes: FrozenIndexes,
    ) -> Self {
        let obs = kb_obs::global();
        obs.gauge("store.snapshot.facts").set(core.live as i64);
        obs.gauge("store.snapshot.terms").set(core.dict.len() as i64);
        let st = indexes.stats();
        obs.gauge("store.index_bytes").set(st.compressed_bytes as i64);
        obs.gauge("store.frames.compressed_bytes").set(st.compressed_bytes as i64);
        obs.gauge("store.frames.raw_bytes").set(st.raw_bytes as i64);
        Self {
            base: BaseState::Eager(Box::new(EagerBase { core, taxonomy, sameas, labels })),
            indexes,
        }
    }

    /// A lazily opened snapshot: no region beyond the header has been
    /// read, decoded, or checksummed yet. Gauges that need decoded data
    /// are deliberately not touched — open cost must stay independent
    /// of KB size.
    pub(crate) fn from_lazy(base: Arc<LazyBase>, indexes: FrozenIndexes) -> Self {
        Self { base: BaseState::Lazy(base), indexes }
    }

    /// The decoded base regions, faulting them in on a lazy snapshot.
    /// Corruption is a typed error here; use [`prefault`](Self::prefault)
    /// at open time to avoid the panicking accessors.
    pub(crate) fn try_base(&self) -> Result<&EagerBase, StoreError> {
        match &self.base {
            BaseState::Eager(b) => Ok(b),
            BaseState::Lazy(l) => l.fault(),
        }
    }

    fn base_ref(&self) -> &EagerBase {
        self.try_base().unwrap_or_else(|e| {
            panic!(
                "lazily opened segment's base regions failed to load: {e}; \
                 call prefault() after open to surface this as a typed error"
            )
        })
    }

    /// Faults and verifies every lazily loaded region — base regions
    /// decode fully, the frames region is CRC-checked and its layout
    /// walked. After `Ok(())`, queries on this snapshot cannot hit
    /// cold-corruption panics (only live file rot can).
    pub fn prefault(&self) -> Result<(), StoreError> {
        self.try_base()?;
        self.indexes.prefault()
    }

    pub(crate) fn core(&self) -> &KbCore {
        &self.base_ref().core
    }

    pub(crate) fn taxonomy(&self) -> &Taxonomy {
        &self.base_ref().taxonomy
    }

    pub(crate) fn sameas(&self) -> &SameAsStore {
        &self.base_ref().sameas
    }

    pub(crate) fn labels(&self) -> &LabelStore {
        &self.base_ref().labels
    }

    pub(crate) fn indexes(&self) -> &FrozenIndexes {
        &self.indexes
    }

    /// Wraps the snapshot in an [`Arc`] for sharing across threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The term dictionary (a snapshot holds exactly one; segmented
    /// views don't, which is why [`KbRead`] exposes term access as
    /// methods instead).
    pub fn dictionary(&self) -> &Dictionary {
        &self.core().dict
    }

    /// All registered sources in id order.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.core().sources.iter().enumerate().map(|(i, s)| (SourceId(i as u32), s.as_str()))
    }

    /// Number of registered provenance sources. Cheap on a lazy
    /// snapshot (count-prefix read, no core fault).
    pub(crate) fn source_count(&self) -> usize {
        match &self.base {
            BaseState::Eager(b) => b.core.sources.len(),
            BaseState::Lazy(l) => l.counts().1,
        }
    }

    /// Size and compression accounting for the permutation indexes.
    pub fn index_stats(&self) -> IndexStats {
        self.indexes.stats()
    }
}

impl KbRead for KbSnapshot {
    fn term(&self, term: &str) -> Option<TermId> {
        self.core().dict.get(term)
    }

    fn resolve(&self, id: TermId) -> Option<&str> {
        self.core().dict.resolve(id)
    }

    /// Cheap on a lazy snapshot: served from the dictionary region's
    /// count prefix, so delta-stacking checks at open never fault the
    /// core.
    fn term_count(&self) -> usize {
        match &self.base {
            BaseState::Eager(b) => b.core.dict.len(),
            BaseState::Lazy(l) => l.counts().0,
        }
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.base_ref().taxonomy
    }

    fn sameas(&self) -> &SameAsStore {
        &self.base_ref().sameas
    }

    fn labels(&self) -> &LabelStore {
        &self.base_ref().labels
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        self.core().source_name(id)
    }

    fn fact(&self, id: FactId) -> Option<&Fact> {
        self.core().facts.get(id.index())
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.core().fact_for(t)
    }

    fn len(&self) -> usize {
        self.core().live
    }

    fn facts(&self) -> LiveFactsIter<'_> {
        LiveFactsIter::new(&self.core().facts)
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let (cur, filter) = self.indexes.cursor(pattern, &self.core().facts);
        MatchIter::new(cur, filter)
    }

    fn prefault(&self) -> Result<(), StoreError> {
        KbSnapshot::prefault(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::KbReadBatch;
    use crate::KbBuilder;

    fn snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        b.freeze()
    }

    #[test]
    fn every_shape_scans_one_contiguous_range() {
        let s = snap();
        let jobs = s.term("Steve_Jobs").unwrap();
        let founded = s.term("founded").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        assert_eq!(s.matching_iter(&TriplePattern::with_s(jobs)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_p(founded)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_o(apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_sp(jobs, founded)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::with_po(founded, apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_so(jobs, apple)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 4);
    }

    #[test]
    fn exact_count_is_constant_time_for_prefix_shapes() {
        let s = snap();
        let founded = s.term("founded").unwrap();
        let it = s.matching_iter(&TriplePattern::with_p(founded));
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.exact_count(), 2);
        // s?o post-filters, so its lower bound is zero.
        let jobs = s.term("Steve_Jobs").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        let it = s.matching_iter(&TriplePattern::with_so(jobs, apple));
        assert_eq!(it.size_hint().0, 0);
        assert_eq!(it.exact_count(), 1);
    }

    #[test]
    fn retracted_facts_never_enter_the_indexes() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "b");
        b.assert_str("c", "r", "d");
        let t = Triple::new(b.term("a").unwrap(), b.term("r").unwrap(), b.term("b").unwrap());
        b.retract(t);
        let s = b.freeze();
        assert_eq!(s.len(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 1);
        assert!(!s.contains(&t));
        // The retracted fact is still addressable by id (provenance).
        assert!(s.fact(FactId(0)).unwrap().is_retracted());
    }

    #[test]
    fn snapshot_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KbSnapshot>();
        let shared = snap().into_shared();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || s.matching_iter(&TriplePattern::any()).count())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }

    /// A KB large enough to span many compression frames, with skew so
    /// some buckets are huge and some tiny.
    fn big_snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        // (i % 700, i % 5, (i / 5) % 900) is injective below
        // lcm(700, 5 · 900) = 31_500, so all 20_000 facts are distinct.
        for i in 0u32..20_000 {
            b.assert_str(
                &format!("e{}", i % 700),
                &format!("r{}", i % 5),
                &format!("e{}", (i / 5) % 900),
            );
        }
        let s = b.freeze();
        assert_eq!(s.len(), 20_000);
        s
    }

    #[test]
    fn batches_agree_with_tuple_iteration_on_every_shape() {
        let s = big_snap();
        // Anchor the bound shapes on a real triple so every pattern has
        // at least one match.
        let t = s.triples_iter(&TriplePattern::any()).nth(37).unwrap();
        let patterns = [
            TriplePattern::any(),
            TriplePattern::with_s(t.s),
            TriplePattern::with_p(t.p),
            TriplePattern::with_o(t.o),
            TriplePattern::with_sp(t.s, t.p),
            TriplePattern::with_po(t.p, t.o),
            TriplePattern::with_so(t.s, t.o),
            TriplePattern::exact(t),
        ];
        for pat in &patterns {
            assert!(s.triples_iter(pat).next().is_some(), "anchor left {pat:?} empty");
            let tuple: Vec<Triple> = s.triples_iter(pat).collect();
            let mut batch = Vec::new();
            let mut mb = s.matching_batches(pat);
            let mut buf = TripleBatch::new();
            while mb.next_batch(&mut buf) {
                assert!(buf.len() <= BATCH_ROWS);
                for i in 0..buf.len() {
                    batch.push(buf.row(i));
                }
            }
            assert_eq!(batch, tuple, "pattern {pat:?}");
        }
    }

    #[test]
    fn index_stats_show_real_compression() {
        let s = big_snap();
        let st = s.index_stats();
        assert_eq!(st.entries, 3 * 20_000);
        assert!(st.frames > 3, "multi-frame columns expected");
        assert!(
            st.saved_ratio() >= 0.30,
            "expected ≥30% savings, got {:.1}% ({} of {} bytes)",
            st.saved_ratio() * 100.0,
            st.compressed_bytes,
            st.raw_bytes
        );
    }
}
