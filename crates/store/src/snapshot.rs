//! The read side of the storage engine: `FrozenIndexes` (sorted-array
//! SPO/POS/OSP permutations answered by binary-search range scans), the
//! zero-alloc query iterators, and the immutable, `Arc`-shareable
//! [`KbSnapshot`].
//!
//! Index layout: each permutation is a `Vec<((TermId, TermId, TermId),
//! FactId)>` sorted by the permuted key, paired with a per-leading-term
//! offset array (`starts`). A [`TriplePattern`] with a bound leading
//! term jumps straight to its bucket — `starts[t] .. starts[t + 1]` —
//! in `O(1)`; any remaining bound components narrow the bucket with
//! `partition_point` searches that touch only the (cache-resident)
//! bucket instead of the whole array (see
//! [`TriplePattern::choose_index`] for the shape→index mapping).
//! Iteration then walks the slice and resolves each `FactId` straight
//! into the fact table — no hash lookups, no per-call `Vec`.

use std::sync::Arc;

use crate::builder::KbCore;
use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::{IndexChoice, TriplePattern};
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimePoint;
use crate::Dictionary;

type Key = (TermId, TermId, TermId);

/// The three sorted permutation arrays of a frozen store, each paired
/// with a per-leading-term offset array.
///
/// Built once from the fact table in `O(n log n)`; answering a pattern
/// with a bound leading term is an `O(1)` bucket lookup plus
/// `O(log b + k)` for a bucket of size `b` and `k` results, with an
/// exact count in the same bounds for every shape.
#[derive(Debug, Default, Clone)]
pub(crate) struct FrozenIndexes {
    spo: Vec<(Key, FactId)>,
    pos: Vec<(Key, FactId)>,
    osp: Vec<(Key, FactId)>,
    /// `spo[spo_starts[s] .. spo_starts[s + 1]]` is subject `s`'s bucket.
    spo_starts: Vec<u32>,
    /// `pos[pos_starts[p] .. pos_starts[p + 1]]` is predicate `p`'s bucket.
    pos_starts: Vec<u32>,
    /// `osp[osp_starts[o] .. osp_starts[o + 1]]` is object `o`'s bucket.
    osp_starts: Vec<u32>,
}

/// Prefix-sum offsets over the leading term of a sorted permutation:
/// `starts[t] .. starts[t + 1]` brackets term `t`'s entries. Terms past
/// the largest seen leading id have no slot (callers treat out-of-range
/// as empty).
fn starts_of(entries: &[(Key, FactId)]) -> Vec<u32> {
    let top = entries.last().map_or(0, |&((a, _, _), _)| a.index() + 1);
    let mut starts = vec![0u32; top + 1];
    for &((a, _, _), _) in entries {
        starts[a.index() + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    starts
}

impl FrozenIndexes {
    /// Indexes every live fact in `facts` (retracted entries are
    /// skipped, so they never appear in query results).
    pub(crate) fn build(facts: &[Fact]) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.snapshot.freeze_us");
        let mut spo = Vec::with_capacity(facts.len());
        let mut pos = Vec::with_capacity(facts.len());
        let mut osp = Vec::with_capacity(facts.len());
        for (i, f) in facts.iter().enumerate() {
            if f.is_retracted() {
                continue;
            }
            let id = FactId(i as u32);
            let t = f.triple;
            spo.push((t.spo_key(), id));
            pos.push((t.pos_key(), id));
            osp.push((t.osp_key(), id));
        }
        spo.sort_unstable();
        pos.sort_unstable();
        osp.sort_unstable();
        let spo_starts = starts_of(&spo);
        let pos_starts = starts_of(&pos);
        let osp_starts = starts_of(&osp);
        span.stop();
        obs.counter("store.snapshot.freezes").inc();
        // Three permutation arrays plus their offset buckets.
        obs.gauge("store.index.entries").set((3 * spo.len()) as i64);
        obs.gauge("store.index.bucket_slots").set((3 * spo_starts.len()) as i64);
        Self { spo, pos, osp, spo_starts, pos_starts, osp_starts }
    }

    /// Locates the contiguous slice answering `pattern` plus the
    /// post-filter kept for the `s?o` shape (its slice is already
    /// exact; the filter only preserves the conservative size hint).
    pub(crate) fn select<'a>(
        &'a self,
        pattern: &TriplePattern,
    ) -> (&'a [(Key, FactId)], Option<TriplePattern>) {
        let choice = pattern.choose_index();
        let (index, starts, (a, b, c)) = match choice {
            IndexChoice::Spo => (&self.spo, &self.spo_starts, (pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, &self.pos_starts, (pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, &self.osp_starts, (pattern.o, pattern.s, pattern.p)),
        };
        let filter = (pattern.bound_count() == 2 && pattern.p.is_none()).then_some(*pattern);
        // Leading term bound → O(1) bucket lookup via the offset array.
        // (`choose_index` only leaves the leading term unbound for the
        // all-wildcard pattern, which scans the whole index.)
        let slice: &[(Key, FactId)] = match a {
            None => index,
            Some(a) => {
                let i = a.index();
                if i + 1 >= starts.len() {
                    return (&index[0..0], filter);
                }
                &index[starts[i] as usize..starts[i + 1] as usize]
            }
        };
        // Remaining bound components narrow within the bucket.
        let slice = match (b, c) {
            (None, _) => slice,
            (Some(b), None) => {
                let start = slice.partition_point(|&((_, kb, _), _)| kb < b);
                let end = start + slice[start..].partition_point(|&((_, kb, _), _)| kb <= b);
                &slice[start..end]
            }
            (Some(b), Some(c)) => {
                let start = slice.partition_point(|&((_, kb, kc), _)| (kb, kc) < (b, c));
                let end =
                    start + slice[start..].partition_point(|&((_, kb, kc), _)| (kb, kc) <= (b, c));
                &slice[start..end]
            }
        };
        (slice, filter)
    }
}

/// Streaming cursor over the live facts matching one [`TriplePattern`],
/// in permutation-index order. Yields `&Fact` without allocating.
///
/// Returned by [`KbRead::matching_iter`].
#[derive(Debug, Clone)]
pub struct MatchIter<'a> {
    entries: std::slice::Iter<'a, (Key, FactId)>,
    facts: &'a [Fact],
    filter: Option<TriplePattern>,
    /// Which permutation the keys come from (lets [`TriplesIter`]
    /// reconstruct triples from keys without touching the fact table).
    choice: IndexChoice,
}

impl<'a> MatchIter<'a> {
    pub(crate) fn new(
        entries: &'a [(Key, FactId)],
        facts: &'a [Fact],
        filter: Option<TriplePattern>,
        choice: IndexChoice,
    ) -> Self {
        Self { entries: entries.iter(), facts, filter, choice }
    }

    /// Consumes the cursor and returns the exact number of remaining
    /// matches — `O(1)` for every shape except `s?o`, which must walk
    /// its post-filtered range.
    pub fn exact_count(self) -> usize {
        match self.filter {
            None => self.entries.len(),
            Some(_) => self.count(),
        }
    }
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        for &(_, id) in self.entries.by_ref() {
            let fact = &self.facts[id.index()];
            match self.filter {
                None => return Some(fact),
                Some(p) if p.matches(&fact.triple) => return Some(fact),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.entries.len();
        if self.filter.is_none() {
            (n, Some(n))
        } else {
            (0, Some(n))
        }
    }
}

/// Streaming cursor over matching triples (projection of
/// [`MatchIter`]). Returned by [`KbRead::triples_iter`].
///
/// Reconstructs each triple by un-permuting the index key — the fact
/// table is never touched, so a triple projection stays inside the
/// contiguous index slice.
#[derive(Debug, Clone)]
pub struct TriplesIter<'a>(pub(crate) MatchIter<'a>);

/// Inverts a permuted index key back into the `(s, p, o)` triple.
fn unpermute(choice: IndexChoice, k: Key) -> Triple {
    match choice {
        IndexChoice::Spo => Triple::new(k.0, k.1, k.2),
        IndexChoice::Pos => Triple::new(k.2, k.0, k.1),
        IndexChoice::Osp => Triple::new(k.1, k.2, k.0),
    }
}

impl Iterator for TriplesIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        let it = &mut self.0;
        for &(k, _) in it.entries.by_ref() {
            let t = unpermute(it.choice, k);
            match it.filter {
                None => return Some(t),
                Some(p) if p.matches(&t) => return Some(t),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Streaming time-travel cursor: matching facts valid at a given
/// [`TimePoint`] (timeless facts always qualify). Returned by
/// [`KbRead::matching_at_iter`].
#[derive(Debug, Clone)]
pub struct MatchingAtIter<'a> {
    pub(crate) inner: MatchIter<'a>,
    pub(crate) point: TimePoint,
}

impl<'a> Iterator for MatchingAtIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        let point = self.point;
        self.inner.by_ref().find(|f| f.span.is_none_or(|sp| sp.contains(&point)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Streaming cursor over the live facts of the fact table in insertion
/// order (retracted entries skipped). Returned by [`KbRead::facts`];
/// this is the cheap path for whole-KB aggregation (`stats`,
/// `predicate_histogram`) that needs no particular order.
#[derive(Debug, Clone)]
pub struct LiveFactsIter<'a>(pub(crate) std::slice::Iter<'a, Fact>);

impl<'a> Iterator for LiveFactsIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        self.0.by_ref().find(|f| !f.is_retracted())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.0.len()))
    }
}

/// An immutable, query-optimized view of a knowledge base.
///
/// Produced by [`KbBuilder::freeze`](crate::KbBuilder::freeze) (moves
/// the builder's data, sorts the permutation arrays once) or
/// [`KnowledgeBase::snapshot`](crate::KnowledgeBase::snapshot)
/// (clones). A snapshot is `Send + Sync` and cheap to share:
/// [`into_shared`](Self::into_shared) wraps it in an [`Arc`] so
/// read-heavy consumers (NED, analytics, serving) can query it from
/// many threads with zero coordination.
///
/// All queries go through the [`KbRead`] trait.
#[derive(Debug, Clone)]
pub struct KbSnapshot {
    core: KbCore,
    taxonomy: Taxonomy,
    sameas: SameAsStore,
    labels: LabelStore,
    indexes: FrozenIndexes,
    live: usize,
}

impl KbSnapshot {
    pub(crate) fn from_parts(
        core: KbCore,
        taxonomy: Taxonomy,
        sameas: SameAsStore,
        labels: LabelStore,
        indexes: FrozenIndexes,
    ) -> Self {
        let live = core.live;
        let obs = kb_obs::global();
        obs.gauge("store.snapshot.facts").set(live as i64);
        obs.gauge("store.snapshot.terms").set(core.dict.len() as i64);
        Self { core, taxonomy, sameas, labels, indexes, live }
    }

    /// Wraps the snapshot in an [`Arc`] for sharing across threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// All registered sources in id order.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.core.sources.iter().enumerate().map(|(i, s)| (SourceId(i as u32), s.as_str()))
    }
}

impl KbRead for KbSnapshot {
    fn dictionary(&self) -> &Dictionary {
        &self.core.dict
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    fn sameas(&self) -> &SameAsStore {
        &self.sameas
    }

    fn labels(&self) -> &LabelStore {
        &self.labels
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        self.core.source_name(id)
    }

    fn fact(&self, id: FactId) -> Option<&Fact> {
        self.core.facts.get(id.index())
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.core.fact_for(t)
    }

    fn fact_table(&self) -> &[Fact] {
        &self.core.facts
    }

    fn len(&self) -> usize {
        self.live
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let (entries, filter) = self.indexes.select(pattern);
        MatchIter::new(entries, &self.core.facts, filter, pattern.choose_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbBuilder;

    fn snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        b.freeze()
    }

    #[test]
    fn every_shape_scans_one_contiguous_range() {
        let s = snap();
        let jobs = s.term("Steve_Jobs").unwrap();
        let founded = s.term("founded").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        assert_eq!(s.matching_iter(&TriplePattern::with_s(jobs)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_p(founded)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_o(apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_sp(jobs, founded)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::with_po(founded, apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_so(jobs, apple)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 4);
    }

    #[test]
    fn exact_count_is_constant_time_for_prefix_shapes() {
        let s = snap();
        let founded = s.term("founded").unwrap();
        let it = s.matching_iter(&TriplePattern::with_p(founded));
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.exact_count(), 2);
        // s?o post-filters, so its lower bound is zero.
        let jobs = s.term("Steve_Jobs").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        let it = s.matching_iter(&TriplePattern::with_so(jobs, apple));
        assert_eq!(it.size_hint().0, 0);
        assert_eq!(it.exact_count(), 1);
    }

    #[test]
    fn retracted_facts_never_enter_the_indexes() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "b");
        b.assert_str("c", "r", "d");
        let t = Triple::new(b.term("a").unwrap(), b.term("r").unwrap(), b.term("b").unwrap());
        b.retract(t);
        let s = b.freeze();
        assert_eq!(s.len(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 1);
        assert!(!s.contains(&t));
        // The retracted fact is still addressable by id (provenance).
        assert!(s.fact(FactId(0)).unwrap().is_retracted());
    }

    #[test]
    fn snapshot_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KbSnapshot>();
        let shared = snap().into_shared();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || s.matching_iter(&TriplePattern::any()).count())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }
}
