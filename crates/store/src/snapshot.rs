//! The read side of the storage engine: `FrozenIndexes` (sorted-array
//! SPO/POS/OSP permutations answered by binary-search range scans), the
//! zero-alloc query iterators, and the immutable, `Arc`-shareable
//! [`KbSnapshot`].
//!
//! Index layout: each permutation is a `Vec<((TermId, TermId, TermId),
//! FactId)>` sorted by the permuted key, paired with a per-leading-term
//! offset array (`starts`). A [`TriplePattern`] with a bound leading
//! term jumps straight to its bucket — `starts[t] .. starts[t + 1]` —
//! in `O(1)`; any remaining bound components narrow the bucket with
//! `partition_point` searches that touch only the (cache-resident)
//! bucket instead of the whole array (see
//! [`TriplePattern::choose_index`] for the shape→index mapping).
//! Iteration then walks the slice and resolves each `FactId` straight
//! into the fact table — no hash lookups, no per-call `Vec`.
//!
//! The same iterators also serve layered views: a
//! [`SegmentedSnapshot`](crate::SegmentedSnapshot) opens one
//! cursor per segment and [`MatchIter`] k-way merges them by
//! minimum key, with the *newest* segment holding a key winning
//! (shadowing) and delta tombstones suppressing older assertions.
//! Monolithic views keep an empty delta stack and take the original
//! single-slice fast path — no merge overhead, no per-row allocation.

use std::sync::Arc;

use crate::builder::KbCore;
use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::{IndexChoice, TriplePattern};
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::segment::DeltaSegment;
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimePoint;
use crate::Dictionary;

pub(crate) type Key = (TermId, TermId, TermId);

/// The three sorted permutation arrays of a frozen store, each paired
/// with a per-leading-term offset array.
///
/// Built once from the fact table in `O(n log n)`; answering a pattern
/// with a bound leading term is an `O(1)` bucket lookup plus
/// `O(log b + k)` for a bucket of size `b` and `k` results, with an
/// exact count in the same bounds for every shape.
#[derive(Debug, Default, Clone)]
pub(crate) struct FrozenIndexes {
    spo: Vec<(Key, FactId)>,
    pos: Vec<(Key, FactId)>,
    osp: Vec<(Key, FactId)>,
    /// `spo[spo_starts[s] .. spo_starts[s + 1]]` is subject `s`'s bucket.
    spo_starts: Vec<u32>,
    /// `pos[pos_starts[p] .. pos_starts[p + 1]]` is predicate `p`'s bucket.
    pos_starts: Vec<u32>,
    /// `osp[osp_starts[o] .. osp_starts[o + 1]]` is object `o`'s bucket.
    osp_starts: Vec<u32>,
}

/// Prefix-sum offsets over the leading term of a sorted permutation:
/// `starts[t] .. starts[t + 1]` brackets term `t`'s entries. Terms past
/// the largest seen leading id have no slot (callers treat out-of-range
/// as empty).
fn starts_of(entries: &[(Key, FactId)]) -> Vec<u32> {
    let top = entries.last().map_or(0, |&((a, _, _), _)| a.index() + 1);
    let mut starts = vec![0u32; top + 1];
    for &((a, _, _), _) in entries {
        starts[a.index() + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    starts
}

impl FrozenIndexes {
    fn build_impl(facts: &[Fact], include_retracted: bool) -> Self {
        let mut spo = Vec::with_capacity(facts.len());
        let mut pos = Vec::with_capacity(facts.len());
        let mut osp = Vec::with_capacity(facts.len());
        for (i, f) in facts.iter().enumerate() {
            if f.is_retracted() && !include_retracted {
                continue;
            }
            let id = FactId(i as u32);
            let t = f.triple;
            spo.push((t.spo_key(), id));
            pos.push((t.pos_key(), id));
            osp.push((t.osp_key(), id));
        }
        spo.sort_unstable();
        pos.sort_unstable();
        osp.sort_unstable();
        let spo_starts = starts_of(&spo);
        let pos_starts = starts_of(&pos);
        let osp_starts = starts_of(&osp);
        Self { spo, pos, osp, spo_starts, pos_starts, osp_starts }
    }

    /// Indexes every live fact in `facts` (retracted entries are
    /// skipped, so they never appear in query results).
    pub(crate) fn build(facts: &[Fact]) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.snapshot.freeze_us");
        let built = Self::build_impl(facts, false);
        span.stop();
        obs.counter("store.snapshot.freezes").inc();
        // Three permutation arrays plus their offset buckets.
        obs.gauge("store.index.entries").set((3 * built.spo.len()) as i64);
        obs.gauge("store.index.bucket_slots").set((3 * built.spo_starts.len()) as i64);
        built
    }

    /// Indexes every fact *including* retracted ones — the delta-segment
    /// build. A delta's tombstones must be present in its permutation
    /// arrays so the k-way merge sees their keys and lets them shadow
    /// (suppress) the base segment's assertions.
    pub(crate) fn build_with_tombstones(facts: &[Fact]) -> Self {
        let obs = kb_obs::global();
        let span = obs.span("store.delta.freeze_us");
        let built = Self::build_impl(facts, true);
        span.stop();
        obs.counter("store.delta.freezes").inc();
        built
    }

    /// The three permutation columns as fact-id arrays (SPO, POS, OSP
    /// order) — the serialized form: keys are redundant with the fact
    /// table, so the segment writer stores only the ids.
    pub(crate) fn perm_fact_ids(&self) -> [Vec<u32>; 3] {
        let ids = |v: &[(Key, FactId)]| v.iter().map(|&(_, id)| id.0).collect();
        [ids(&self.spo), ids(&self.pos), ids(&self.osp)]
    }

    /// The three offset-bucket arrays (SPO, POS, OSP order).
    pub(crate) fn bucket_starts(&self) -> [&[u32]; 3] {
        [&self.spo_starts, &self.pos_starts, &self.osp_starts]
    }

    /// Reassembles frozen indexes from serialized fact-id permutations
    /// and offset buckets, re-deriving each key from the fact table in
    /// one linear pass (no sort — this is what makes cold-start cheap).
    ///
    /// Validates everything a checksum cannot: ids in range, keys
    /// non-decreasing in each permutation, buckets exactly the prefix
    /// sums of the entries. Any violation is a [`StoreError::Corrupt`].
    pub(crate) fn from_fact_perms(
        facts: &[Fact],
        perms: [Vec<u32>; 3],
        starts: [Vec<u32>; 3],
    ) -> Result<Self, crate::StoreError> {
        use crate::error::SegmentRegion;
        let corrupt =
            |region: SegmentRegion, detail: String| crate::StoreError::Corrupt { region, detail };
        let [spo_ids, pos_ids, osp_ids] = perms;
        let [spo_starts, pos_starts, osp_starts] = starts;
        let build = |ids: &[u32],
                     key_of: fn(&Triple) -> Key,
                     starts: &[u32]|
         -> Result<Vec<(Key, FactId)>, crate::StoreError> {
            let mut out = Vec::with_capacity(ids.len());
            let mut prev: Option<Key> = None;
            for &id in ids {
                let fact = facts.get(id as usize).ok_or_else(|| {
                    corrupt(
                        SegmentRegion::Permutations,
                        format!("fact id {id} out of range ({} facts)", facts.len()),
                    )
                })?;
                let key = key_of(&fact.triple);
                if prev.is_some_and(|p| p > key) {
                    return Err(corrupt(
                        SegmentRegion::Permutations,
                        "permutation column is not sorted".into(),
                    ));
                }
                prev = Some(key);
                out.push((key, FactId(id)));
            }
            if starts_of(&out) != starts {
                return Err(corrupt(
                    SegmentRegion::Buckets,
                    "offset buckets disagree with the permutation entries".into(),
                ));
            }
            Ok(out)
        };
        // The three permutations are independent reads over the shared
        // fact table; validating them is the most expensive step of a
        // cold open, so fan out across threads.
        let (spo, pos, osp) = std::thread::scope(|s| {
            let pos = s.spawn(|| build(&pos_ids, |t| t.pos_key(), &pos_starts));
            let osp = s.spawn(|| build(&osp_ids, |t| t.osp_key(), &osp_starts));
            let spo = build(&spo_ids, |t| t.spo_key(), &spo_starts);
            (spo, pos.join().expect("pos build"), osp.join().expect("osp build"))
        });
        let (spo, pos, osp) = (spo?, pos?, osp?);
        Ok(Self { spo, pos, osp, spo_starts, pos_starts, osp_starts })
    }

    /// Locates the contiguous slice answering `pattern` plus the
    /// post-filter kept for the `s?o` shape (its slice is already
    /// exact; the filter only preserves the conservative size hint).
    pub(crate) fn select<'a>(
        &'a self,
        pattern: &TriplePattern,
    ) -> (&'a [(Key, FactId)], Option<TriplePattern>) {
        let choice = pattern.choose_index();
        let (index, starts, (a, b, c)) = match choice {
            IndexChoice::Spo => (&self.spo, &self.spo_starts, (pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, &self.pos_starts, (pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, &self.osp_starts, (pattern.o, pattern.s, pattern.p)),
        };
        let filter = (pattern.bound_count() == 2 && pattern.p.is_none()).then_some(*pattern);
        // Leading term bound → O(1) bucket lookup via the offset array.
        // (`choose_index` only leaves the leading term unbound for the
        // all-wildcard pattern, which scans the whole index.)
        let slice: &[(Key, FactId)] = match a {
            None => index,
            Some(a) => {
                let i = a.index();
                if i + 1 >= starts.len() {
                    return (&index[0..0], filter);
                }
                &index[starts[i] as usize..starts[i + 1] as usize]
            }
        };
        // Remaining bound components narrow within the bucket.
        let slice = match (b, c) {
            (None, _) => slice,
            (Some(b), None) => {
                let start = slice.partition_point(|&((_, kb, _), _)| kb < b);
                let end = start + slice[start..].partition_point(|&((_, kb, _), _)| kb <= b);
                &slice[start..end]
            }
            (Some(b), Some(c)) => {
                let start = slice.partition_point(|&((_, kb, kc), _)| (kb, kc) < (b, c));
                let end =
                    start + slice[start..].partition_point(|&((_, kb, kc), _)| (kb, kc) <= (b, c));
                &slice[start..end]
            }
        };
        (slice, filter)
    }
}

/// One segment's contribution to a merged scan: the selected index
/// slice plus the segment's fact table to resolve ids against. Advanced
/// by re-slicing — no allocation per row.
#[derive(Debug, Clone)]
pub(crate) struct SegCursor<'a> {
    entries: &'a [(Key, FactId)],
    facts: &'a [Fact],
}

impl<'a> SegCursor<'a> {
    pub(crate) fn new(entries: &'a [(Key, FactId)], facts: &'a [Fact]) -> Self {
        Self { entries, facts }
    }
}

/// Streaming cursor over the live facts matching one [`TriplePattern`],
/// in permutation-index order. Yields `&Fact` without allocating.
///
/// For a monolithic view this walks one contiguous index slice. For a
/// [`SegmentedSnapshot`](crate::SegmentedSnapshot) it k-way merges the
/// base cursor with one cursor per delta segment: at each step the
/// minimum key across cursor heads is taken, every cursor sitting on
/// that key is advanced (dedup), and the *newest* holder's fact wins —
/// so a delta's evidence-merge shadows the base and a delta tombstone
/// (retracted fact, indexed only in deltas) suppresses the key
/// entirely.
///
/// Returned by [`KbRead::matching_iter`].
#[derive(Debug, Clone)]
pub struct MatchIter<'a> {
    /// Base (oldest) segment cursor.
    head: SegCursor<'a>,
    /// Delta cursors, oldest → newest. Empty for monolithic views,
    /// which keep the single-slice fast path.
    deltas: Vec<SegCursor<'a>>,
    filter: Option<TriplePattern>,
    /// Which permutation the keys come from (lets [`TriplesIter`]
    /// reconstruct triples from keys without touching the fact table).
    choice: IndexChoice,
}

impl<'a> MatchIter<'a> {
    pub(crate) fn new(
        entries: &'a [(Key, FactId)],
        facts: &'a [Fact],
        filter: Option<TriplePattern>,
        choice: IndexChoice,
    ) -> Self {
        Self { head: SegCursor::new(entries, facts), deltas: Vec::new(), filter, choice }
    }

    pub(crate) fn with_deltas(
        head: SegCursor<'a>,
        deltas: Vec<SegCursor<'a>>,
        filter: Option<TriplePattern>,
        choice: IndexChoice,
    ) -> Self {
        Self { head, deltas, filter, choice }
    }

    /// Consumes the cursor and returns the exact number of remaining
    /// matches — `O(1)` for every monolithic shape except `s?o`;
    /// segmented views must walk the merge (shadowing and tombstones
    /// make the count data-dependent).
    pub fn exact_count(self) -> usize {
        if self.deltas.is_empty() && self.filter.is_none() {
            return self.head.entries.len();
        }
        self.count()
    }

    /// The k-way merge step: yields the authoritative fact for the next
    /// smallest key across all segment cursors, skipping tombstones.
    /// Only called on segmented views (`deltas` non-empty).
    fn merge_next(&mut self) -> Option<&'a Fact> {
        loop {
            let mut min: Option<Key> = self.head.entries.first().map(|&(k, _)| k);
            for c in &self.deltas {
                if let Some(&(k, _)) = c.entries.first() {
                    if min.is_none_or(|m| k < m) {
                        min = Some(k);
                    }
                }
            }
            let min = min?;
            // Advance every cursor sitting on the key; cursors run
            // oldest → newest, so the last holder is authoritative.
            let mut winner: Option<&'a Fact> = None;
            if let Some((&(k, id), rest)) = self.head.entries.split_first() {
                if k == min {
                    winner = Some(&self.head.facts[id.index()]);
                    self.head.entries = rest;
                }
            }
            for c in self.deltas.iter_mut() {
                if let Some((&(k, id), rest)) = c.entries.split_first() {
                    if k == min {
                        winner = Some(&c.facts[id.index()]);
                        c.entries = rest;
                    }
                }
            }
            let fact = winner.expect("the min key has at least one holder");
            // A retracted winner is a tombstone: the key is suppressed.
            if !fact.is_retracted() {
                return Some(fact);
            }
        }
    }
}

impl<'a> Iterator for MatchIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        if self.deltas.is_empty() {
            while let Some((&(_, id), rest)) = self.head.entries.split_first() {
                self.head.entries = rest;
                let fact = &self.head.facts[id.index()];
                match self.filter {
                    None => return Some(fact),
                    Some(p) if p.matches(&fact.triple) => return Some(fact),
                    Some(_) => {}
                }
            }
            return None;
        }
        while let Some(fact) = self.merge_next() {
            match self.filter {
                None => return Some(fact),
                Some(p) if p.matches(&fact.triple) => return Some(fact),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n =
            self.head.entries.len() + self.deltas.iter().map(|c| c.entries.len()).sum::<usize>();
        if self.deltas.is_empty() && self.filter.is_none() {
            (n, Some(n))
        } else {
            // Post-filtering, shadowing and tombstones can only shrink.
            (0, Some(n))
        }
    }
}

/// Streaming cursor over matching triples (projection of
/// [`MatchIter`]). Returned by [`KbRead::triples_iter`].
///
/// On a monolithic view each triple is reconstructed by un-permuting
/// the index key — the fact table is never touched, so a triple
/// projection stays inside the contiguous index slice. A segmented view
/// must consult the winning fact anyway (tombstone check), so it
/// projects the merged fact's triple.
#[derive(Debug, Clone)]
pub struct TriplesIter<'a>(pub(crate) MatchIter<'a>);

/// Inverts a permuted index key back into the `(s, p, o)` triple.
fn unpermute(choice: IndexChoice, k: Key) -> Triple {
    match choice {
        IndexChoice::Spo => Triple::new(k.0, k.1, k.2),
        IndexChoice::Pos => Triple::new(k.2, k.0, k.1),
        IndexChoice::Osp => Triple::new(k.1, k.2, k.0),
    }
}

impl Iterator for TriplesIter<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        let it = &mut self.0;
        if it.deltas.is_empty() {
            while let Some((&(k, _), rest)) = it.head.entries.split_first() {
                it.head.entries = rest;
                let t = unpermute(it.choice, k);
                match it.filter {
                    None => return Some(t),
                    Some(p) if p.matches(&t) => return Some(t),
                    Some(_) => {}
                }
            }
            return None;
        }
        while let Some(fact) = it.merge_next() {
            match it.filter {
                None => return Some(fact.triple),
                Some(p) if p.matches(&fact.triple) => return Some(fact.triple),
                Some(_) => {}
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

/// Streaming time-travel cursor: matching facts valid at a given
/// [`TimePoint`] (timeless facts always qualify). Returned by
/// [`KbRead::matching_at_iter`].
#[derive(Debug, Clone)]
pub struct MatchingAtIter<'a> {
    pub(crate) inner: MatchIter<'a>,
    pub(crate) point: TimePoint,
}

impl<'a> Iterator for MatchingAtIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        let point = self.point;
        self.inner.by_ref().find(|f| f.span.is_none_or(|sp| sp.contains(&point)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

/// Streaming cursor over the live facts of a view in fact-table
/// (insertion) order — base segment first, then each delta in stack
/// order. Returned by [`KbRead::facts`]; this is the cheap path for
/// whole-KB aggregation (`stats`, `predicate_histogram`) that needs no
/// particular order.
///
/// Retracted facts are skipped, and a fact whose triple reappears in a
/// *newer* overlay segment is skipped too — the newer segment re-yields
/// its merged (or tombstoned) version, so each triple surfaces exactly
/// once.
#[derive(Debug, Clone)]
pub struct LiveFactsIter<'a> {
    cur: std::slice::Iter<'a, Fact>,
    /// Segments stacked above `cur`, oldest → newest: each shadows the
    /// current slice and then streams its own facts in turn.
    overlay: &'a [Arc<DeltaSegment>],
}

impl<'a> LiveFactsIter<'a> {
    pub(crate) fn new(facts: &'a [Fact]) -> Self {
        Self { cur: facts.iter(), overlay: &[] }
    }

    pub(crate) fn segmented(base: &'a [Fact], overlay: &'a [Arc<DeltaSegment>]) -> Self {
        Self { cur: base.iter(), overlay }
    }
}

impl<'a> Iterator for LiveFactsIter<'a> {
    type Item = &'a Fact;

    fn next(&mut self) -> Option<&'a Fact> {
        loop {
            for f in self.cur.by_ref() {
                if f.is_retracted() {
                    continue;
                }
                if self.overlay.iter().any(|d| d.contains_triple(&f.triple)) {
                    continue;
                }
                return Some(f);
            }
            let (next_seg, rest) = self.overlay.split_first()?;
            self.cur = next_seg.fact_table().iter();
            self.overlay = rest;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let pending: usize = self.overlay.iter().map(|d| d.fact_table().len()).sum();
        (0, Some(self.cur.len() + pending))
    }
}

/// An immutable, query-optimized view of a knowledge base.
///
/// Produced by [`KbBuilder::freeze`](crate::KbBuilder::freeze) (moves
/// the builder's data, sorts the permutation arrays once) or
/// [`KnowledgeBase::snapshot`](crate::KnowledgeBase::snapshot)
/// (clones). A snapshot is `Send + Sync` and cheap to share:
/// [`into_shared`](Self::into_shared) wraps it in an [`Arc`] so
/// read-heavy consumers (NED, analytics, serving) can query it from
/// many threads with zero coordination.
///
/// All queries go through the [`KbRead`] trait.
#[derive(Debug, Clone)]
pub struct KbSnapshot {
    pub(crate) core: KbCore,
    pub(crate) taxonomy: Taxonomy,
    pub(crate) sameas: SameAsStore,
    pub(crate) labels: LabelStore,
    pub(crate) indexes: FrozenIndexes,
    live: usize,
}

impl KbSnapshot {
    pub(crate) fn from_parts(
        core: KbCore,
        taxonomy: Taxonomy,
        sameas: SameAsStore,
        labels: LabelStore,
        indexes: FrozenIndexes,
    ) -> Self {
        let live = core.live;
        let obs = kb_obs::global();
        obs.gauge("store.snapshot.facts").set(live as i64);
        obs.gauge("store.snapshot.terms").set(core.dict.len() as i64);
        Self { core, taxonomy, sameas, labels, indexes, live }
    }

    /// Wraps the snapshot in an [`Arc`] for sharing across threads.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The term dictionary (a snapshot holds exactly one; segmented
    /// views don't, which is why [`KbRead`] exposes term access as
    /// methods instead).
    pub fn dictionary(&self) -> &Dictionary {
        &self.core.dict
    }

    /// All registered sources in id order.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.core.sources.iter().enumerate().map(|(i, s)| (SourceId(i as u32), s.as_str()))
    }

    /// Number of registered provenance sources.
    pub(crate) fn source_count(&self) -> usize {
        self.core.sources.len()
    }
}

impl KbRead for KbSnapshot {
    fn term(&self, term: &str) -> Option<TermId> {
        self.core.dict.get(term)
    }

    fn resolve(&self, id: TermId) -> Option<&str> {
        self.core.dict.resolve(id)
    }

    fn term_count(&self) -> usize {
        self.core.dict.len()
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    fn sameas(&self) -> &SameAsStore {
        &self.sameas
    }

    fn labels(&self) -> &LabelStore {
        &self.labels
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        self.core.source_name(id)
    }

    fn fact(&self, id: FactId) -> Option<&Fact> {
        self.core.facts.get(id.index())
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.core.fact_for(t)
    }

    fn len(&self) -> usize {
        self.live
    }

    fn facts(&self) -> LiveFactsIter<'_> {
        LiveFactsIter::new(&self.core.facts)
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let (entries, filter) = self.indexes.select(pattern);
        MatchIter::new(entries, &self.core.facts, filter, pattern.choose_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbBuilder;

    fn snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        b.freeze()
    }

    #[test]
    fn every_shape_scans_one_contiguous_range() {
        let s = snap();
        let jobs = s.term("Steve_Jobs").unwrap();
        let founded = s.term("founded").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        assert_eq!(s.matching_iter(&TriplePattern::with_s(jobs)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_p(founded)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_o(apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_sp(jobs, founded)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::with_po(founded, apple)).count(), 2);
        assert_eq!(s.matching_iter(&TriplePattern::with_so(jobs, apple)).count(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 4);
    }

    #[test]
    fn exact_count_is_constant_time_for_prefix_shapes() {
        let s = snap();
        let founded = s.term("founded").unwrap();
        let it = s.matching_iter(&TriplePattern::with_p(founded));
        assert_eq!(it.size_hint(), (2, Some(2)));
        assert_eq!(it.exact_count(), 2);
        // s?o post-filters, so its lower bound is zero.
        let jobs = s.term("Steve_Jobs").unwrap();
        let apple = s.term("Apple_Inc").unwrap();
        let it = s.matching_iter(&TriplePattern::with_so(jobs, apple));
        assert_eq!(it.size_hint().0, 0);
        assert_eq!(it.exact_count(), 1);
    }

    #[test]
    fn retracted_facts_never_enter_the_indexes() {
        let mut b = KbBuilder::new();
        b.assert_str("a", "r", "b");
        b.assert_str("c", "r", "d");
        let t = Triple::new(b.term("a").unwrap(), b.term("r").unwrap(), b.term("b").unwrap());
        b.retract(t);
        let s = b.freeze();
        assert_eq!(s.len(), 1);
        assert_eq!(s.matching_iter(&TriplePattern::any()).count(), 1);
        assert!(!s.contains(&t));
        // The retracted fact is still addressable by id (provenance).
        assert!(s.fact(FactId(0)).unwrap().is_retracted());
    }

    #[test]
    fn snapshot_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KbSnapshot>();
        let shared = snap().into_shared();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || s.matching_iter(&TriplePattern::any()).count())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }
}
