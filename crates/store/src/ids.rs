//! Dense integer identifiers used throughout the store.
//!
//! All strings — entity names, class names, relation names and literals —
//! are interned into a [`TermId`] by the
//! [`Dictionary`](crate::Dictionary). Facts are addressed by [`FactId`].
//! Both are `u32` newtypes: a KB of up to four billion terms/facts is far
//! beyond the laptop scale this library targets, and 4-byte ids keep the
//! permutation indexes compact (12 bytes per indexed triple).

use std::fmt;

/// Identifier of an interned term (entity, class, relation or literal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index into the dictionary's term table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a fact stored in a [`KnowledgeBase`](crate::KnowledgeBase).
///
/// Fact ids are assigned densely in insertion order and are stable for the
/// lifetime of the store (facts are never physically removed; retraction is
/// modelled by setting confidence to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactId(pub u32);

impl FactId {
    /// The raw index into the fact table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_id_ordering_follows_raw_value() {
        assert!(TermId(1) < TermId(2));
        assert_eq!(TermId(7).index(), 7);
    }

    #[test]
    fn display_forms_are_distinct() {
        assert_eq!(TermId(3).to_string(), "t3");
        assert_eq!(FactId(3).to_string(), "f3");
    }
}
