//! Error type shared by all store operations.

use std::error::Error;
use std::fmt;

use crate::TermId;

/// Errors raised by [`KnowledgeBase`](crate::KnowledgeBase) and its
/// sub-stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A `TermId` was used that this dictionary never issued.
    UnknownTerm(TermId),
    /// Adding the subclass edge would create a cycle in the taxonomy.
    TaxonomyCycle {
        /// The would-be subclass.
        sub: TermId,
        /// The would-be superclass.
        sup: TermId,
    },
    /// A temporal scope with `end < begin` was supplied.
    InvalidTimeSpan,
    /// A serialized KB line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O error occurred while reading or writing a serialized KB.
    ///
    /// `std::io::Error` is neither `Clone` nor `PartialEq`, so only its
    /// display string is retained.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTerm(t) => write!(f, "unknown term id {t}"),
            StoreError::TaxonomyCycle { sub, sup } => {
                write!(f, "subclass edge {sub} -> {sup} would create a cycle")
            }
            StoreError::InvalidTimeSpan => write!(f, "time span ends before it begins"),
            StoreError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            StoreError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_ids() {
        let e = StoreError::TaxonomyCycle { sub: TermId(1), sup: TermId(2) };
        let s = e.to_string();
        assert!(s.contains("t1") && s.contains("t2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
