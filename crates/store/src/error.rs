//! Error type shared by all store operations.

use std::error::Error;
use std::fmt;

use crate::TermId;

/// Which part of a durable store artifact a corruption was detected in.
///
/// Carried by [`StoreError::Corrupt`] so callers (and tests) can tell a
/// damaged dictionary block from a damaged WAL record without string
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentRegion {
    /// File magic, format version, or the checksummed region table.
    Header,
    /// The term dictionary block.
    Dictionary,
    /// The provenance source table.
    Sources,
    /// The fact table (triples + confidence/source/span).
    Facts,
    /// The per-fact kind column of a delta segment.
    Kinds,
    /// An SPO/POS/OSP permutation column.
    Permutations,
    /// A per-leading-term offset-bucket array.
    Buckets,
    /// A compressed-frame column block (format v2 permutations and
    /// buckets).
    Frames,
    /// The taxonomy (subclass DAG) block.
    Taxonomy,
    /// The sameAs equivalence-class block.
    SameAs,
    /// The multilingual label block.
    Labels,
    /// Delta stacking metadata (first term/source ids).
    DeltaMeta,
    /// The write-ahead log's file header.
    WalHeader,
    /// A CRC-framed record inside the write-ahead log.
    WalRecord,
    /// The manifest file tracking the base+delta stack.
    Manifest,
}

impl fmt::Display for SegmentRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SegmentRegion::Header => "header",
            SegmentRegion::Dictionary => "dictionary",
            SegmentRegion::Sources => "sources",
            SegmentRegion::Facts => "facts",
            SegmentRegion::Kinds => "kinds",
            SegmentRegion::Permutations => "permutations",
            SegmentRegion::Buckets => "buckets",
            SegmentRegion::Frames => "frames",
            SegmentRegion::Taxonomy => "taxonomy",
            SegmentRegion::SameAs => "sameAs",
            SegmentRegion::Labels => "labels",
            SegmentRegion::DeltaMeta => "delta metadata",
            SegmentRegion::WalHeader => "WAL header",
            SegmentRegion::WalRecord => "WAL record",
            SegmentRegion::Manifest => "manifest",
        };
        f.write_str(name)
    }
}

/// Errors raised by [`KnowledgeBase`](crate::KnowledgeBase) and its
/// sub-stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A `TermId` was used that this dictionary never issued.
    UnknownTerm(TermId),
    /// A durable store artifact failed checksum or structural
    /// validation. Never a panic, never a silently wrong KB: readers
    /// report the damaged region and refuse the data.
    Corrupt {
        /// Which region of the artifact failed validation.
        region: SegmentRegion,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// Adding the subclass edge would create a cycle in the taxonomy.
    TaxonomyCycle {
        /// The would-be subclass.
        sub: TermId,
        /// The would-be superclass.
        sup: TermId,
    },
    /// A temporal scope with `end < begin` was supplied.
    InvalidTimeSpan,
    /// A serialized KB line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A value being serialized is too large for its on-disk length
    /// field. Raised by the persistence writers instead of silently
    /// truncating a `len() as u32` cast — a >4 GiB string, column or
    /// payload must fail loudly at write time, not at reopen.
    TooLarge {
        /// Which region's writer hit the oversized value.
        region: SegmentRegion,
        /// The length that did not fit the field.
        len: usize,
    },
    /// An I/O error occurred while reading or writing a serialized KB.
    ///
    /// `std::io::Error` is neither `Clone` nor `PartialEq`, so only its
    /// display string is retained.
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTerm(t) => write!(f, "unknown term id {t}"),
            StoreError::Corrupt { region, detail } => {
                write!(f, "corrupt segment data in {region}: {detail}")
            }
            StoreError::TaxonomyCycle { sub, sup } => {
                write!(f, "subclass edge {sub} -> {sup} would create a cycle")
            }
            StoreError::InvalidTimeSpan => write!(f, "time span ends before it begins"),
            StoreError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            StoreError::TooLarge { region, len } => {
                write!(f, "{region} value of {len} bytes exceeds the on-disk length field")
            }
            StoreError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_ids() {
        let e = StoreError::TaxonomyCycle { sub: TermId(1), sup: TermId(2) };
        let s = e.to_string();
        assert!(s.contains("t1") && s.contains("t2"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
    }
}
