//! The [`KnowledgeBase`]: dictionary + fact table + permutation indexes +
//! taxonomy + sameAs + labels, behind one façade.
//!
//! Design notes:
//!
//! * Facts live in an append-only `Vec<Fact>`; a `HashMap<Triple, FactId>`
//!   deduplicates statements, so re-adding a triple *merges* evidence
//!   (noisy-or on confidence) instead of duplicating it.
//! * Three `BTreeSet<(TermId, TermId, TermId)>` permutation indexes (SPO,
//!   POS, OSP) are maintained incrementally; any [`TriplePattern`] is
//!   answered by one contiguous range scan (see
//!   [`TriplePattern::choose_index`]).
//! * Queries take `&self`; the store has no interior mutability and is
//!   `Sync`, so read-heavy consumers (NED, analytics) can share it across
//!   threads.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::{IndexChoice, TriplePattern};
use crate::sameas::SameAsStore;
use crate::stats::KbStats;
use crate::taxonomy::Taxonomy;
use crate::time::TimeSpan;

/// Identifier of a registered provenance source (a corpus, an extractor,
/// a manual assertion batch, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The pre-registered source `"asserted"` present in every store.
    pub const DEFAULT: SourceId = SourceId(0);
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

type Key = (TermId, TermId, TermId);

/// An in-memory SPO knowledge base with metadata, taxonomy, sameAs and
/// multilingual labels. See the [crate docs](crate) for an overview.
#[derive(Debug, Default)]
pub struct KnowledgeBase {
    dict: crate::Dictionary,
    facts: Vec<Fact>,
    by_triple: HashMap<Triple, FactId>,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
    /// Subclass-of DAG over class terms.
    pub taxonomy: Taxonomy,
    /// owl:sameAs equivalence classes over entity terms.
    pub sameas: SameAsStore,
    /// Multilingual labels and the reverse surface-form (`means`) index.
    pub labels: LabelStore,
    sources: Vec<String>,
    source_lookup: HashMap<String, SourceId>,
}

impl KnowledgeBase {
    /// Creates an empty store with the default `"asserted"` source.
    pub fn new() -> Self {
        let mut kb = Self::default();
        let id = kb.register_source("asserted");
        debug_assert_eq!(id, SourceId::DEFAULT);
        kb
    }

    // ---------------------------------------------------------------
    // Terms
    // ---------------------------------------------------------------

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.dict.intern(term)
    }

    /// Looks up an already-interned term.
    pub fn term(&self, term: &str) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Resolves a term id back to its string.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.dict.resolve(id)
    }

    /// The underlying dictionary (read access).
    pub fn dictionary(&self) -> &crate::Dictionary {
        &self.dict
    }

    // ---------------------------------------------------------------
    // Sources
    // ---------------------------------------------------------------

    /// Registers (or retrieves) a provenance source by name.
    pub fn register_source(&mut self, name: &str) -> SourceId {
        if let Some(&id) = self.source_lookup.get(name) {
            return id;
        }
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(name.to_string());
        self.source_lookup.insert(name.to_string(), id);
        id
    }

    /// Resolves a source id back to its name.
    pub fn source_name(&self, id: SourceId) -> Option<&str> {
        self.sources.get(id.0 as usize).map(|s| s.as_str())
    }

    /// All registered sources in id order.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(i, s)| (SourceId(i as u32), s.as_str()))
    }

    // ---------------------------------------------------------------
    // Facts
    // ---------------------------------------------------------------

    /// Adds a fully-confident fact with default provenance; returns its id.
    pub fn add_triple(&mut self, s: TermId, p: TermId, o: TermId) -> FactId {
        self.add_fact(Fact::asserted(Triple::new(s, p, o)))
    }

    /// Convenience: interns three strings and asserts the triple.
    pub fn assert_str(&mut self, s: &str, p: &str, o: &str) -> FactId {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.add_fact(Fact::asserted(t))
    }

    /// Adds a fact. If the same triple already exists the stored fact is
    /// *merged*: confidence combines by noisy-or
    /// (`1 - (1-a)(1-b)`, the standard evidence combination for
    /// independent extractors), the temporal span is kept if previously
    /// unknown, and provenance keeps the earlier source. Returns the id
    /// of the (new or merged) fact.
    pub fn add_fact(&mut self, fact: Fact) -> FactId {
        debug_assert!((0.0..=1.0).contains(&fact.confidence));
        if let Some(&id) = self.by_triple.get(&fact.triple) {
            let existing = &mut self.facts[id.index()];
            let was_retracted = existing.is_retracted();
            existing.confidence = 1.0 - (1.0 - existing.confidence) * (1.0 - fact.confidence);
            if existing.span.is_none() {
                existing.span = fact.span;
            }
            // Re-adding a retracted fact resurrects it in the indexes.
            if was_retracted && !existing.is_retracted() {
                let t = existing.triple;
                self.spo.insert(t.spo_key());
                self.pos.insert(t.pos_key());
                self.osp.insert(t.osp_key());
            }
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        let t = fact.triple;
        self.facts.push(fact);
        self.by_triple.insert(t, id);
        self.spo.insert(t.spo_key());
        self.pos.insert(t.pos_key());
        self.osp.insert(t.osp_key());
        id
    }

    /// Retracts a triple: its confidence is set to zero and it stops
    /// matching queries. The fact id remains valid. Returns whether the
    /// triple was present and live.
    pub fn retract(&mut self, t: Triple) -> bool {
        let Some(&id) = self.by_triple.get(&t) else {
            return false;
        };
        let fact = &mut self.facts[id.index()];
        if fact.is_retracted() {
            return false;
        }
        fact.confidence = 0.0;
        self.spo.remove(&t.spo_key());
        self.pos.remove(&t.pos_key());
        self.osp.remove(&t.osp_key());
        true
    }

    /// Sets the temporal scope of an existing triple. Returns `false` if
    /// the triple is absent.
    pub fn set_span(&mut self, t: Triple, span: TimeSpan) -> bool {
        match self.by_triple.get(&t) {
            Some(&id) => {
                self.facts[id.index()].span = Some(span);
                true
            }
            None => false,
        }
    }

    /// Looks up a fact by id.
    pub fn fact(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(id.index())
    }

    /// Looks up a live fact by triple.
    pub fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.by_triple
            .get(t)
            .map(|id| &self.facts[id.index()])
            .filter(|f| !f.is_retracted())
    }

    /// Whether the triple is present and live.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&t.spo_key())
    }

    /// Number of live (non-retracted) facts.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store holds no live facts.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterates over all live facts in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            let id = self.by_triple[&Triple::new(s, p, o)];
            &self.facts[id.index()]
        })
    }

    // ---------------------------------------------------------------
    // Queries
    // ---------------------------------------------------------------

    /// Returns all live facts matching the pattern, using the best
    /// permutation index (one contiguous range scan; the `s?o` shape
    /// post-filters inside the `o` range).
    pub fn matching(&self, pattern: &TriplePattern) -> Vec<&Fact> {
        self.matching_triples(pattern)
            .into_iter()
            .map(|t| self.fact_for(&t).expect("indexed triple must be live"))
            .collect()
    }

    /// Like [`matching`](Self::matching) but returns only the triples.
    pub fn matching_triples(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let choice = pattern.choose_index();
        let (index, (lo, hi)) = match choice {
            IndexChoice::Spo => (&self.spo, range_for(pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, range_for(pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, range_for(pattern.o, pattern.s, pattern.p)),
        };
        let reorder: fn(Key) -> Triple = match choice {
            IndexChoice::Spo => |(s, p, o)| Triple::new(s, p, o),
            IndexChoice::Pos => |(p, o, s)| Triple::new(s, p, o),
            IndexChoice::Osp => |(o, s, p)| Triple::new(s, p, o),
        };
        index
            .range(lo..=hi)
            .map(|&k| reorder(k))
            .filter(|t| pattern.matches(t))
            .collect()
    }

    /// Facts matching the pattern that are valid at `point`: facts with
    /// no temporal scope always qualify (they are assumed timeless);
    /// scoped facts qualify when their span contains the point — the
    /// time-travel query of YAGO2-style temporal KBs.
    pub fn matching_at(&self, pattern: &TriplePattern, point: &crate::TimePoint) -> Vec<&Fact> {
        self.matching(pattern)
            .into_iter()
            .filter(|f| f.span.is_none_or(|sp| sp.contains(point)))
            .collect()
    }

    /// Count of live facts matching the pattern (no allocation of results).
    pub fn count_matching(&self, pattern: &TriplePattern) -> usize {
        let (index, (lo, hi)) = match pattern.choose_index() {
            IndexChoice::Spo => (&self.spo, range_for(pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, range_for(pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, range_for(pattern.o, pattern.s, pattern.p)),
        };
        if pattern.bound_count() == 2 && pattern.p.is_none() {
            // s?o goes through the OSP range of o and must post-filter on s.
            let reorder = |(o, s, p): Key| Triple::new(s, p, o);
            index
                .range(lo..=hi)
                .filter(|&&k| pattern.matches(&reorder(k)))
                .count()
        } else {
            index.range(lo..=hi).count()
        }
    }

    /// All objects `o` such that `(s, p, o)` is a live fact.
    pub fn objects(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.matching_triples(&TriplePattern::with_sp(s, p))
            .into_iter()
            .map(|t| t.o)
            .collect()
    }

    /// All subjects `s` such that `(s, p, o)` is a live fact.
    pub fn subjects(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.matching_triples(&TriplePattern::with_po(p, o))
            .into_iter()
            .map(|t| t.s)
            .collect()
    }

    /// Two-pattern join on a shared variable: returns all `(x, y)` pairs
    /// such that `(x, p1, m)` and `(m, p2, y)` both hold for some `m`
    /// (a path join, e.g. "people born in cities located in country Y").
    pub fn path_join(&self, p1: TermId, p2: TermId) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for t1 in self.matching_triples(&TriplePattern::with_p(p1)) {
            for t2 in self.matching_triples(&TriplePattern::with_sp(t1.o, p2)) {
                out.push((t1.s, t2.o));
            }
        }
        out
    }

    /// Degree of a term: number of live facts where it appears as subject
    /// plus those where it appears as object. Used by NED coherence and
    /// popularity priors.
    pub fn degree(&self, t: TermId) -> usize {
        self.count_matching(&TriplePattern::with_s(t)) + self.count_matching(&TriplePattern::with_o(t))
    }

    /// Neighboring entities of `t` (subjects/objects of facts touching it,
    /// excluding `t` itself), deduplicated.
    pub fn neighbors(&self, t: TermId) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        for tr in self.matching_triples(&TriplePattern::with_s(t)) {
            out.push(tr.o);
        }
        for tr in self.matching_triples(&TriplePattern::with_o(t)) {
            out.push(tr.s);
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&x| x != t);
        out
    }

    // ---------------------------------------------------------------
    // Statistics
    // ---------------------------------------------------------------

    /// Per-predicate fact counts, sorted by descending count then name —
    /// the relation histogram reported alongside KB statistics.
    pub fn predicate_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<TermId, usize> = HashMap::new();
        for f in self.iter() {
            *counts.entry(f.triple.p).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .filter_map(|(p, n)| self.resolve(p).map(|s| (s.to_string(), n)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Computes summary statistics over the current contents.
    pub fn stats(&self) -> KbStats {
        let mut distinct_subjects: BTreeSet<TermId> = BTreeSet::new();
        let mut distinct_predicates: BTreeSet<TermId> = BTreeSet::new();
        let mut conf_sum = 0.0;
        let mut temporal = 0usize;
        for f in self.iter() {
            distinct_subjects.insert(f.triple.s);
            distinct_predicates.insert(f.triple.p);
            conf_sum += f.confidence;
            if f.span.is_some() {
                temporal += 1;
            }
        }
        let n = self.len();
        KbStats {
            terms: self.dict.len(),
            facts: n,
            subjects: distinct_subjects.len(),
            predicates: distinct_predicates.len(),
            classes: self.taxonomy.class_count(),
            subclass_edges: self.taxonomy.edge_count(),
            sameas_classes: self.sameas.class_count(),
            labels: self.labels.label_count(),
            temporal_facts: temporal,
            mean_confidence: if n == 0 { 0.0 } else { conf_sum / n as f64 },
        }
    }
}

/// Builds the inclusive `(lo, hi)` range over a permutation index whose
/// key order is `(a, b, c)`, for bound prefix values `a` and `b`.
fn range_for(a: Option<TermId>, b: Option<TermId>, c: Option<TermId>) -> (Key, Key) {
    const MIN: TermId = TermId(0);
    const MAX: TermId = TermId(u32::MAX);
    match (a, b, c) {
        (None, _, _) => ((MIN, MIN, MIN), (MAX, MAX, MAX)),
        (Some(a), None, _) => ((a, MIN, MIN), (a, MAX, MAX)),
        (Some(a), Some(b), None) => ((a, b, MIN), (a, b, MAX)),
        (Some(a), Some(b), Some(c)) => ((a, b, c), (a, b, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimePoint;

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        kb.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        kb.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        kb.assert_str("San_Francisco", "locatedIn", "United_States");
        kb.assert_str("Apple_Inc", "headquarteredIn", "Cupertino");
        kb
    }

    #[test]
    fn add_and_query_by_every_shape() {
        let kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let founded = kb.term("founded").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();

        assert_eq!(kb.matching(&TriplePattern::with_s(jobs)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_p(founded)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_o(apple)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_sp(jobs, founded)).len(), 1);
        assert_eq!(kb.matching(&TriplePattern::with_po(founded, apple)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_so(jobs, apple)).len(), 1);
        assert_eq!(kb.matching(&TriplePattern::any()).len(), 5);
        let t = Triple::new(jobs, founded, apple);
        assert_eq!(kb.matching(&TriplePattern::exact(t)).len(), 1);
    }

    #[test]
    fn duplicate_adds_merge_by_noisy_or() {
        let mut kb = KnowledgeBase::new();
        let s = kb.intern("s");
        let p = kb.intern("p");
        let o = kb.intern("o");
        let t = Triple::new(s, p, o);
        kb.add_fact(Fact { triple: t, confidence: 0.5, source: SourceId::DEFAULT, span: None });
        kb.add_fact(Fact { triple: t, confidence: 0.5, source: SourceId::DEFAULT, span: None });
        assert_eq!(kb.len(), 1);
        let f = kb.fact_for(&t).unwrap();
        assert!((f.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_first_known_span() {
        let mut kb = KnowledgeBase::new();
        let t = Triple::new(kb.intern("a"), kb.intern("r"), kb.intern("b"));
        let span = TimeSpan::at(TimePoint::year(1976));
        kb.add_fact(Fact { triple: t, confidence: 0.4, source: SourceId::DEFAULT, span: None });
        kb.add_fact(Fact { triple: t, confidence: 0.4, source: SourceId::DEFAULT, span: Some(span) });
        assert_eq!(kb.fact_for(&t).unwrap().span, Some(span));
    }

    #[test]
    fn retract_hides_from_queries_and_resurrection_works() {
        let mut kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let founded = kb.term("founded").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();
        let t = Triple::new(jobs, founded, apple);

        assert!(kb.retract(t));
        assert!(!kb.contains(&t));
        assert_eq!(kb.len(), 4);
        assert_eq!(kb.matching(&TriplePattern::with_p(founded)).len(), 1);
        assert!(!kb.retract(t), "double retract is a no-op");

        // Re-adding resurrects the fact.
        kb.add_fact(Fact { triple: t, confidence: 0.9, source: SourceId::DEFAULT, span: None });
        assert!(kb.contains(&t));
        assert_eq!(kb.len(), 5);
    }

    #[test]
    fn path_join_composes_relations() {
        let kb = sample_kb();
        let born = kb.term("bornIn").unwrap();
        let located = kb.term("locatedIn").unwrap();
        let pairs = kb.path_join(born, located);
        assert_eq!(pairs.len(), 1);
        let (s, o) = pairs[0];
        assert_eq!(kb.resolve(s), Some("Steve_Jobs"));
        assert_eq!(kb.resolve(o), Some("United_States"));
    }

    #[test]
    fn degree_and_neighbors() {
        let kb = sample_kb();
        let apple = kb.term("Apple_Inc").unwrap();
        assert_eq!(kb.degree(apple), 3);
        let names: Vec<_> = kb
            .neighbors(apple)
            .into_iter()
            .map(|t| kb.resolve(t).unwrap().to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"Steve_Jobs".to_string()));
        assert!(names.contains(&"Cupertino".to_string()));
    }

    #[test]
    fn sources_register_and_resolve() {
        let mut kb = KnowledgeBase::new();
        assert_eq!(kb.source_name(SourceId::DEFAULT), Some("asserted"));
        let a = kb.register_source("wiki");
        let b = kb.register_source("wiki");
        assert_eq!(a, b);
        assert_eq!(kb.source_name(a), Some("wiki"));
        assert_eq!(kb.sources().count(), 2);
    }

    #[test]
    fn count_matching_agrees_with_matching() {
        let kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();
        for pat in [
            TriplePattern::any(),
            TriplePattern::with_s(jobs),
            TriplePattern::with_o(apple),
            TriplePattern::with_so(jobs, apple),
        ] {
            assert_eq!(kb.count_matching(&pat), kb.matching(&pat).len());
        }
    }

    #[test]
    fn stats_reflect_contents() {
        let mut kb = sample_kb();
        let t = kb.matching_triples(&TriplePattern::any())[0];
        kb.set_span(t, TimeSpan::since(TimePoint::year(1976)));
        let st = kb.stats();
        assert_eq!(st.facts, 5);
        assert_eq!(st.predicates, 4);
        assert_eq!(st.temporal_facts, 1);
        assert!(st.mean_confidence > 0.99);
    }

    #[test]
    fn matching_at_filters_by_validity() {
        use crate::time::TimePoint;
        let mut kb = KnowledgeBase::new();
        let p = kb.intern("worksAt");
        let (a, b, acme) = (kb.intern("A"), kb.intern("B"), kb.intern("Acme"));
        kb.add_triple(a, p, acme);
        kb.set_span(
            Triple::new(a, p, acme),
            TimeSpan::between(TimePoint::year(1990), TimePoint::year(1995)).unwrap(),
        );
        kb.add_triple(b, p, acme); // timeless
        let pat = TriplePattern::with_p(p);
        assert_eq!(kb.matching_at(&pat, &TimePoint::year(1992)).len(), 2);
        assert_eq!(kb.matching_at(&pat, &TimePoint::year(2000)).len(), 1);
        let only = kb.matching_at(&pat, &TimePoint::year(2000));
        assert_eq!(only[0].triple.s, b);
    }

    #[test]
    fn predicate_histogram_counts_live_facts() {
        let mut kb = sample_kb();
        let hist = kb.predicate_histogram();
        assert_eq!(hist[0], ("founded".to_string(), 2));
        assert_eq!(hist.len(), 4);
        let t = kb.matching_triples(&TriplePattern::with_p(kb.term("founded").unwrap()))[0];
        kb.retract(t);
        let hist = kb.predicate_histogram();
        assert_eq!(hist.iter().find(|(p, _)| p == "founded").unwrap().1, 1);
    }

    #[test]
    fn iter_returns_all_live_facts_in_spo_order() {
        let mut kb = sample_kb();
        let all: Vec<Triple> = kb.iter().map(|f| f.triple).collect();
        assert_eq!(all.len(), 5);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        kb.retract(all[0]);
        assert_eq!(kb.iter().count(), 4);
    }
}
