//! The [`KnowledgeBase`]: the mutable compatibility façade over the
//! split storage engine — a [`KbBuilder`](crate::KbBuilder)-style write side
//! ([`KbCore`](crate::builder) dictionary + fact table) plus a lazily
//! frozen, cached read side (`FrozenIndexes`).
//!
//! Design notes:
//!
//! * Facts live in an append-only `Vec<Fact>`; a `HashMap<Triple, FactId>`
//!   deduplicates statements, so re-adding a triple *merges* evidence
//!   (noisy-or on confidence) instead of duplicating it.
//! * Reads go through the [`KbRead`] trait. The three sorted-array
//!   permutation indexes (SPO, POS, OSP) are built on first read after a
//!   structural mutation and cached in a `OnceLock`; any
//!   [`TriplePattern`] is answered by one binary-searched contiguous
//!   range scan (see [`TriplePattern::choose_index`]).
//! * Confidence merges and span updates do not change the index key
//!   set, so they keep the cache; new facts, retractions and
//!   resurrections invalidate it.
//! * Queries take `&self` and the cache is a `OnceLock`, so the store
//!   stays `Sync`: read-heavy consumers (NED, analytics) can share it
//!   across threads. For long-lived read sharing prefer
//!   [`snapshot`](KnowledgeBase::snapshot), which detaches an immutable
//!   [`KbSnapshot`].

use std::fmt;
use std::sync::OnceLock;

use crate::builder::{AddOutcome, KbCore, KbShard};
use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::TriplePattern;
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::snapshot::{FrozenIndexes, KbSnapshot, MatchIter};
use crate::taxonomy::Taxonomy;
use crate::time::TimeSpan;

/// Identifier of a registered provenance source (a corpus, an extractor,
/// a manual assertion batch, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

impl SourceId {
    /// The pre-registered source `"asserted"` present in every store.
    pub const DEFAULT: SourceId = SourceId(0);
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// An in-memory SPO knowledge base with metadata, taxonomy, sameAs and
/// multilingual labels. See the [crate docs](crate) for an overview.
///
/// Reads are provided by the [`KbRead`] impl; bring the trait into
/// scope (`use kb_store::KbRead;`) to query.
#[derive(Debug, Default)]
pub struct KnowledgeBase {
    core: KbCore,
    /// Subclass-of DAG over class terms.
    pub taxonomy: Taxonomy,
    /// owl:sameAs equivalence classes over entity terms.
    pub sameas: SameAsStore,
    /// Multilingual labels and the reverse surface-form (`means`) index.
    pub labels: LabelStore,
    frozen: OnceLock<FrozenIndexes>,
}

impl KnowledgeBase {
    /// Creates an empty store with the default `"asserted"` source.
    pub fn new() -> Self {
        let mut kb = Self::default();
        let id = kb.register_source("asserted");
        debug_assert_eq!(id, SourceId::DEFAULT);
        kb
    }

    /// The cached frozen indexes, built on first use.
    fn frozen(&self) -> &FrozenIndexes {
        self.frozen.get_or_init(|| FrozenIndexes::build(&self.core.facts))
    }

    /// Drops the cached indexes after a structural mutation.
    fn invalidate(&mut self) {
        self.frozen.take();
    }

    // ---------------------------------------------------------------
    // Terms
    // ---------------------------------------------------------------

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.core.dict.intern(term)
    }

    // ---------------------------------------------------------------
    // Sources
    // ---------------------------------------------------------------

    /// Registers (or retrieves) a provenance source by name.
    pub fn register_source(&mut self, name: &str) -> SourceId {
        self.core.register_source(name)
    }

    /// All registered sources in id order.
    pub fn sources(&self) -> impl Iterator<Item = (SourceId, &str)> {
        self.core.sources.iter().enumerate().map(|(i, s)| (SourceId(i as u32), s.as_str()))
    }

    // ---------------------------------------------------------------
    // Facts (write path)
    // ---------------------------------------------------------------

    /// Adds a fully-confident fact with default provenance; returns its id.
    pub fn add_triple(&mut self, s: TermId, p: TermId, o: TermId) -> FactId {
        self.add_fact(Fact::asserted(Triple::new(s, p, o)))
    }

    /// Convenience: interns three strings and asserts the triple.
    pub fn assert_str(&mut self, s: &str, p: &str, o: &str) -> FactId {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.add_fact(Fact::asserted(t))
    }

    /// Adds a fact. If the same triple already exists the stored fact is
    /// *merged*: confidence combines by noisy-or
    /// (`1 - (1-a)(1-b)`, the standard evidence combination for
    /// independent extractors), the temporal span is kept if previously
    /// unknown, and provenance keeps the earlier source. Returns the id
    /// of the (new or merged) fact.
    pub fn add_fact(&mut self, fact: Fact) -> FactId {
        let (id, outcome) = self.core.add_fact(fact);
        // Evidence merges touch no index keys; only structural changes
        // (new triple, resurrection) invalidate the cached indexes.
        if outcome != AddOutcome::Merged {
            self.invalidate();
        }
        id
    }

    /// Retracts a triple: its confidence is set to zero and it stops
    /// matching queries. The fact id remains valid. Returns whether the
    /// triple was present and live.
    pub fn retract(&mut self, t: Triple) -> bool {
        let changed = self.core.retract(t);
        if changed {
            self.invalidate();
        }
        changed
    }

    /// Sets the temporal scope of an existing triple. Returns `false` if
    /// the triple is absent.
    pub fn set_span(&mut self, t: Triple, span: TimeSpan) -> bool {
        // Spans are read from the fact table at query time, never from
        // the index keys — no invalidation needed.
        self.core.set_span(t, span)
    }

    // ---------------------------------------------------------------
    // Sharded ingest and snapshots
    // ---------------------------------------------------------------

    /// Merges one ingest shard (see [`KbShard`]); returns the number of
    /// new facts.
    pub fn merge_shard(&mut self, shard: &KbShard) -> usize {
        let added = self.core.merge_shard(shard);
        self.invalidate();
        added
    }

    /// The merge barrier for parallel ingest: replays `shards` in
    /// iteration order, reproducing the exact dictionary ids and merge
    /// semantics of a serial ingest of the concatenated shards.
    pub fn merge_shards<I>(&mut self, shards: I) -> usize
    where
        I: IntoIterator<Item = KbShard>,
    {
        let obs = kb_obs::global();
        let span = obs.span("store.shard.merge_us");
        let mut merges = 0u64;
        let added = shards
            .into_iter()
            .map(|s| {
                merges += 1;
                self.core.merge_shard(&s)
            })
            .sum();
        span.stop();
        obs.counter("store.shard.merges").add(merges);
        obs.counter("store.shard.merged_facts").add(added as u64);
        self.invalidate();
        added
    }

    /// Detaches an immutable, `Arc`-shareable [`KbSnapshot`] of the
    /// current contents (clones the data; reuses the cached indexes
    /// when warm).
    pub fn snapshot(&self) -> KbSnapshot {
        KbSnapshot::from_parts(
            self.core.clone(),
            self.taxonomy.clone(),
            self.sameas.clone(),
            self.labels.clone(),
            self.frozen().clone(),
        )
    }

    /// Consumes the store into an immutable [`KbSnapshot`] without
    /// cloning the fact table.
    pub fn into_snapshot(self) -> KbSnapshot {
        let KnowledgeBase { core, taxonomy, sameas, labels, frozen } = self;
        let indexes = frozen.into_inner().unwrap_or_else(|| FrozenIndexes::build(&core.facts));
        KbSnapshot::from_parts(core, taxonomy, sameas, labels, indexes)
    }

    /// The term dictionary (the mutable façade holds exactly one).
    pub fn dictionary(&self) -> &crate::Dictionary {
        &self.core.dict
    }
}

impl KbRead for KnowledgeBase {
    fn term(&self, term: &str) -> Option<TermId> {
        self.core.dict.get(term)
    }

    fn resolve(&self, id: TermId) -> Option<&str> {
        self.core.dict.resolve(id)
    }

    fn term_count(&self) -> usize {
        self.core.dict.len()
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    fn sameas(&self) -> &SameAsStore {
        &self.sameas
    }

    fn labels(&self) -> &LabelStore {
        &self.labels
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        self.core.source_name(id)
    }

    fn fact(&self, id: FactId) -> Option<&Fact> {
        self.core.facts.get(id.index())
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.core.fact_for(t)
    }

    fn len(&self) -> usize {
        self.core.live
    }

    fn facts(&self) -> crate::LiveFactsIter<'_> {
        crate::snapshot::LiveFactsIter::new(&self.core.facts)
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let (cur, filter) = self.frozen().cursor(pattern, &self.core.facts);
        MatchIter::new(cur, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimePoint;

    fn sample_kb() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        kb.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        kb.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        kb.assert_str("San_Francisco", "locatedIn", "United_States");
        kb.assert_str("Apple_Inc", "headquarteredIn", "Cupertino");
        kb
    }

    #[test]
    fn add_and_query_by_every_shape() {
        let kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let founded = kb.term("founded").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();

        assert_eq!(kb.matching(&TriplePattern::with_s(jobs)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_p(founded)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_o(apple)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_sp(jobs, founded)).len(), 1);
        assert_eq!(kb.matching(&TriplePattern::with_po(founded, apple)).len(), 2);
        assert_eq!(kb.matching(&TriplePattern::with_so(jobs, apple)).len(), 1);
        assert_eq!(kb.matching(&TriplePattern::any()).len(), 5);
        let t = Triple::new(jobs, founded, apple);
        assert_eq!(kb.matching(&TriplePattern::exact(t)).len(), 1);
    }

    #[test]
    fn duplicate_adds_merge_by_noisy_or() {
        let mut kb = KnowledgeBase::new();
        let s = kb.intern("s");
        let p = kb.intern("p");
        let o = kb.intern("o");
        let t = Triple::new(s, p, o);
        kb.add_fact(Fact { triple: t, confidence: 0.5, source: SourceId::DEFAULT, span: None });
        kb.add_fact(Fact { triple: t, confidence: 0.5, source: SourceId::DEFAULT, span: None });
        assert_eq!(kb.len(), 1);
        let f = kb.fact_for(&t).unwrap();
        assert!((f.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_keeps_first_known_span() {
        let mut kb = KnowledgeBase::new();
        let t = Triple::new(kb.intern("a"), kb.intern("r"), kb.intern("b"));
        let span = TimeSpan::at(TimePoint::year(1976));
        kb.add_fact(Fact { triple: t, confidence: 0.4, source: SourceId::DEFAULT, span: None });
        kb.add_fact(Fact {
            triple: t,
            confidence: 0.4,
            source: SourceId::DEFAULT,
            span: Some(span),
        });
        assert_eq!(kb.fact_for(&t).unwrap().span, Some(span));
    }

    #[test]
    fn retract_hides_from_queries_and_resurrection_works() {
        let mut kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let founded = kb.term("founded").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();
        let t = Triple::new(jobs, founded, apple);

        assert!(kb.retract(t));
        assert!(!kb.contains(&t));
        assert_eq!(kb.len(), 4);
        assert_eq!(kb.matching(&TriplePattern::with_p(founded)).len(), 1);
        assert!(!kb.retract(t), "double retract is a no-op");

        // Re-adding resurrects the fact.
        kb.add_fact(Fact { triple: t, confidence: 0.9, source: SourceId::DEFAULT, span: None });
        assert!(kb.contains(&t));
        assert_eq!(kb.len(), 5);
    }

    #[test]
    fn merge_after_read_keeps_cached_indexes_correct() {
        let mut kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let founded = kb.term("founded").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();
        let t = Triple::new(jobs, founded, apple);
        // Warm the cache, then merge evidence into an existing fact:
        // the cache survives, and queries see the merged confidence.
        assert_eq!(kb.matching(&TriplePattern::any()).len(), 5);
        kb.add_fact(Fact { triple: t, confidence: 0.5, source: SourceId::DEFAULT, span: None });
        assert_eq!(kb.matching(&TriplePattern::any()).len(), 5);
        assert!(kb.fact_for(&t).unwrap().confidence > 0.999);
        // A structural add after a warm read shows up too.
        kb.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        assert_eq!(kb.matching(&TriplePattern::any()).len(), 6);
    }

    #[test]
    fn path_join_composes_relations() {
        let kb = sample_kb();
        let born = kb.term("bornIn").unwrap();
        let located = kb.term("locatedIn").unwrap();
        let pairs = kb.path_join(born, located);
        assert_eq!(pairs.len(), 1);
        let (s, o) = pairs[0];
        assert_eq!(kb.resolve(s), Some("Steve_Jobs"));
        assert_eq!(kb.resolve(o), Some("United_States"));
    }

    #[test]
    fn degree_and_neighbors() {
        let kb = sample_kb();
        let apple = kb.term("Apple_Inc").unwrap();
        assert_eq!(kb.degree(apple), 3);
        let names: Vec<_> =
            kb.neighbors(apple).into_iter().map(|t| kb.resolve(t).unwrap().to_string()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"Steve_Jobs".to_string()));
        assert!(names.contains(&"Cupertino".to_string()));
    }

    #[test]
    fn sources_register_and_resolve() {
        let mut kb = KnowledgeBase::new();
        assert_eq!(kb.source_name(SourceId::DEFAULT), Some("asserted"));
        let a = kb.register_source("wiki");
        let b = kb.register_source("wiki");
        assert_eq!(a, b);
        assert_eq!(kb.source_name(a), Some("wiki"));
        assert_eq!(kb.sources().count(), 2);
    }

    #[test]
    fn count_matching_agrees_with_matching() {
        let kb = sample_kb();
        let jobs = kb.term("Steve_Jobs").unwrap();
        let apple = kb.term("Apple_Inc").unwrap();
        for pat in [
            TriplePattern::any(),
            TriplePattern::with_s(jobs),
            TriplePattern::with_o(apple),
            TriplePattern::with_so(jobs, apple),
        ] {
            assert_eq!(kb.count_matching(&pat), kb.matching(&pat).len());
        }
    }

    #[test]
    fn stats_reflect_contents() {
        let mut kb = sample_kb();
        let t = kb.matching_triples(&TriplePattern::any())[0];
        kb.set_span(t, TimeSpan::since(TimePoint::year(1976)));
        let st = kb.stats();
        assert_eq!(st.facts, 5);
        assert_eq!(st.predicates, 4);
        assert_eq!(st.temporal_facts, 1);
        assert!(st.mean_confidence > 0.99);
    }

    #[test]
    fn matching_at_filters_by_validity() {
        use crate::time::TimePoint;
        let mut kb = KnowledgeBase::new();
        let p = kb.intern("worksAt");
        let (a, b, acme) = (kb.intern("A"), kb.intern("B"), kb.intern("Acme"));
        kb.add_triple(a, p, acme);
        kb.set_span(
            Triple::new(a, p, acme),
            TimeSpan::between(TimePoint::year(1990), TimePoint::year(1995)).unwrap(),
        );
        kb.add_triple(b, p, acme); // timeless
        let pat = TriplePattern::with_p(p);
        assert_eq!(kb.matching_at(&pat, &TimePoint::year(1992)).len(), 2);
        assert_eq!(kb.matching_at(&pat, &TimePoint::year(2000)).len(), 1);
        let only = kb.matching_at(&pat, &TimePoint::year(2000));
        assert_eq!(only[0].triple.s, b);
    }

    #[test]
    fn predicate_histogram_counts_live_facts() {
        let mut kb = sample_kb();
        let hist = kb.predicate_histogram();
        assert_eq!(hist[0], ("founded".to_string(), 2));
        assert_eq!(hist.len(), 4);
        let t = kb.matching_triples(&TriplePattern::with_p(kb.term("founded").unwrap()))[0];
        kb.retract(t);
        let hist = kb.predicate_histogram();
        assert_eq!(hist.iter().find(|(p, _)| p == "founded").unwrap().1, 1);
    }

    #[test]
    fn iter_returns_all_live_facts_in_spo_order() {
        let mut kb = sample_kb();
        let all: Vec<Triple> = kb.iter().map(|f| f.triple).collect();
        assert_eq!(all.len(), 5);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        kb.retract(all[0]);
        assert_eq!(kb.iter().count(), 4);
    }

    #[test]
    fn snapshot_answers_like_the_live_store() {
        let kb = sample_kb();
        let snap = kb.snapshot();
        let jobs = kb.term("Steve_Jobs").unwrap();
        assert_eq!(snap.len(), kb.len());
        assert_eq!(
            snap.matching_triples(&TriplePattern::with_s(jobs)),
            kb.matching_triples(&TriplePattern::with_s(jobs)),
        );
        // into_snapshot gives the same view without cloning.
        let frozen = kb.into_snapshot();
        assert_eq!(frozen.len(), snap.len());
        assert_eq!(frozen.stats(), snap.stats());
    }

    #[test]
    fn sharded_ingest_matches_serial_ingest() {
        let mut serial = KnowledgeBase::new();
        let src = serial.register_source("harvest");
        let rows = [("a", "r", "b", 0.9), ("b", "r", "c", 0.8), ("a", "q", "c", 0.7)];
        for &(s, p, o, c) in &rows {
            let t = Triple::new(serial.intern(s), serial.intern(p), serial.intern(o));
            serial.add_fact(Fact { triple: t, confidence: c, source: src, span: None });
        }
        let mut sharded = KnowledgeBase::new();
        let src2 = sharded.register_source("harvest");
        assert_eq!(src, src2);
        let mut shards = vec![KbShard::new(), KbShard::new()];
        for (i, &(s, p, o, c)) in rows.iter().enumerate() {
            shards[i / 2].add(s, p, o, c, src2, None);
        }
        assert_eq!(sharded.merge_shards(shards), 3);
        assert_eq!(
            serial.matching_triples(&TriplePattern::any()),
            sharded.matching_triples(&TriplePattern::any()),
        );
        for (id, term) in serial.dictionary().iter() {
            assert_eq!(sharded.resolve(id), Some(term));
        }
    }
}
