//! The pre-snapshot storage engine — incremental `BTreeSet` permutation
//! indexes — preserved verbatim as [`LegacyKb`].
//!
//! It serves two purposes and is not part of the public read/write
//! surface:
//!
//! 1. **Differential-testing oracle**: the property tests replay random
//!    fact/retract/span sequences into both engines and assert every
//!    pattern, count and time-travel query agrees.
//! 2. **Benchmark baseline**: the Criterion store bench compares frozen
//!    sorted-array range scans against this `BTreeSet` path.

use std::collections::{BTreeSet, HashMap};

use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::pattern::{IndexChoice, TriplePattern};
use crate::time::{TimePoint, TimeSpan};
use crate::Dictionary;

type Key = (TermId, TermId, TermId);

/// The original mutable triple store: `Vec<Fact>` + dedup map + three
/// incrementally-maintained `BTreeSet` permutation indexes.
#[derive(Debug, Default)]
pub struct LegacyKb {
    dict: Dictionary,
    facts: Vec<Fact>,
    by_triple: HashMap<Triple, FactId>,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl LegacyKb {
    /// Creates an empty legacy store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &str) -> TermId {
        self.dict.intern(term)
    }

    /// Looks up an already-interned term.
    pub fn term(&self, term: &str) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Resolves a term id back to its string.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.dict.resolve(id)
    }

    /// Adds a fully-confident fact with default provenance.
    pub fn add_triple(&mut self, s: TermId, p: TermId, o: TermId) -> FactId {
        self.add_fact(Fact::asserted(Triple::new(s, p, o)))
    }

    /// Interns three strings and asserts the triple.
    pub fn assert_str(&mut self, s: &str, p: &str, o: &str) -> FactId {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.add_fact(Fact::asserted(t))
    }

    /// Adds a fact with the original merge semantics (noisy-or
    /// confidence, first-known span, resurrect on re-add).
    pub fn add_fact(&mut self, fact: Fact) -> FactId {
        debug_assert!((0.0..=1.0).contains(&fact.confidence));
        if let Some(&id) = self.by_triple.get(&fact.triple) {
            let existing = &mut self.facts[id.index()];
            let was_retracted = existing.is_retracted();
            existing.confidence = 1.0 - (1.0 - existing.confidence) * (1.0 - fact.confidence);
            if existing.span.is_none() {
                existing.span = fact.span;
            }
            if was_retracted && !existing.is_retracted() {
                let t = existing.triple;
                self.spo.insert(t.spo_key());
                self.pos.insert(t.pos_key());
                self.osp.insert(t.osp_key());
            }
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        let t = fact.triple;
        self.facts.push(fact);
        self.by_triple.insert(t, id);
        self.spo.insert(t.spo_key());
        self.pos.insert(t.pos_key());
        self.osp.insert(t.osp_key());
        id
    }

    /// Retracts a triple (confidence zeroed, removed from indexes).
    pub fn retract(&mut self, t: Triple) -> bool {
        let Some(&id) = self.by_triple.get(&t) else {
            return false;
        };
        let fact = &mut self.facts[id.index()];
        if fact.is_retracted() {
            return false;
        }
        fact.confidence = 0.0;
        self.spo.remove(&t.spo_key());
        self.pos.remove(&t.pos_key());
        self.osp.remove(&t.osp_key());
        true
    }

    /// Sets the temporal scope of an existing triple.
    pub fn set_span(&mut self, t: Triple, span: TimeSpan) -> bool {
        match self.by_triple.get(&t) {
            Some(&id) => {
                self.facts[id.index()].span = Some(span);
                true
            }
            None => false,
        }
    }

    /// Looks up a live fact by triple.
    pub fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        self.by_triple.get(t).map(|id| &self.facts[id.index()]).filter(|f| !f.is_retracted())
    }

    /// Whether the triple is present and live.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&t.spo_key())
    }

    /// Number of live facts.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store holds no live facts.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// All live facts in SPO order (the original per-fact hash-lookup
    /// walk, kept as-is on purpose — it is part of what the satellite
    /// fix is measured against).
    pub fn iter(&self) -> impl Iterator<Item = &Fact> + '_ {
        self.spo.iter().map(move |&(s, p, o)| {
            let id = self.by_triple[&Triple::new(s, p, o)];
            &self.facts[id.index()]
        })
    }

    /// All live facts matching the pattern.
    pub fn matching(&self, pattern: &TriplePattern) -> Vec<&Fact> {
        self.matching_triples(pattern)
            .into_iter()
            .map(|t| self.fact_for(&t).expect("indexed triple must be live"))
            .collect()
    }

    /// Like [`matching`](Self::matching) but returns only the triples.
    pub fn matching_triples(&self, pattern: &TriplePattern) -> Vec<Triple> {
        let choice = pattern.choose_index();
        let (index, (lo, hi)) = match choice {
            IndexChoice::Spo => (&self.spo, range_for(pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, range_for(pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, range_for(pattern.o, pattern.s, pattern.p)),
        };
        let reorder: fn(Key) -> Triple = match choice {
            IndexChoice::Spo => |(s, p, o)| Triple::new(s, p, o),
            IndexChoice::Pos => |(p, o, s)| Triple::new(s, p, o),
            IndexChoice::Osp => |(o, s, p)| Triple::new(s, p, o),
        };
        index.range(lo..=hi).map(|&k| reorder(k)).filter(|t| pattern.matches(t)).collect()
    }

    /// Facts matching the pattern valid at `point`.
    pub fn matching_at(&self, pattern: &TriplePattern, point: &TimePoint) -> Vec<&Fact> {
        self.matching(pattern)
            .into_iter()
            .filter(|f| f.span.is_none_or(|sp| sp.contains(point)))
            .collect()
    }

    /// Count of live facts matching the pattern.
    pub fn count_matching(&self, pattern: &TriplePattern) -> usize {
        let (index, (lo, hi)) = match pattern.choose_index() {
            IndexChoice::Spo => (&self.spo, range_for(pattern.s, pattern.p, pattern.o)),
            IndexChoice::Pos => (&self.pos, range_for(pattern.p, pattern.o, pattern.s)),
            IndexChoice::Osp => (&self.osp, range_for(pattern.o, pattern.s, pattern.p)),
        };
        if pattern.bound_count() == 2 && pattern.p.is_none() {
            let reorder = |(o, s, p): Key| Triple::new(s, p, o);
            index.range(lo..=hi).filter(|&&k| pattern.matches(&reorder(k))).count()
        } else {
            index.range(lo..=hi).count()
        }
    }

    /// Path join with the original per-outer-row `Vec` materialization.
    pub fn path_join(&self, p1: TermId, p2: TermId) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for t1 in self.matching_triples(&TriplePattern::with_p(p1)) {
            for t2 in self.matching_triples(&TriplePattern::with_sp(t1.o, p2)) {
                out.push((t1.s, t2.o));
            }
        }
        out
    }

    /// Degree of a term (subject facts + object facts).
    pub fn degree(&self, t: TermId) -> usize {
        self.count_matching(&TriplePattern::with_s(t))
            + self.count_matching(&TriplePattern::with_o(t))
    }

    /// Neighboring entities of `t`, deduplicated.
    pub fn neighbors(&self, t: TermId) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        for tr in self.matching_triples(&TriplePattern::with_s(t)) {
            out.push(tr.o);
        }
        for tr in self.matching_triples(&TriplePattern::with_o(t)) {
            out.push(tr.s);
        }
        out.sort_unstable();
        out.dedup();
        out.retain(|&x| x != t);
        out
    }
}

/// Builds the inclusive `(lo, hi)` range over a permutation index whose
/// key order is `(a, b, c)`, for bound prefix values `a` and `b`.
fn range_for(a: Option<TermId>, b: Option<TermId>, c: Option<TermId>) -> (Key, Key) {
    const MIN: TermId = TermId(0);
    const MAX: TermId = TermId(u32::MAX);
    match (a, b, c) {
        (None, _, _) => ((MIN, MIN, MIN), (MAX, MAX, MAX)),
        (Some(a), None, _) => ((a, MIN, MIN), (a, MAX, MAX)),
        (Some(a), Some(b), None) => ((a, b, MIN), (a, b, MAX)),
        (Some(a), Some(b), Some(c)) => ((a, b, c), (a, b, c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_answers_basic_shapes() {
        let mut kb = LegacyKb::new();
        kb.assert_str("a", "r", "b");
        kb.assert_str("a", "r", "c");
        kb.assert_str("b", "r", "c");
        let a = kb.term("a").unwrap();
        let r = kb.term("r").unwrap();
        assert_eq!(kb.matching(&TriplePattern::with_s(a)).len(), 2);
        assert_eq!(kb.count_matching(&TriplePattern::with_p(r)), 3);
        assert_eq!(kb.len(), 3);
    }
}
