//! # kb-store
//!
//! An in-memory RDF-style knowledge-base store in the spirit of the
//! SPO-triple model used by YAGO, DBpedia and Freebase, as surveyed in
//! Suchanek & Weikum, *Knowledge Bases in the Age of Big Data Analytics*
//! (VLDB 2014), Section 2.
//!
//! The store provides:
//!
//! * a string [`Dictionary`] interning every term
//!   (entity, class, relation, literal) to a dense [`TermId`];
//! * a triple store ([`KnowledgeBase`]) with three
//!   permutation indexes (SPO, POS, OSP) answering any
//!   [`TriplePattern`] by range scan;
//! * per-fact metadata: extraction [confidence](fact::Fact::confidence),
//!   [provenance source](store::SourceId) and an optional
//!   temporal scope ([`TimeSpan`]);
//! * a class [`Taxonomy`] (subclass-of DAG with
//!   transitive subsumption and cycle rejection);
//! * `owl:sameAs` management via a union-find ([`SameAsStore`])
//!   with canonical representatives;
//! * a multilingual [`LabelStore`] with a reverse
//!   surface-form index (the `means` relation used by NED);
//! * a line-oriented [N-Triples-style text format](ntriples) for
//!   persistence.
//!
//! ```
//! use kb_store::{KnowledgeBase, TriplePattern};
//!
//! let mut kb = KnowledgeBase::new();
//! let jobs = kb.intern("Steve_Jobs");
//! let apple = kb.intern("Apple_Inc");
//! let founded = kb.intern("founded");
//! kb.add_triple(jobs, founded, apple);
//!
//! let hits = kb.matching(&TriplePattern::with_s(jobs));
//! assert_eq!(hits.len(), 1);
//! assert_eq!(kb.resolve(hits[0].triple.o), Some("Apple_Inc"));
//! ```

pub mod dict;
pub mod error;
pub mod fact;
pub mod fuse;
pub mod ids;
pub mod labels;
pub mod ntriples;
pub mod pattern;
pub mod query;
pub mod sameas;
pub mod stats;
pub mod store;
pub mod taxonomy;
pub mod time;

pub use dict::Dictionary;
pub use error::StoreError;
pub use fact::{Fact, Triple};
pub use ids::{FactId, TermId};
pub use labels::LabelStore;
pub use ntriples::LoadReport;
pub use pattern::TriplePattern;
pub use query::{Bindings, Query};
pub use sameas::SameAsStore;
pub use stats::KbStats;
pub use store::{KnowledgeBase, SourceId};
pub use taxonomy::Taxonomy;
pub use time::{TimePoint, TimeSpan};
