//! # kb-store
//!
//! An in-memory RDF-style knowledge-base store in the spirit of the
//! SPO-triple model used by YAGO, DBpedia and Freebase, as surveyed in
//! Suchanek & Weikum, *Knowledge Bases in the Age of Big Data Analytics*
//! (VLDB 2014), Section 2.
//!
//! The storage engine is split into a write side and a read side,
//! mirroring the batch-curation vs read-serving architecture of the
//! industrial KBs the paper surveys:
//!
//! * **Write side** — [`KbBuilder`] accepts batched ingest; parallel
//!   producers fill per-worker [`KbShard`]s (local interning, no shared
//!   lock) that merge deterministically at a barrier.
//! * **Read side** — [`KbBuilder::freeze`] produces an immutable,
//!   `Arc`-shareable [`KbSnapshot`] whose SPO/POS/OSP permutation
//!   indexes are frozen sorted arrays answered by binary-search range
//!   scans.
//! * **Read trait** — every consumer queries through [`KbRead`]
//!   (streaming [`matching_iter`](KbRead::matching_iter),
//!   [`triples_iter`](KbRead::triples_iter), time-travel and path-join
//!   iterators), never against a concrete index layout.
//! * **Façade** — [`KnowledgeBase`] keeps the classic mutable API
//!   (builder + lazily cached frozen indexes) for code that interleaves
//!   reads and writes.
//!
//! The store provides:
//!
//! * a string [`Dictionary`] interning every term
//!   (entity, class, relation, literal) to a dense [`TermId`];
//! * per-fact metadata: extraction [confidence](fact::Fact::confidence),
//!   [provenance source](store::SourceId) and an optional
//!   temporal scope ([`TimeSpan`]);
//! * a class [`Taxonomy`] (subclass-of DAG with
//!   transitive subsumption and cycle rejection);
//! * `owl:sameAs` management via a union-find ([`SameAsStore`])
//!   with canonical representatives;
//! * a multilingual [`LabelStore`] with a reverse
//!   surface-form index (the `means` relation used by NED);
//! * a line-oriented [N-Triples-style text format](ntriples) for
//!   persistence.
//!
//! ```
//! use kb_store::{KbRead, KnowledgeBase, TriplePattern};
//!
//! let mut kb = KnowledgeBase::new();
//! let jobs = kb.intern("Steve_Jobs");
//! let apple = kb.intern("Apple_Inc");
//! let founded = kb.intern("founded");
//! kb.add_triple(jobs, founded, apple);
//!
//! let hits = kb.matching(&TriplePattern::with_s(jobs));
//! assert_eq!(hits.len(), 1);
//! assert_eq!(kb.resolve(hits[0].triple.o), Some("Apple_Inc"));
//!
//! // Freeze an immutable snapshot for read-heavy sharing.
//! let snap = kb.snapshot().into_shared();
//! assert_eq!(snap.count_matching(&TriplePattern::any()), 1);
//! ```

pub mod builder;
pub mod dict;
pub mod error;
pub mod fact;
pub mod frames;
pub mod fuse;
pub mod fx;
pub mod ids;
pub mod labels;
pub mod legacy;
pub mod manifest;
pub mod ntriples;
pub mod partition;
pub mod pattern;
pub mod query;
pub mod read;
pub mod sameas;
pub mod segmap;
pub mod segment;
pub mod segment_io;
pub mod segment_store;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod taxonomy;
pub mod time;
pub mod wal;

pub use builder::{KbBuilder, KbShard};
pub use dict::Dictionary;
pub use error::{SegmentRegion, StoreError};
pub use fact::{Fact, Triple};
pub use frames::{ColFrames, FrameCursor, FrameMeta, FRAME_ROWS};
pub use fx::{FxHashMap, FxHashSet};
pub use ids::{FactId, TermId};
pub use labels::LabelStore;
pub use legacy::LegacyKb;
pub use manifest::Manifest;
pub use ntriples::LoadReport;
pub use partition::{partition_delta, partition_snapshot, subject_partition, PartitionedView};
pub use pattern::TriplePattern;
pub use query::{Bindings, Query};
pub use read::{KbRead, KbReadBatch, PairBatch, PathJoinBatches, PathJoinIter};
pub use sameas::SameAsStore;
pub use segmap::MemoryBudget;
pub use segment::{Compactor, DeltaSegment, FactKind, SegmentStats, SegmentedSnapshot};
pub use segment_store::{RecoveryReport, SegmentStore, StoreOptions};
pub use snapshot::{
    IndexStats, KbSnapshot, LiveFactsIter, MatchBatches, MatchIter, MatchingAtIter, TripleBatch,
    TriplesIter, BATCH_ROWS,
};
pub use stats::KbStats;
pub use store::{KnowledgeBase, SourceId};
pub use taxonomy::Taxonomy;
pub use time::{TimePoint, TimeSpan};
pub use wal::{DurabilityCost, Wal, WalReplay};
