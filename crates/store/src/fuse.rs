//! Knowledge-base fusion: merging stores and canonicalizing through
//! `owl:sameAs` — the Web-of-Linked-Data operation (tutorial §1/§4)
//! that turns entity-linkage output into one coherent KB.

use crate::fact::{Fact, Triple};
use crate::read::KbRead;
use crate::store::KnowledgeBase;

impl KnowledgeBase {
    /// Merges everything from `other` (any [`KbRead`] view — a live
    /// store or a frozen snapshot) into `self`: facts (re-interned,
    /// evidence-combined on duplicates), provenance sources, taxonomy
    /// edges (cycle-rejected edges skipped), sameAs declarations and
    /// labels. Returns the number of *new* facts added (not merged into
    /// existing ones).
    pub fn merge_from<K: KbRead + ?Sized>(&mut self, other: &K) -> usize {
        let mut new_facts = 0usize;
        // Facts.
        for fact in other.iter() {
            let s = other.resolve(fact.triple.s).expect("term resolves in source");
            let p = other.resolve(fact.triple.p).expect("term resolves in source");
            let o = other.resolve(fact.triple.o).expect("term resolves in source");
            let (s, p, o) = (s.to_string(), p.to_string(), o.to_string());
            let source_name = other.source_name(fact.source).unwrap_or("asserted").to_string();
            let triple = Triple::new(self.intern(&s), self.intern(&p), self.intern(&o));
            let existed = self.contains(&triple);
            let source = self.register_source(&source_name);
            self.add_fact(Fact { triple, confidence: fact.confidence, source, span: fact.span });
            if !existed {
                new_facts += 1;
            }
        }
        // Taxonomy edges.
        let edges: Vec<(String, String)> = other
            .taxonomy()
            .edges()
            .map(|(sub, sup)| {
                (
                    other.resolve(sub).expect("class resolves").to_string(),
                    other.resolve(sup).expect("class resolves").to_string(),
                )
            })
            .collect();
        for (sub, sup) in edges {
            let sub = self.intern(&sub);
            let sup = self.intern(&sup);
            let _ = self.taxonomy.add_subclass(sub, sup); // skip cycles
        }
        // sameAs classes.
        for class in other.sameas().classes() {
            let names: Vec<String> =
                class.iter().filter_map(|&t| other.resolve(t).map(str::to_string)).collect();
            for pair in names.windows(2) {
                let a = self.intern(&pair[0]);
                let b = self.intern(&pair[1]);
                self.sameas.declare(a, b);
            }
        }
        // Labels.
        let labels: Vec<(String, String, String)> = other
            .labels()
            .iter()
            .map(|(t, l, form)| {
                (
                    other.resolve(t).expect("term resolves").to_string(),
                    other.labels().lang_tag(l).unwrap_or("und").to_string(),
                    form.to_string(),
                )
            })
            .collect();
        for (term, lang, form) in labels {
            let t = self.intern(&term);
            let l = self.labels.lang(&lang);
            self.labels.add(t, l, &form);
        }
        new_facts
    }

    /// Rewrites every live fact through the sameAs canonicalization:
    /// each subject/object is replaced by its class' canonical term, and
    /// facts that collapse onto existing ones merge their evidence.
    /// Labels of non-canonical terms are copied to the canon. Returns
    /// the number of facts rewritten.
    pub fn canonicalize(&mut self) -> usize {
        let rewrites: Vec<(Triple, Triple, f64, crate::store::SourceId, Option<crate::TimeSpan>)> =
            self.iter()
                .filter_map(|f| {
                    let s = self.sameas.canon(f.triple.s);
                    let o = self.sameas.canon(f.triple.o);
                    if s == f.triple.s && o == f.triple.o {
                        return None;
                    }
                    let new = Triple::new(s, f.triple.p, o);
                    Some((f.triple, new, f.confidence, f.source, f.span))
                })
                .collect();
        let count = rewrites.len();
        for (old, new, confidence, source, span) in rewrites {
            self.retract(old);
            self.add_fact(Fact { triple: new, confidence, source, span });
        }
        // Move labels onto canonical terms.
        let label_moves: Vec<(crate::TermId, String, String)> = self
            .labels
            .iter()
            .filter_map(|(t, l, form)| {
                let canon = self.sameas.canon(t);
                if canon == t {
                    return None;
                }
                let lang = self.labels.lang_tag(l).unwrap_or("und").to_string();
                Some((canon, lang, form.to_string()))
            })
            .collect();
        for (canon, lang, form) in label_moves {
            let l = self.labels.lang(&lang);
            self.labels.add(canon, l, &form);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TriplePattern;

    fn kb_a() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        kb.assert_str("Alan_Varen", "bornIn", "Lundholm");
        let person = kb.intern("person");
        let entity = kb.intern("entity");
        kb.taxonomy.add_subclass(person, entity).unwrap();
        let alan = kb.term("Alan_Varen").unwrap();
        let en = kb.labels.lang("en");
        kb.labels.add(alan, en, "Alan Varen");
        kb
    }

    fn kb_b() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let src = kb.register_source("dump-b");
        let a = kb.intern("A._Varen");
        let works = kb.intern("worksAt");
        let acme = kb.intern("AcmeCo");
        kb.add_fact(Fact {
            triple: Triple::new(a, works, acme),
            confidence: 0.8,
            source: src,
            span: None,
        });
        let en = kb.labels.lang("en");
        kb.labels.add(a, en, "A. Varen");
        kb
    }

    #[test]
    fn merge_brings_facts_sources_taxonomy_and_labels() {
        let mut kb = kb_a();
        let added = kb.merge_from(&kb_b());
        assert_eq!(added, 1);
        assert_eq!(kb.len(), 2);
        let a = kb.term("A._Varen").expect("merged term");
        let works = kb.term("worksAt").unwrap();
        let f = &kb.matching(&TriplePattern::with_sp(a, works))[0];
        assert!((f.confidence - 0.8).abs() < 1e-9);
        assert_eq!(kb.source_name(f.source), Some("dump-b"));
        assert_eq!(kb.labels.candidate_entities("a. varen"), vec![a]);
    }

    #[test]
    fn merge_combines_duplicate_evidence() {
        let mut kb = kb_a();
        let mut dup = KnowledgeBase::new();
        dup.assert_str("Alan_Varen", "bornIn", "Lundholm");
        let added = kb.merge_from(&dup);
        assert_eq!(added, 0, "no new facts — only evidence merged");
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn canonicalize_rewrites_facts_through_sameas() {
        let mut kb = kb_a();
        kb.merge_from(&kb_b());
        // Linkage discovered Alan_Varen ≡ A._Varen.
        let alan = kb.term("Alan_Varen").unwrap();
        let a = kb.term("A._Varen").unwrap();
        kb.sameas.declare(alan, a);
        let canon = kb.sameas.canon(alan);
        let rewritten = kb.canonicalize();
        assert_eq!(rewritten, 1, "the worksAt fact moves to the canon");
        let works = kb.term("worksAt").unwrap();
        let facts = kb.matching(&TriplePattern::with_p(works));
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].triple.s, canon);
        // Labels of both aliases now reach the canonical term.
        let meanings = kb.labels.candidate_entities("A. Varen");
        assert!(meanings.contains(&canon));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let mut kb = kb_a();
        kb.merge_from(&kb_b());
        let alan = kb.term("Alan_Varen").unwrap();
        let a = kb.term("A._Varen").unwrap();
        kb.sameas.declare(alan, a);
        kb.canonicalize();
        assert_eq!(kb.canonicalize(), 0, "second pass must be a no-op");
    }

    #[test]
    fn canonicalize_merges_colliding_facts() {
        let mut kb = KnowledgeBase::new();
        let a = kb.intern("A");
        let b = kb.intern("B");
        let r = kb.intern("r");
        let x = kb.intern("X");
        kb.add_fact(Fact {
            triple: Triple::new(a, r, x),
            confidence: 0.5,
            source: crate::store::SourceId::DEFAULT,
            span: None,
        });
        kb.add_fact(Fact {
            triple: Triple::new(b, r, x),
            confidence: 0.5,
            source: crate::store::SourceId::DEFAULT,
            span: None,
        });
        kb.sameas.declare(a, b);
        kb.canonicalize();
        assert_eq!(kb.len(), 1, "the two facts collapse");
        let canon = kb.sameas.canon(a);
        let f = kb.fact_for(&Triple::new(canon, r, x)).unwrap();
        assert!((f.confidence - 0.75).abs() < 1e-9, "noisy-or merged: {}", f.confidence);
    }

    #[test]
    fn merge_skips_cycle_inducing_taxonomy_edges() {
        let mut kb = kb_a(); // person ⊂ entity
        let mut other = KnowledgeBase::new();
        let entity = other.intern("entity");
        let person = other.intern("person");
        other.taxonomy.add_subclass(entity, person).unwrap(); // reversed!
        kb.merge_from(&other);
        let person = kb.term("person").unwrap();
        let entity = kb.term("entity").unwrap();
        assert!(kb.taxonomy.is_subclass_of(person, entity));
        assert!(!kb.taxonomy.is_subclass_of(entity, person), "cycle edge skipped");
    }
}
