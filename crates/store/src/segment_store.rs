//! The durable segment store: a directory of checksummed segment files
//! plus a delta WAL and an atomically-replaced [`Manifest`], giving the
//! layered [`SegmentedSnapshot`] a home on disk that survives kill-9.
//!
//! ## Directory layout
//!
//! ```text
//! <data-dir>/
//!   MANIFEST              atomic commit point (see manifest module)
//!   base-<gen>.seg        checksummed base segment
//!   delta-<gen>-<seq>.seg sealed delta segments
//!   wal-<gen>.log         delta WAL: installs since the last seal
//!   *.quarantined         corrupt bytes set aside by recovery
//! ```
//!
//! ## Crash-safety argument, operation by operation
//!
//! * **install_delta** — one WAL `append` + fsync. A crash before the
//!   fsync returns leaves a torn tail that replay truncates (the
//!   install never happened); after, the record replays. No other file
//!   is touched, so there is no partial state.
//! * **seal** — (1) write each unsealed delta to its own fsynced
//!   `delta-*.seg`, (2) atomically replace the manifest with the new
//!   delta list and `applied_seq`, (3) truncate the WAL. A crash after
//!   (1) leaves unreferenced files that recovery garbage-collects; a
//!   crash after (2) leaves WAL records with `seq <= applied_seq`,
//!   which replay skips as duplicates of the sealed files.
//! * **compact** — write `base-<gen+1>.seg` and a fresh WAL, then
//!   atomically switch the manifest, then delete the old generation's
//!   files. Every crash window leaves either the old manifest plus
//!   unreferenced new files, or the new manifest plus unreferenced old
//!   files — recovery garbage-collects whichever set lost.
//!
//! ## Recovery policy
//!
//! The manifest and the base segment are load-bearing: corruption there
//! is a hard, typed error ([`StoreError::Corrupt`]) — there is nothing
//! sensible to serve. Everything stacked above degrades gracefully:
//! a corrupt sealed delta or WAL record quarantines itself *and
//! everything after it* (later segments extend the term space of
//! earlier ones, so nothing after a gap can be interpreted), and the
//! store serves the surviving prefix while reporting exactly what was
//! set aside via [`RecoveryReport`] and the
//! `store.recovery.quarantined_segments` counter.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::manifest::{Manifest, MANIFEST_NAME};
use crate::segmap::MemoryBudget;
use crate::segment::{Compactor, DeltaSegment, SegmentedSnapshot};
use crate::segment_io;
use crate::snapshot::KbSnapshot;
use crate::wal::{DurabilityCost, Wal};
use crate::StoreError;

/// Tuning knobs for a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Whether to fsync after every WAL append and file install.
    /// Disabling trades crash durability for speed (`kbkit --no-fsync`).
    pub fsync: bool,
    /// Seal the WAL into standalone delta files once it holds this many
    /// unsealed installs (0 disables auto-seal; call [`SegmentStore::seal`]).
    pub seal_every: usize,
    /// Ceiling, in bytes, on resident lazily-loaded index columns
    /// across every segment this store opens. `None` keeps columns
    /// resident forever once touched (they still load lazily, so open
    /// stays `O(header)`); `Some(n)` spills cold columns back to disk
    /// under the store's clock policy once `n` is exceeded.
    pub memory_budget: Option<usize>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self { fsync: true, seal_every: 8, memory_budget: None }
    }
}

/// What recovery found when opening a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sealed delta segments applied from the manifest.
    pub sealed_deltas: usize,
    /// WAL records replayed (after skipping those already sealed).
    pub wal_replayed: usize,
    /// Bytes of torn WAL tail truncated (normal crash signature).
    pub wal_truncated_bytes: u64,
    /// Files (or WAL tails) set aside as `*.quarantined`.
    pub quarantined: Vec<String>,
    /// Unreferenced leftovers from crashed seals/compactions that were
    /// garbage-collected.
    pub removed_garbage: Vec<String>,
}

impl RecoveryReport {
    /// Whether recovery had to degrade (quarantine anything).
    pub fn degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// A durable, crash-recoverable home for a [`SegmentedSnapshot`].
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    options: StoreOptions,
    manifest: Manifest,
    wal: Wal,
    view: SegmentedSnapshot,
    /// Installs logged to the WAL but not yet sealed into delta files,
    /// kept in memory so `seal` doesn't have to re-read the WAL.
    unsealed: Vec<(u64, Arc<DeltaSegment>)>,
    recovery: RecoveryReport,
    /// The paging budget every lazily opened segment charges against.
    budget: MemoryBudget,
}

fn budget_of(options: &StoreOptions) -> MemoryBudget {
    match options.memory_budget {
        Some(limit) => MemoryBudget::bounded(limit),
        None => MemoryBudget::unbounded(),
    }
}

fn base_name(generation: u64) -> String {
    format!("base-{generation}.seg")
}

fn delta_name(generation: u64, seq: u64) -> String {
    format!("delta-{generation}-{seq}.seg")
}

fn wal_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

/// Renames `path` to `path.quarantined`, falling back to removal if the
/// rename fails; records the quarantined name in `report`.
fn quarantine_file(path: &Path, report: &mut RecoveryReport) {
    let target = quarantined_path(path);
    if std::fs::rename(path, &target).is_err() {
        std::fs::remove_file(path).ok();
    }
    report.quarantined.push(file_name(&target));
}

fn quarantined_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantined");
    path.with_file_name(name)
}

fn file_name(path: &Path) -> String {
    path.file_name().unwrap_or_default().to_string_lossy().into_owned()
}

impl SegmentStore {
    /// Creates a new store at `dir` (which must be empty or absent)
    /// holding `base` as generation 0.
    pub fn create(
        dir: impl AsRef<Path>,
        base: Arc<KbSnapshot>,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_NAME).exists() {
            return Err(StoreError::Io(format!(
                "refusing to create a store over an existing one at {}",
                dir.display()
            )));
        }
        let manifest = Manifest {
            generation: 0,
            applied_seq: 0,
            base: base_name(0),
            deltas: Vec::new(),
            wal: wal_name(0),
            compacted_from: None,
        };
        base.write_segment(dir.join(&manifest.base))?;
        let wal = Wal::create(dir.join(&manifest.wal), 0, options.fsync)?;
        manifest.store(&dir, options.fsync)?;
        let view = SegmentedSnapshot::from_base(base);
        Ok(Self {
            dir,
            options,
            manifest,
            wal,
            view,
            unsealed: Vec::new(),
            recovery: RecoveryReport::default(),
            budget: budget_of(&options),
        })
    }

    /// Opens (and if necessary recovers) the store at `dir` with
    /// default options.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens the store at `dir`, validating every checksum on the way
    /// up: manifest → base → sealed deltas → WAL replay. See the module
    /// docs for the exact degradation policy.
    pub fn open_with(dir: impl AsRef<Path>, options: StoreOptions) -> Result<Self, StoreError> {
        let obs = kb_obs::global();
        let start = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let mut report = RecoveryReport::default();
        let budget = budget_of(&options);

        // 1. Manifest and base segment header are hard requirements.
        //    The base opens *lazily*: only its preamble and region
        //    table are read and validated here, so open cost is
        //    independent of KB size. Corruption in a cold region
        //    surfaces as the same typed error on first access — call
        //    [`SegmentedSnapshot::prefault`] on the view to get the old
        //    validate-everything-at-open behavior back.
        let mut manifest = Manifest::load(&dir)?;
        let base = Arc::new(segment_io::snapshot_open_lazy(&dir.join(&manifest.base), &budget)?);
        let mut view = SegmentedSnapshot::from_base(base);

        // 2. Sealed deltas, in manifest order. The first failure
        //    quarantines that delta, every later one, and the WAL:
        //    nothing stacked above a gap can be interpreted.
        let mut surviving_deltas = Vec::new();
        let mut stack_broken = false;
        let mut unsealed = Vec::new();
        for name in manifest.deltas.clone() {
            if stack_broken {
                quarantine_file(&dir.join(&name), &mut report);
                continue;
            }
            let stacked = segment_io::delta_open_lazy(&dir.join(&name), &budget)
                .map(Arc::new)
                .and_then(|delta| view.try_with_delta(Arc::clone(&delta)).map(|v| (v, delta)));
            match stacked {
                Ok((next, _)) => {
                    view = next;
                    report.sealed_deltas += 1;
                    surviving_deltas.push(name);
                }
                Err(_) => {
                    stack_broken = true;
                    quarantine_file(&dir.join(&name), &mut report);
                }
            }
        }

        // 3. WAL replay. Records sealed into delta files (`seq <=
        //    applied_seq`) are skipped as duplicates; torn tails are
        //    truncated silently (the expected crash signature); damaged
        //    records quarantine themselves and everything after.
        let wal_path = dir.join(&manifest.wal);
        let wal = if stack_broken {
            // The WAL stacks above the broken sealed prefix.
            quarantine_file(&wal_path, &mut report);
            Wal::create(&wal_path, manifest.generation, options.fsync)?
        } else {
            match Wal::replay(&wal_path) {
                Err(_header_damage) => {
                    quarantine_file(&wal_path, &mut report);
                    Wal::create(&wal_path, manifest.generation, options.fsync)?
                }
                Ok(mut replay) => {
                    report.wal_truncated_bytes = replay.torn_bytes;
                    if let Some((_, tail_bytes)) = replay.damage.take() {
                        // Preserve the damaged tail for forensics, then
                        // let `reopen` truncate it away.
                        let all = std::fs::read(&wal_path)?;
                        let tail_start = all.len() - tail_bytes as usize;
                        let qpath = quarantined_path(&wal_path);
                        std::fs::write(&qpath, &all[tail_start..]).ok();
                        report.quarantined.push(file_name(&qpath));
                    }
                    let mut replay_failed_at = None;
                    for (i, (seq, payload)) in replay.records.iter().enumerate() {
                        if *seq <= manifest.applied_seq {
                            continue; // already sealed into a delta file
                        }
                        let stacked = segment_io::delta_from_bytes(payload)
                            .map(Arc::new)
                            .and_then(|d| view.try_with_delta(Arc::clone(&d)).map(|v| (v, d)));
                        match stacked {
                            Ok((next, delta)) => {
                                view = next;
                                report.wal_replayed += 1;
                                unsealed.push((*seq, delta));
                            }
                            Err(_) => {
                                replay_failed_at = Some(i);
                                break;
                            }
                        }
                    }
                    if let Some(i) = replay_failed_at {
                        // A record that frames correctly but decodes or
                        // stacks wrong: quarantine it and the rest.
                        let all = std::fs::read(&wal_path)?;
                        let keep: u64 = replay.records[..i]
                            .iter()
                            .map(|(_, p)| 16 + p.len() as u64)
                            .sum::<u64>()
                            + crate::wal::WAL_HEADER_LEN;
                        let qpath = quarantined_path(&wal_path);
                        std::fs::write(&qpath, &all[keep as usize..]).ok();
                        report.quarantined.push(file_name(&qpath));
                        replay.valid_len = keep;
                        replay.records.truncate(i);
                    }
                    Wal::reopen(&wal_path, &replay, options.fsync)?
                }
            }
        };

        // 4. Self-heal the manifest if the delta stack degraded, so the
        //    next open doesn't trip over the same quarantined files.
        if surviving_deltas.len() != manifest.deltas.len() {
            manifest.deltas = surviving_deltas;
            manifest.store(&dir, options.fsync)?;
        }

        // 5. Garbage-collect unreferenced leftovers from crashed seals
        //    or compactions (and stale temp files from atomic writes).
        let referenced: Vec<String> =
            manifest.referenced_files().into_iter().map(String::from).collect();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                let keep = name == MANIFEST_NAME
                    || name.ends_with(".quarantined")
                    || referenced.iter().any(|r| r == &name);
                if !keep {
                    std::fs::remove_file(entry.path()).ok();
                    report.removed_garbage.push(name);
                }
            }
        }

        obs.counter("store.wal.replayed").add(report.wal_replayed as u64);
        obs.counter("store.recovery.quarantined_segments").add(report.quarantined.len() as u64);
        obs.histogram("store.open_micros").observe(start.elapsed().as_micros() as u64);
        obs.counter("store.opens").inc();

        Ok(Self { dir, options, manifest, wal, view, unsealed, recovery: report, budget })
    }

    /// The paging budget this store's lazily opened segments charge
    /// against. Tests and tooling read residency/fault/spill counts
    /// here rather than from the process-global gauges, which race when
    /// several stores coexist.
    pub fn memory_budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What the last `open` had to do to get here.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The current layered view (cheap clone: `Arc`s all the way down).
    pub fn view(&self) -> SegmentedSnapshot {
        self.view.clone()
    }

    /// Number of installs logged to the WAL but not yet sealed.
    pub fn unsealed_count(&self) -> usize {
        self.unsealed.len()
    }

    /// Durably installs a delta: validates it stacks on the current
    /// view, appends its image to the WAL behind an fsync barrier, then
    /// publishes the new view. Once this returns, the delta survives
    /// kill-9. Auto-seals when `seal_every` is reached.
    pub fn install_delta(
        &mut self,
        delta: Arc<DeltaSegment>,
    ) -> Result<DurabilityCost, StoreError> {
        // Validate the stacking contract *before* writing anything: a
        // delta frozen against the wrong view must not reach the log.
        let next_view = self.view.try_with_delta(Arc::clone(&delta))?;
        let seq = self.wal.last_seq().max(self.manifest.applied_seq) + 1;
        let payload = segment_io::delta_to_bytes(&delta)?;
        let mut cost = self.wal.append(seq, &payload)?;
        self.view = next_view;
        self.unsealed.push((seq, delta));
        if self.options.seal_every > 0 && self.unsealed.len() >= self.options.seal_every {
            cost.add(self.seal()?);
        }
        Ok(cost)
    }

    /// Seals every WAL-resident delta into its own checksummed
    /// `delta-*.seg` file, commits the new file list through the
    /// manifest, and resets the WAL. Idempotent across crashes: until
    /// the manifest rename lands, the WAL remains the source of truth.
    pub fn seal(&mut self) -> Result<DurabilityCost, StoreError> {
        if self.unsealed.is_empty() {
            return Ok(DurabilityCost::default());
        }
        let start = Instant::now();
        let mut bytes = 0u64;
        let mut new_manifest = self.manifest.clone();
        for (seq, delta) in &self.unsealed {
            let name = delta_name(self.manifest.generation, *seq);
            bytes += delta.write_segment(self.dir.join(&name))?;
            new_manifest.deltas.push(name);
            new_manifest.applied_seq = *seq;
        }
        let write_micros = start.elapsed().as_micros() as u64;
        // Commit point: after this rename the delta files are the
        // durable copies and the WAL records become skippable.
        new_manifest.store(&self.dir, self.options.fsync)?;
        self.manifest = new_manifest;
        let fsync_start = Instant::now();
        self.wal = Wal::create(
            self.dir.join(&self.manifest.wal),
            self.manifest.generation,
            self.options.fsync,
        )?;
        self.unsealed.clear();
        kb_obs::global().counter("store.seals").inc();
        Ok(DurabilityCost {
            bytes,
            write_micros,
            fsync_micros: fsync_start.elapsed().as_micros() as u64,
        })
    }

    /// Compacts the layered view into a fresh base segment under the
    /// next generation and retires the old generation's files. Returns
    /// whether compaction ran (it is skipped unless `compactor` says
    /// the stack is worth collapsing, or `force` is set).
    pub fn compact(&mut self, compactor: &Compactor, force: bool) -> Result<bool, StoreError> {
        if !force && !compactor.should_compact(&self.view) {
            return Ok(false);
        }
        if self.view.delta_count() == 0 && self.unsealed.is_empty() {
            return Ok(false);
        }
        let old_files: Vec<String> =
            self.manifest.referenced_files().into_iter().map(String::from).collect();
        let generation = self.manifest.generation + 1;
        let base = Arc::new(self.view.compact());
        let new_manifest = Manifest {
            generation,
            applied_seq: 0,
            base: base_name(generation),
            deltas: Vec::new(),
            wal: wal_name(generation),
            compacted_from: Some(self.manifest.generation),
        };
        base.write_segment(self.dir.join(&new_manifest.base))?;
        let wal = Wal::create(self.dir.join(&new_manifest.wal), generation, self.options.fsync)?;
        // Commit point: the manifest rename switches generations.
        new_manifest.store(&self.dir, self.options.fsync)?;
        self.manifest = new_manifest;
        self.wal = wal;
        self.view = SegmentedSnapshot::from_base(base);
        self.unsealed.clear();
        // Retire the old generation. A crash before this loop finishes
        // just leaves unreferenced files for the next open's GC.
        for name in old_files {
            std::fs::remove_file(self.dir.join(name)).ok();
        }
        kb_obs::global().counter("store.compactions").inc();
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KbBuilder;
    use crate::error::SegmentRegion;
    use crate::fact::{Fact, Triple};
    use crate::ntriples;
    use crate::read::KbRead;
    use crate::TriplePattern;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kbstore-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn no_fsync() -> StoreOptions {
        StoreOptions { fsync: false, seal_every: 0, memory_budget: None }
    }

    fn push_fact(b: &mut KbBuilder, s: &str, p: &str, o: &str, conf: f64, src: &str) {
        let source = b.register_source(src);
        let triple = Triple::new(b.intern(s), b.intern(p), b.intern(o));
        b.add_fact(Fact { triple, confidence: conf, source, span: None });
    }

    fn base_snapshot() -> Arc<KbSnapshot> {
        let mut b = KbBuilder::new();
        push_fact(&mut b, "Einstein", "bornIn", "Ulm", 0.9, "seed");
        push_fact(&mut b, "Einstein", "type", "physicist", 1.0, "seed");
        Arc::new(b.freeze())
    }

    fn delta_on(view: &SegmentedSnapshot, s: &str, p: &str, o: &str) -> Arc<DeltaSegment> {
        let mut b = KbBuilder::new();
        push_fact(&mut b, s, p, o, 0.8, "delta-src");
        Arc::new(b.freeze_delta(view))
    }

    #[test]
    fn create_install_reopen_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        let before = ntriples::to_string(&store.view()).unwrap();
        drop(store);

        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert_eq!(store.recovery_report().wal_replayed, 2);
        assert!(!store.recovery_report().degraded());
        let after = ntriples::to_string(&store.view()).unwrap();
        assert_eq!(before, after, "recovered view must be byte-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seal_then_reopen_skips_sealed_wal_records() {
        let dir = temp_dir("seal");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        store.seal().unwrap();
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        let before = ntriples::to_string(&store.view()).unwrap();
        drop(store);

        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert_eq!(store.recovery_report().sealed_deltas, 1);
        assert_eq!(store.recovery_report().wal_replayed, 1);
        assert_eq!(ntriples::to_string(&store.view()).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_to_last_barrier() {
        let dir = temp_dir("torn");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        let oracle = ntriples::to_string(&store.view()).unwrap();
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        let wal_path = dir.join(wal_name(0));
        drop(store);

        // Tear the last record at every byte boundary: recovery must
        // always land exactly on the d1 barrier.
        let full = std::fs::read(&wal_path).unwrap();
        let replay = Wal::replay(&wal_path).unwrap();
        let keep = crate::wal::WAL_HEADER_LEN as usize + 16 + replay.records[0].1.len();
        for cut in keep..full.len() {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
            assert_eq!(store.recovery_report().wal_replayed, 1, "cut at {cut}");
            assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sealed_delta_quarantines_suffix_and_serves_prefix() {
        let dir = temp_dir("quarantine");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        store.seal().unwrap();
        let oracle = ntriples::to_string(&store.view()).unwrap();
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        store.seal().unwrap();
        drop(store);

        // Rot a byte inside the *second* sealed delta's payload.
        let victim = dir.join(delta_name(0, 2));
        let mut bytes = std::fs::read(&victim).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0xA5;
        std::fs::write(&victim, &bytes).unwrap();

        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        let report = store.recovery_report();
        assert!(report.degraded());
        assert_eq!(report.sealed_deltas, 1, "first delta survives");
        assert!(report.quarantined.iter().any(|f| f.starts_with(&delta_name(0, 2))));
        assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
        // Self-healed: a second open sees a clean store.
        drop(store);
        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert!(!store.recovery_report().degraded());
        assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_base_or_manifest_is_a_hard_typed_error() {
        let dir = temp_dir("hard");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        drop(store);

        // Header damage is still caught *at open* — the lazy reader
        // validates the preamble and region table before returning.
        let base_path = dir.join(base_name(0));
        let good = std::fs::read(&base_path).unwrap();
        let mut bad = good.clone();
        bad[10] ^= 0xA5; // inside header_len of the preamble
        std::fs::write(&base_path, &bad).unwrap();
        assert!(matches!(
            SegmentStore::open_with(&dir, no_fsync()),
            Err(StoreError::Corrupt { .. })
        ));

        // Damage past the header opens fine (regions are cold) but
        // surfaces as the same typed error on prefault / first access.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n / 2] ^= 0xA5;
        std::fs::write(&base_path, &bad).unwrap();
        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert!(matches!(store.view().prefault(), Err(StoreError::Corrupt { .. })));
        drop(store);
        std::fs::write(&base_path, &good).unwrap();

        let manifest_path = dir.join(MANIFEST_NAME);
        let good_m = std::fs::read(&manifest_path).unwrap();
        let mut bad_m = good_m.clone();
        bad_m[good_m.len() / 2] ^= 0xA5;
        std::fs::write(&manifest_path, &bad_m).unwrap();
        assert!(matches!(
            SegmentStore::open_with(&dir, no_fsync()),
            Err(StoreError::Corrupt { region: SegmentRegion::Manifest, .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_switches_generations_and_retires_old_files() {
        let dir = temp_dir("compact");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        store.seal().unwrap();
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        let oracle = ntriples::to_string(&store.view()).unwrap();

        assert!(store.compact(&Compactor::default(), true).unwrap());
        assert_eq!(store.generation(), 1);
        assert_eq!(store.view().delta_count(), 0);
        assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
        assert!(!dir.join(base_name(0)).exists(), "old base retired");
        assert!(!dir.join(wal_name(0)).exists(), "old wal retired");
        drop(store);

        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_seal_kicks_in_at_threshold() {
        let dir = temp_dir("autoseal");
        let options = StoreOptions { fsync: false, seal_every: 2, memory_budget: None };
        let mut store = SegmentStore::create(&dir, base_snapshot(), options).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        assert_eq!(store.unsealed_count(), 1);
        let d2 = delta_on(&store.view(), "Einstein", "wonPrize", "Nobel");
        store.install_delta(d2).unwrap();
        assert_eq!(store.unsealed_count(), 0, "auto-seal fired");
        assert!(dir.join(delta_name(0, 1)).exists());
        assert!(dir.join(delta_name(0, 2)).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_delta_is_rejected_before_touching_the_wal() {
        let dir = temp_dir("mismatch");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        // Freeze a delta against a *different* (larger) view.
        let other = {
            let mut b = KbBuilder::new();
            push_fact(&mut b, "X", "y", "Z", 1.0, "other");
            SegmentedSnapshot::from_base(Arc::new(b.freeze()))
        };
        let stray = delta_on(&other, "W", "v", "U");
        let wal_len_before = std::fs::metadata(dir.join(wal_name(0))).unwrap().len();
        assert!(store.install_delta(stray).is_err());
        let wal_len_after = std::fs::metadata(dir.join(wal_name(0))).unwrap().len();
        assert_eq!(wal_len_before, wal_len_after, "nothing reached the log");
        assert_eq!(store.view().count_matching(&TriplePattern::any()), 2, "view unchanged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_from_crashed_seal_is_collected() {
        let dir = temp_dir("gc");
        let mut store = SegmentStore::create(&dir, base_snapshot(), no_fsync()).unwrap();
        let d1 = delta_on(&store.view(), "Ulm", "locatedIn", "Germany");
        store.install_delta(d1).unwrap();
        drop(store);
        // Simulate a seal that crashed after writing its delta file but
        // before the manifest rename: the file exists, unreferenced.
        let orphan = dir.join(delta_name(0, 1));
        std::fs::write(&orphan, b"half-written seal output").unwrap();
        let stale_tmp = dir.join("base-0.tmp");
        std::fs::write(&stale_tmp, b"stale temp").unwrap();

        let store = SegmentStore::open_with(&dir, no_fsync()).unwrap();
        assert!(!orphan.exists());
        assert!(!stale_tmp.exists());
        assert_eq!(store.recovery_report().removed_garbage.len(), 2);
        assert_eq!(store.recovery_report().wal_replayed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
