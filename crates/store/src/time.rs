//! Temporal scopes for facts.
//!
//! The tutorial's Section 3 ("Temporal and Multilingual Knowledge")
//! motivates attaching *timepoints* to events and *timespans* to facts
//! that hold over an interval (YAGO2-style). We model both with
//! [`TimePoint`] (calendar date at year, year-month or year-month-day
//! granularity) and [`TimeSpan`] (half-open interval with optionally
//! unknown endpoints).

use std::cmp::Ordering;
use std::fmt;

use crate::StoreError;

/// A calendar date at year, month or day granularity.
///
/// `month == 0` means "unknown month" (year granularity); `day == 0`
/// means "unknown day". Ordering treats unknown components as earliest,
/// which gives the conventional sort `1976 < 1976-04 < 1976-04-01`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimePoint {
    /// Calendar year (may be negative for BCE, though the corpus never
    /// generates such dates).
    pub year: i32,
    /// Month 1–12, or 0 when unknown.
    pub month: u8,
    /// Day 1–31, or 0 when unknown.
    pub day: u8,
}

impl TimePoint {
    /// A point at year granularity.
    pub fn year(year: i32) -> Self {
        Self { year, month: 0, day: 0 }
    }

    /// A point at month granularity.
    pub fn year_month(year: i32, month: u8) -> Self {
        debug_assert!((1..=12).contains(&month));
        Self { year, month, day: 0 }
    }

    /// A full date.
    pub fn date(year: i32, month: u8, day: u8) -> Self {
        debug_assert!((1..=12).contains(&month));
        debug_assert!((1..=31).contains(&day));
        Self { year, month, day }
    }

    /// Granularity as a number of specified components (1 = year only,
    /// 2 = year+month, 3 = full date).
    pub fn granularity(&self) -> u8 {
        1 + u8::from(self.month != 0) + u8::from(self.day != 0)
    }

    /// Whether `self` and `other` denote the same date up to the coarser
    /// of their two granularities (so `1976` matches `1976-04-01`).
    pub fn compatible(&self, other: &TimePoint) -> bool {
        if self.year != other.year {
            return false;
        }
        if self.month != 0 && other.month != 0 && self.month != other.month {
            return false;
        }
        if self.day != 0 && other.day != 0 && self.day != other.day {
            return false;
        }
        true
    }

    /// Parses `YYYY`, `YYYY-MM` or `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<TimePoint> {
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = match parts.next() {
            Some(m) => m.parse().ok()?,
            None => return Some(TimePoint::year(year)),
        };
        if !(1..=12).contains(&month) {
            return None;
        }
        let day: u8 = match parts.next() {
            Some(d) => d.parse().ok()?,
            None => return Some(TimePoint::year_month(year, month)),
        };
        if !(1..=31).contains(&day) {
            return None;
        }
        Some(TimePoint::date(year, month, day))
    }
}

impl fmt::Display for TimePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.month, self.day) {
            (0, _) => write!(f, "{}", self.year),
            (m, 0) => write!(f, "{}-{:02}", self.year, m),
            (m, d) => write!(f, "{}-{:02}-{:02}", self.year, m, d),
        }
    }
}

/// A (possibly half-open) validity interval for a fact.
///
/// `begin == None` means "held since an unknown time in the past";
/// `end == None` means "still holds / end unknown".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimeSpan {
    /// First point at which the fact holds, if known.
    pub begin: Option<TimePoint>,
    /// Last point at which the fact holds, if known.
    pub end: Option<TimePoint>,
}

impl TimeSpan {
    /// A fully-known interval. Fails if `end < begin`.
    pub fn between(begin: TimePoint, end: TimePoint) -> Result<Self, StoreError> {
        if end < begin {
            return Err(StoreError::InvalidTimeSpan);
        }
        Ok(Self { begin: Some(begin), end: Some(end) })
    }

    /// An interval starting at `begin` with unknown end.
    pub fn since(begin: TimePoint) -> Self {
        Self { begin: Some(begin), end: None }
    }

    /// An interval ending at `end` with unknown begin.
    pub fn until(end: TimePoint) -> Self {
        Self { begin: None, end: Some(end) }
    }

    /// A single instant (event-style fact).
    pub fn at(point: TimePoint) -> Self {
        Self { begin: Some(point), end: Some(point) }
    }

    /// The completely unknown span.
    pub fn unknown() -> Self {
        Self::default()
    }

    /// Whether any endpoint is known.
    pub fn is_known(&self) -> bool {
        self.begin.is_some() || self.end.is_some()
    }

    /// Whether the two spans can overlap given what is known.
    /// Unknown endpoints are treated as unbounded (optimistic overlap).
    pub fn overlaps(&self, other: &TimeSpan) -> bool {
        let self_starts_after_other_ends = match (self.begin, other.end) {
            (Some(b), Some(e)) => cmp_coarse(&b, &e) == Ordering::Greater,
            _ => false,
        };
        let other_starts_after_self_ends = match (other.begin, self.end) {
            (Some(b), Some(e)) => cmp_coarse(&b, &e) == Ordering::Greater,
            _ => false,
        };
        !(self_starts_after_other_ends || other_starts_after_self_ends)
    }

    /// Whether `point` falls inside the span (unknown endpoints are
    /// unbounded).
    pub fn contains(&self, point: &TimePoint) -> bool {
        if let Some(b) = self.begin {
            if cmp_coarse(point, &b) == Ordering::Less {
                return false;
            }
        }
        if let Some(e) = self.end {
            if cmp_coarse(point, &e) == Ordering::Greater {
                return false;
            }
        }
        true
    }

    /// Parses the serialized form produced by `Display`:
    /// `[begin,end]` where either side may be `?`.
    pub fn parse(s: &str) -> Option<TimeSpan> {
        let inner = s.strip_prefix('[')?.strip_suffix(']')?;
        let (b, e) = inner.split_once(',')?;
        let begin = if b == "?" { None } else { Some(TimePoint::parse(b)?) };
        let end = if e == "?" { None } else { Some(TimePoint::parse(e)?) };
        if let (Some(b), Some(e)) = (begin, end) {
            if e < b {
                return None;
            }
        }
        Some(TimeSpan { begin, end })
    }
}

/// Compares two points at the coarser of their granularities, so that
/// `1976` is neither before nor after `1976-04-01`.
fn cmp_coarse(a: &TimePoint, b: &TimePoint) -> Ordering {
    if a.compatible(b) {
        return Ordering::Equal;
    }
    a.cmp(b)
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.begin {
            Some(b) => write!(f, "[{b},")?,
            None => write!(f, "[?,")?,
        }
        match self.end {
            Some(e) => write!(f, "{e}]"),
            None => write!(f, "?]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ordering_by_granularity() {
        assert!(TimePoint::year(1976) < TimePoint::year_month(1976, 4));
        assert!(TimePoint::year_month(1976, 4) < TimePoint::date(1976, 4, 1));
        assert!(TimePoint::year(1975) < TimePoint::year(1976));
    }

    #[test]
    fn compatibility_ignores_unknown_components() {
        let y = TimePoint::year(1976);
        let d = TimePoint::date(1976, 4, 1);
        assert!(y.compatible(&d));
        assert!(!y.compatible(&TimePoint::year(1977)));
        assert!(!TimePoint::year_month(1976, 3).compatible(&d));
    }

    #[test]
    fn parse_round_trips_all_granularities() {
        for s in ["1976", "1976-04", "1976-04-01"] {
            let p = TimePoint::parse(s).unwrap();
            assert_eq!(p.to_string(), s);
        }
        assert!(TimePoint::parse("1976-13").is_none());
        assert!(TimePoint::parse("1976-00-01").is_none());
        assert!(TimePoint::parse("abcd").is_none());
    }

    #[test]
    fn span_between_rejects_inverted() {
        let a = TimePoint::year(1980);
        let b = TimePoint::year(1970);
        assert_eq!(TimeSpan::between(a, b), Err(StoreError::InvalidTimeSpan));
        assert!(TimeSpan::between(b, a).is_ok());
    }

    #[test]
    fn overlap_semantics() {
        let s70s = TimeSpan::between(TimePoint::year(1970), TimePoint::year(1979)).unwrap();
        let s80s = TimeSpan::between(TimePoint::year(1980), TimePoint::year(1989)).unwrap();
        let s75_85 = TimeSpan::between(TimePoint::year(1975), TimePoint::year(1985)).unwrap();
        assert!(!s70s.overlaps(&s80s));
        assert!(s70s.overlaps(&s75_85));
        assert!(s80s.overlaps(&s75_85));
        // Unknown endpoints are optimistic.
        assert!(TimeSpan::unknown().overlaps(&s70s));
        assert!(TimeSpan::since(TimePoint::year(1985)).overlaps(&s80s));
        assert!(!TimeSpan::since(TimePoint::year(1990)).overlaps(&s80s));
    }

    #[test]
    fn contains_respects_granularity() {
        let span = TimeSpan::between(TimePoint::year(1976), TimePoint::year(1980)).unwrap();
        assert!(span.contains(&TimePoint::date(1976, 1, 1)));
        assert!(span.contains(&TimePoint::year(1980)));
        assert!(!span.contains(&TimePoint::year(1981)));
        // A point inside the begin year matches even though 1976 < 1976-06.
        assert!(span.contains(&TimePoint::year_month(1976, 6)));
    }

    #[test]
    fn span_parse_round_trips() {
        for s in ["[1976,1980]", "[?,1980]", "[1976-04-01,?]", "[?,?]"] {
            let sp = TimeSpan::parse(s).unwrap();
            assert_eq!(sp.to_string(), s);
        }
        assert!(TimeSpan::parse("[1980,1976]").is_none());
        assert!(TimeSpan::parse("1976,1980").is_none());
    }
}
