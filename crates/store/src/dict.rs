//! String interning: every term used in the KB is mapped to a dense
//! [`TermId`] exactly once.
//!
//! The dictionary shares each string between its forward table (id → str)
//! and its reverse map (str → id) via `Arc<str>`, so memory is paid once
//! per distinct term.

use std::sync::Arc;

use crate::fx::FxHashMap;
use crate::TermId;

/// A bidirectional string ↔ [`TermId`] map.
///
/// Ids are issued densely starting at 0 in first-seen order, which makes
/// them usable as vector indexes in downstream per-term tables.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Arc<str>>,
    lookup: FxHashMap<Arc<str>, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary sized for roughly `n` distinct terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            terms: Vec::with_capacity(n),
            lookup: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Interns `term`, returning its id. Idempotent: the same string
    /// always yields the same id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id =
            TermId(u32::try_from(self.terms.len()).expect("dictionary overflow: >u32::MAX terms"));
        let shared: Arc<str> = Arc::from(term);
        self.terms.push(Arc::clone(&shared));
        self.lookup.insert(shared, id);
        id
    }

    /// Rebuilds a dictionary from its forward table (id order). Returns
    /// `None` if the table holds a duplicate term — a loader-side
    /// validation, since a live dictionary can never contain one.
    pub(crate) fn from_terms(terms: Vec<Arc<str>>) -> Option<Self> {
        let mut lookup = FxHashMap::with_capacity_and_hasher(terms.len(), Default::default());
        for (i, term) in terms.iter().enumerate() {
            if lookup.insert(Arc::clone(term), TermId(i as u32)).is_some() {
                return None;
            }
        }
        Some(Self { terms, lookup })
    }

    /// Looks up an already-interned term without inserting.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.lookup.get(term).copied()
    }

    /// Resolves an id back to its string, or `None` if the id was never
    /// issued by this dictionary.
    pub fn resolve(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(|s| s.as_ref())
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms.iter().enumerate().map(|(i, s)| (TermId(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Steve_Jobs");
        let b = d.intern("Steve_Jobs");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("b"), TermId(1));
        assert_eq!(d.intern("a"), TermId(0));
        assert_eq!(d.intern("c"), TermId(2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let id = d.intern("Apple_Inc");
        assert_eq!(d.resolve(id), Some("Apple_Inc"));
        assert_eq!(d.resolve(TermId(999)), None);
    }

    #[test]
    fn get_does_not_insert() {
        let mut d = Dictionary::new();
        assert_eq!(d.get("x"), None);
        assert_eq!(d.len(), 0);
        d.intern("x");
        assert_eq!(d.get("x"), Some(TermId(0)));
    }

    #[test]
    fn iter_yields_everything_in_order() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        let all: Vec<_> = d.iter().map(|(id, s)| (id.0, s.to_string())).collect();
        assert_eq!(all, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn empty_and_unicode_terms_are_fine() {
        let mut d = Dictionary::new();
        let empty = d.intern("");
        let uni = d.intern("Zürich");
        assert_eq!(d.resolve(empty), Some(""));
        assert_eq!(d.resolve(uni), Some("Zürich"));
    }
}
