//! Line-oriented text serialization of a [`KnowledgeBase`].
//!
//! The format is an N-Triples-flavoured TSV designed to be human-diffable
//! and trivially streamable. One record per line, fields tab-separated,
//! with tabs/newlines/backslashes escaped inside terms:
//!
//! ```text
//! # comment
//! T <s> <p> <o> <confidence> <span|-> <source-name>   facts
//! C <sub> <sup>                                       subclass edges
//! S <a> <b>                                           sameAs declarations
//! L <term> <lang> <form>                              labels
//! ```
//!
//! Round-tripping preserves facts (with confidence, span, provenance),
//! taxonomy edges, sameAs classes and labels. Term *ids* are not
//! preserved — terms are re-interned on load — but all structure is.

use std::io::{BufRead, Write};

use crate::fact::{Fact, Triple};
use crate::read::KbRead;
use crate::store::KnowledgeBase;
use crate::time::TimeSpan;
use crate::StoreError;

/// Escapes a term for single-line TSV embedding.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown escapes are an error.
fn unescape(s: &str, line: usize) -> Result<String, StoreError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(StoreError::Parse {
                    line,
                    message: format!(
                        "bad escape sequence \\{}",
                        other.map(String::from).unwrap_or_default()
                    ),
                })
            }
        }
    }
    Ok(out)
}

/// Writes the full KB (any [`KbRead`] view — live store or frozen
/// snapshot) to `w` in the TSV format described in the module docs.
pub fn write_kb<K: KbRead + ?Sized, W: Write>(kb: &K, w: &mut W) -> Result<(), StoreError> {
    writeln!(w, "# kbkit knowledge base dump")?;
    // All sections are emitted in lexicographic *string* order so that a
    // dump is byte-stable across round trips (term ids are reassigned on
    // load, so id order would not be).
    let mut fact_lines: Vec<String> = Vec::new();
    for fact in kb.iter() {
        let s = kb.resolve(fact.triple.s).ok_or(StoreError::UnknownTerm(fact.triple.s))?;
        let p = kb.resolve(fact.triple.p).ok_or(StoreError::UnknownTerm(fact.triple.p))?;
        let o = kb.resolve(fact.triple.o).ok_or(StoreError::UnknownTerm(fact.triple.o))?;
        let span = fact.span.map_or_else(|| "-".to_string(), |sp| sp.to_string());
        let source = kb.source_name(fact.source).unwrap_or("asserted");
        fact_lines.push(format!(
            "T\t{}\t{}\t{}\t{}\t{}\t{}",
            escape(s),
            escape(p),
            escape(o),
            fact.confidence,
            span,
            escape(source)
        ));
    }
    fact_lines.sort_unstable();
    let mut edge_lines: Vec<String> = Vec::new();
    for (sub, sup) in kb.taxonomy().edges() {
        let s = kb.resolve(sub).ok_or(StoreError::UnknownTerm(sub))?;
        let p = kb.resolve(sup).ok_or(StoreError::UnknownTerm(sup))?;
        edge_lines.push(format!("C\t{}\t{}", escape(s), escape(p)));
    }
    edge_lines.sort_unstable();
    let mut same_lines: Vec<String> = Vec::new();
    for class in kb.sameas().classes() {
        // Anchor each class on its lexicographically smallest member so
        // the emitted pairs do not depend on term-id assignment order.
        let mut names: Vec<&str> = Vec::with_capacity(class.len());
        for &member in &class {
            names.push(kb.resolve(member).ok_or(StoreError::UnknownTerm(member))?);
        }
        names.sort_unstable();
        for m in &names[1..] {
            same_lines.push(format!("S\t{}\t{}", escape(names[0]), escape(m)));
        }
    }
    same_lines.sort_unstable();
    let mut label_lines: Vec<String> = Vec::new();
    for (term, lang, form) in kb.labels().iter() {
        let t = kb.resolve(term).ok_or(StoreError::UnknownTerm(term))?;
        let tag = kb.labels().lang_tag(lang).unwrap_or("und");
        label_lines.push(format!("L\t{}\t{}\t{}", escape(t), tag, escape(form)));
    }
    label_lines.sort_unstable();
    for line in fact_lines.iter().chain(&edge_lines).chain(&same_lines).chain(&label_lines) {
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Parses one non-comment, non-blank line into `kb`. Shared by the
/// strict and lossy readers; a failed line leaves `kb` with at most
/// interned terms (no partial facts, edges or labels are added).
fn apply_line(kb: &mut KnowledgeBase, line: &str, lineno: usize) -> Result<(), StoreError> {
    let fields: Vec<&str> = line.split('\t').collect();
    match fields[0] {
        "T" => {
            if fields.len() != 7 {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: format!("fact record needs 7 fields, got {}", fields.len()),
                });
            }
            let confidence: f64 = fields[4].parse().map_err(|_| StoreError::Parse {
                line: lineno,
                message: format!("bad confidence {:?}", fields[4]),
            })?;
            if !(0.0..=1.0).contains(&confidence) {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: format!("confidence {confidence} out of [0,1]"),
                });
            }
            let span = if fields[5] == "-" {
                None
            } else {
                Some(TimeSpan::parse(fields[5]).ok_or_else(|| StoreError::Parse {
                    line: lineno,
                    message: format!("bad time span {:?}", fields[5]),
                })?)
            };
            let s = kb.intern(&unescape(fields[1], lineno)?);
            let p = kb.intern(&unescape(fields[2], lineno)?);
            let o = kb.intern(&unescape(fields[3], lineno)?);
            let source = kb.register_source(&unescape(fields[6], lineno)?);
            kb.add_fact(Fact { triple: Triple::new(s, p, o), confidence, source, span });
        }
        "C" => {
            if fields.len() != 3 {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: "subclass record needs 3 fields".into(),
                });
            }
            let sub = kb.intern(&unescape(fields[1], lineno)?);
            let sup = kb.intern(&unescape(fields[2], lineno)?);
            kb.taxonomy
                .add_subclass(sub, sup)
                .map_err(|e| StoreError::Parse { line: lineno, message: e.to_string() })?;
        }
        "S" => {
            if fields.len() != 3 {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: "sameAs record needs 3 fields".into(),
                });
            }
            let a = kb.intern(&unescape(fields[1], lineno)?);
            let b = kb.intern(&unescape(fields[2], lineno)?);
            kb.sameas.declare(a, b);
        }
        "L" => {
            if fields.len() != 4 {
                return Err(StoreError::Parse {
                    line: lineno,
                    message: "label record needs 4 fields".into(),
                });
            }
            let term = kb.intern(&unescape(fields[1], lineno)?);
            let form = unescape(fields[3], lineno)?;
            let lang = kb.labels.lang(fields[2]);
            kb.labels.add(term, lang, &form);
        }
        other => {
            return Err(StoreError::Parse {
                line: lineno,
                message: format!("unknown record kind {other:?}"),
            })
        }
    }
    Ok(())
}

/// Reads a KB previously written by [`write_kb`]. Unknown record kinds
/// and malformed lines produce a [`StoreError::Parse`] naming the line.
pub fn read_kb<R: BufRead>(r: R) -> Result<KnowledgeBase, StoreError> {
    let mut kb = KnowledgeBase::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        apply_line(&mut kb, &line, i + 1)?;
    }
    Ok(kb)
}

/// What a lossy load recovered and what it dropped.
///
/// Produced by [`read_kb_lossy`] / [`from_str_lossy`] /
/// [`KnowledgeBase::load_ntriples_lossy`]: the kind of accounting a
/// fault-tolerant ingest needs when dumps arrive truncated or corrupted
/// from a crawl or an interrupted writer.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Records successfully applied to the KB.
    pub loaded: usize,
    /// Malformed lines that were skipped: `(line number, error)`.
    pub skipped: Vec<(usize, StoreError)>,
}

impl LoadReport {
    /// Whether every record parsed cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Reads a KB like [`read_kb`], but skips malformed lines instead of
/// aborting, reporting each skip with its line number. I/O errors are
/// still fatal — a broken reader is not a recoverable record.
pub fn read_kb_lossy<R: BufRead>(r: R) -> Result<(KnowledgeBase, LoadReport), StoreError> {
    let mut kb = KnowledgeBase::new();
    let mut report = LoadReport::default();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match apply_line(&mut kb, &line, lineno) {
            Ok(()) => report.loaded += 1,
            Err(e) => report.skipped.push((lineno, e)),
        }
    }
    Ok((kb, report))
}

/// Serializes the KB (any [`KbRead`] view) to an in-memory string.
pub fn to_string<K: KbRead + ?Sized>(kb: &K) -> Result<String, StoreError> {
    let mut buf = Vec::new();
    write_kb(kb, &mut buf)?;
    String::from_utf8(buf).map_err(|e| StoreError::Io(e.to_string()))
}

/// Parses a KB from a string.
pub fn from_str(s: &str) -> Result<KnowledgeBase, StoreError> {
    read_kb(s.as_bytes())
}

/// Parses a KB from a string, skipping malformed lines. See
/// [`read_kb_lossy`].
pub fn from_str_lossy(s: &str) -> Result<(KnowledgeBase, LoadReport), StoreError> {
    read_kb_lossy(s.as_bytes())
}

impl KnowledgeBase {
    /// Loads an N-Triples-style dump, recovering everything that parses
    /// and reporting what didn't. The strict counterpart is
    /// [`from_str`] / [`read_kb`].
    pub fn load_ntriples_lossy(s: &str) -> Result<(Self, LoadReport), StoreError> {
        from_str_lossy(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TriplePattern;
    use crate::store::SourceId;
    use crate::time::TimePoint;

    fn populated() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        let src = kb.register_source("wiki");
        let jobs = kb.intern("Steve_Jobs");
        let apple = kb.intern("Apple_Inc");
        let founded = kb.intern("founded");
        kb.add_fact(Fact {
            triple: Triple::new(jobs, founded, apple),
            confidence: 0.9,
            source: src,
            span: Some(TimeSpan::at(TimePoint::date(1976, 4, 1))),
        });
        let person = kb.intern("person");
        let entity = kb.intern("entity");
        kb.taxonomy.add_subclass(person, entity).unwrap();
        let jobs2 = kb.intern("dbp:Steve_Jobs");
        kb.sameas.declare(jobs, jobs2);
        let en = kb.labels.lang("en");
        kb.labels.add(jobs, en, "Steve Jobs");
        kb.labels.add(jobs, en, "Jobs");
        kb
    }

    #[test]
    fn round_trip_preserves_structure() {
        let kb = populated();
        let text = to_string(&kb).unwrap();
        let kb2 = from_str(&text).unwrap();

        assert_eq!(kb2.len(), 1);
        let jobs = kb2.term("Steve_Jobs").unwrap();
        let founded = kb2.term("founded").unwrap();
        let f = &kb2.matching(&TriplePattern::with_sp(jobs, founded))[0];
        assert!((f.confidence - 0.9).abs() < 1e-9);
        assert_eq!(f.span.unwrap().to_string(), "[1976-04-01,1976-04-01]");
        assert_eq!(kb2.source_name(f.source), Some("wiki"));

        let person = kb2.term("person").unwrap();
        let entity = kb2.term("entity").unwrap();
        assert!(kb2.taxonomy.is_subclass_of(person, entity));

        let jobs2 = kb2.term("dbp:Steve_Jobs").unwrap();
        assert!(kb2.sameas.same(jobs, jobs2));

        assert_eq!(kb2.labels.candidate_entities("jobs"), vec![jobs]);
    }

    #[test]
    fn double_round_trip_is_stable() {
        let kb = populated();
        let a = to_string(&kb).unwrap();
        let b = to_string(&from_str(&a).unwrap()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn terms_with_tabs_and_newlines_survive() {
        let mut kb = KnowledgeBase::new();
        kb.assert_str("weird\tterm", "has\nnewline", "back\\slash");
        let kb2 = from_str(&to_string(&kb).unwrap()).unwrap();
        assert!(kb2.term("weird\tterm").is_some());
        assert!(kb2.term("has\nnewline").is_some());
        assert!(kb2.term("back\\slash").is_some());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let kb = from_str("# hello\n\nT\ta\tb\tc\t1\t-\tasserted\n").unwrap();
        assert_eq!(kb.len(), 1);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = from_str("T\ta\tb\n").unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected {other:?}"),
        }
        let err = from_str("# ok\nX\ta\tb\n").unwrap_err();
        match err {
            StoreError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown record kind"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_confidence_and_span_rejected() {
        assert!(from_str("T\ta\tb\tc\t1.5\t-\tsrc\n").is_err());
        assert!(from_str("T\ta\tb\tc\tNaNx\t-\tsrc\n").is_err());
        assert!(from_str("T\ta\tb\tc\t0.5\t[bad]\tsrc\n").is_err());
    }

    #[test]
    fn default_source_maps_back_to_default_id() {
        let kb = from_str("T\ta\tb\tc\t1\t-\tasserted\n").unwrap();
        let f = kb.iter().next().unwrap();
        assert_eq!(f.source, SourceId::DEFAULT);
    }

    #[test]
    fn lossy_load_skips_bad_lines_and_keeps_good_ones() {
        let text = "# header\n\
                    T\ta\tb\tc\t1\t-\tsrc\n\
                    T\ttruncated\trecord\n\
                    X\tunknown\tkind\n\
                    T\td\te\tf\t0.7\t-\tsrc\n\
                    T\tg\th\ti\t2.5\t-\tsrc\n\
                    L\ta\ten\tLabel A\n";
        // The strict loader refuses the dump outright.
        assert!(from_str(text).is_err());

        let (kb, report) = from_str_lossy(text).unwrap();
        assert_eq!(kb.len(), 2);
        assert!(kb.term("a").is_some() && kb.term("f").is_some());
        assert!(kb.term("g").is_none(), "fact with bad confidence must not load");
        assert_eq!(report.loaded, 3); // two facts + one label
        assert!(!report.is_clean());
        let skipped_lines: Vec<usize> = report.skipped.iter().map(|(l, _)| *l).collect();
        assert_eq!(skipped_lines, vec![3, 4, 6]);
        for (line, err) in &report.skipped {
            match err {
                StoreError::Parse { line: l, .. } => assert_eq!(l, line),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn lossy_load_of_clean_dump_matches_strict() {
        let kb = populated();
        let text = to_string(&kb).unwrap();
        let (lossy, report) = KnowledgeBase::load_ntriples_lossy(&text).unwrap();
        assert!(report.is_clean());
        let strict = from_str(&text).unwrap();
        assert_eq!(lossy.len(), strict.len());
        assert_eq!(to_string(&lossy).unwrap(), to_string(&strict).unwrap());
    }

    #[test]
    fn lossy_load_of_garbage_recovers_nothing_but_survives() {
        let (kb, report) = from_str_lossy("garbage\nmore garbage\tstill\n").unwrap();
        assert_eq!(kb.len(), 0);
        assert_eq!(report.loaded, 0);
        assert_eq!(report.skipped.len(), 2);
    }
}
