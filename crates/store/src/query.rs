//! Conjunctive queries over the triple store — the "semantic search and
//! analytics over entities and relations" the tutorial motivates (§1).
//!
//! **Legacy oracle.** This module is superseded by the `kb-query` crate
//! (`crates/query`), which adds a SPARQL-style surface (`SELECT`,
//! `FILTER`, `OPTIONAL`, `UNION`, aggregates, modifiers), a cost-based
//! join-order planner and a concurrent serving layer. It is kept
//! deliberately simple and unchanged as a *differential testing
//! oracle*: `crates/query/tests/differential.rs` checks both engines
//! produce identical binding sets on randomized KBs and queries. New
//! call sites should use `kb_query`.
//!
//! A [`Query`] is a conjunction of triple patterns whose components are
//! constants or shared variables, in a compact SPARQL-like text form:
//!
//! ```text
//! ?p bornIn ?c . ?c locatedIn Norland . ?p worksAt Nimbus_Systems
//! ```
//!
//! Execution is a backtracking index-nested-loop join with greedy
//! selectivity ordering: at every step the engine picks the remaining
//! pattern with the most bound components (fewest expected matches
//! first), answers it with one permutation-index range scan, and
//! extends the bindings.
//!
//! ```
//! use kb_store::{KbRead, KnowledgeBase};
//! use kb_store::query::query;
//!
//! let mut kb = KnowledgeBase::new();
//! kb.assert_str("Alan", "bornIn", "Lund");
//! kb.assert_str("Lund", "locatedIn", "Norland");
//!
//! let hits = query(&kb, "?p bornIn ?c . ?c locatedIn Norland").unwrap();
//! assert_eq!(hits.len(), 1);
//! assert_eq!(kb.resolve(hits[0].get("p").unwrap()), Some("Alan"));
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::pattern::TriplePattern;
use crate::read::KbRead;
use crate::{StoreError, TermId};

/// A variable or constant in a query pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTerm {
    /// A named variable (`?x`).
    Var(String),
    /// A constant, already resolved to a term id.
    Const(TermId),
}

impl QueryTerm {
    fn as_var(&self) -> Option<&str> {
        match self {
            QueryTerm::Var(v) => Some(v),
            QueryTerm::Const(_) => None,
        }
    }
}

/// One triple pattern with variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    /// Subject position.
    pub s: QueryTerm,
    /// Predicate position.
    pub p: QueryTerm,
    /// Object position.
    pub o: QueryTerm,
}

/// A conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Query {
    /// The conjoined patterns.
    pub patterns: Vec<QueryPattern>,
}

/// One solution: variable name → bound term.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bindings {
    map: HashMap<String, TermId>,
}

impl Bindings {
    /// The term bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<TermId> {
        self.map.get(var).copied()
    }

    /// All `(variable, term)` pairs, sorted by variable name.
    pub fn iter_sorted(&self) -> Vec<(&str, TermId)> {
        let mut v: Vec<(&str, TermId)> = self.map.iter().map(|(k, &t)| (k.as_str(), t)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.iter_sorted().into_iter().map(|(k, t)| format!("?{k}={t}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

impl Query {
    /// Parses the compact text form: patterns separated by `.`, each
    /// with three whitespace-separated components; `?name` denotes a
    /// variable, anything else a constant term that must already exist
    /// in the KB's dictionary.
    pub fn parse<K: KbRead + ?Sized>(kb: &K, text: &str) -> Result<Query, StoreError> {
        let mut patterns = Vec::new();
        for (i, chunk) in text.split('.').enumerate() {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            let parts: Vec<&str> = chunk.split_whitespace().collect();
            if parts.len() != 3 {
                return Err(StoreError::Parse {
                    line: i + 1,
                    message: format!("pattern needs 3 components, got {}: {chunk:?}", parts.len()),
                });
            }
            let mut terms = Vec::with_capacity(3);
            for part in parts {
                let term = if let Some(var) = part.strip_prefix('?') {
                    if var.is_empty() {
                        return Err(StoreError::Parse {
                            line: i + 1,
                            message: "empty variable name".into(),
                        });
                    }
                    QueryTerm::Var(var.to_string())
                } else {
                    let id = kb.term(part).ok_or_else(|| StoreError::Parse {
                        line: i + 1,
                        message: format!("unknown term {part:?}"),
                    })?;
                    QueryTerm::Const(id)
                };
                terms.push(term);
            }
            let o = terms.pop().expect("three terms");
            let p = terms.pop().expect("two terms");
            let s = terms.pop().expect("one term");
            patterns.push(QueryPattern { s, p, o });
        }
        if patterns.is_empty() {
            return Err(StoreError::Parse { line: 1, message: "empty query".into() });
        }
        Ok(Query { patterns })
    }

    /// All distinct variable names, sorted.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars: Vec<&str> = self
            .patterns
            .iter()
            .flat_map(|p| [p.s.as_var(), p.p.as_var(), p.o.as_var()])
            .flatten()
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

/// Executes a query, returning all solutions (deduplicated, in a
/// deterministic order). Works on any [`KbRead`] view — the live store
/// or a frozen snapshot.
pub fn execute<K: KbRead + ?Sized>(kb: &K, query: &Query) -> Vec<Bindings> {
    let mut results = Vec::new();
    let mut used = vec![false; query.patterns.len()];
    let mut bindings = Bindings::default();
    solve(kb, query, &mut used, &mut bindings, &mut results);
    // Deterministic order + dedup (two patterns can yield the same
    // solution through different join orders).
    results.sort_by_key(|b| {
        b.iter_sorted().into_iter().map(|(k, t)| (k.to_string(), t)).collect::<Vec<_>>()
    });
    results.dedup();
    results
}

/// Substitutes current bindings into a pattern, yielding the concrete
/// [`TriplePattern`] and the variable names left free (by position).
fn concretize(pattern: &QueryPattern, bindings: &Bindings) -> (TriplePattern, [Option<String>; 3]) {
    let mut free: [Option<String>; 3] = [None, None, None];
    let resolve = |term: &QueryTerm, slot: usize, free: &mut [Option<String>; 3]| match term {
        QueryTerm::Const(id) => Some(*id),
        QueryTerm::Var(v) => match bindings.get(v) {
            Some(id) => Some(id),
            None => {
                free[slot] = Some(v.clone());
                None
            }
        },
    };
    let s = resolve(&pattern.s, 0, &mut free);
    let p = resolve(&pattern.p, 1, &mut free);
    let o = resolve(&pattern.o, 2, &mut free);
    (TriplePattern { s, p, o }, free)
}

fn solve<K: KbRead + ?Sized>(
    kb: &K,
    query: &Query,
    used: &mut Vec<bool>,
    bindings: &mut Bindings,
    results: &mut Vec<Bindings>,
) {
    // Pick the unused pattern with the most bound components.
    let next = (0..query.patterns.len())
        .filter(|&i| !used[i])
        .max_by_key(|&i| concretize(&query.patterns[i], bindings).0.bound_count());
    let Some(i) = next else {
        results.push(bindings.clone());
        return;
    };
    used[i] = true;
    let (concrete, free) = concretize(&query.patterns[i], bindings);
    // Stream the range scan — no per-step Vec materialization.
    for triple in kb.triples_iter(&concrete) {
        let values = [triple.s, triple.p, triple.o];
        // Bind the free variables; a variable occurring twice in one
        // pattern must take the same value in both positions.
        let mut added: Vec<String> = Vec::new();
        let mut consistent = true;
        for (slot, var) in free.iter().enumerate() {
            let Some(var) = var else { continue };
            match bindings.get(var) {
                Some(existing) if existing != values[slot] => {
                    consistent = false;
                    break;
                }
                Some(_) => {}
                None => {
                    bindings.map.insert(var.clone(), values[slot]);
                    added.push(var.clone());
                }
            }
        }
        if consistent {
            solve(kb, query, used, bindings, results);
        }
        for var in added {
            bindings.map.remove(&var);
        }
    }
    used[i] = false;
}

/// Convenience: parse and execute in one call.
pub fn query<K: KbRead + ?Sized>(kb: &K, text: &str) -> Result<Vec<Bindings>, StoreError> {
    let q = Query::parse(kb, text)?;
    Ok(execute(kb, &q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KnowledgeBase;

    /// People born in cities located in two countries; employments.
    fn sample() -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for (s, p, o) in [
            ("Alan", "bornIn", "Lund"),
            ("Bea", "bornIn", "Lund"),
            ("Cyr", "bornIn", "Tor"),
            ("Lund", "locatedIn", "Norland"),
            ("Tor", "locatedIn", "Grenia"),
            ("Alan", "worksAt", "Acme"),
            ("Cyr", "worksAt", "Acme"),
            ("Acme", "headquarteredIn", "Tor"),
        ] {
            kb.assert_str(s, p, o);
        }
        kb
    }

    #[test]
    fn single_pattern_query() {
        let kb = sample();
        let out = query(&kb, "?p bornIn Lund").unwrap();
        assert_eq!(out.len(), 2);
        let names: Vec<&str> =
            out.iter().map(|b| kb.resolve(b.get("p").unwrap()).unwrap()).collect();
        assert!(names.contains(&"Alan") && names.contains(&"Bea"));
    }

    #[test]
    fn join_across_patterns() {
        let kb = sample();
        let out = query(&kb, "?p bornIn ?c . ?c locatedIn Norland").unwrap();
        assert_eq!(out.len(), 2, "only Lund is in Norland");
        for b in &out {
            assert_eq!(kb.resolve(b.get("c").unwrap()), Some("Lund"));
        }
    }

    #[test]
    fn three_way_join() {
        let kb = sample();
        // People who work at a company headquartered where someone was born.
        let out =
            query(&kb, "?p worksAt ?co . ?co headquarteredIn ?city . ?q bornIn ?city").unwrap();
        assert_eq!(out.len(), 2); // Alan@Acme/Tor/Cyr and Cyr@Acme/Tor/Cyr
        for b in &out {
            assert_eq!(kb.resolve(b.get("city").unwrap()), Some("Tor"));
            assert_eq!(kb.resolve(b.get("q").unwrap()), Some("Cyr"));
        }
    }

    #[test]
    fn variable_predicates_work() {
        let kb = sample();
        let out = query(&kb, "Alan ?r ?x").unwrap();
        assert_eq!(out.len(), 2);
        let rels: Vec<&str> =
            out.iter().map(|b| kb.resolve(b.get("r").unwrap()).unwrap()).collect();
        assert!(rels.contains(&"bornIn") && rels.contains(&"worksAt"));
    }

    #[test]
    fn repeated_variable_within_pattern_requires_equality() {
        let mut kb = sample();
        kb.assert_str("Nar", "likes", "Nar");
        let out = query(&kb, "?x likes ?x").unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(kb.resolve(out[0].get("x").unwrap()), Some("Nar"));
    }

    #[test]
    fn no_solutions_is_empty_not_error() {
        let kb = sample();
        let out = query(&kb, "?p bornIn Grenia").unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn unknown_constants_are_parse_errors() {
        let kb = sample();
        let err = query(&kb, "?p bornIn Atlantis").unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }));
    }

    #[test]
    fn malformed_patterns_are_parse_errors() {
        let kb = sample();
        assert!(query(&kb, "justtwo terms").is_err());
        assert!(query(&kb, "").is_err());
        assert!(query(&kb, "?p bornIn ? ").is_err());
    }

    #[test]
    fn variables_listing() {
        let kb = sample();
        let q = Query::parse(&kb, "?p bornIn ?c . ?c locatedIn Norland").unwrap();
        assert_eq!(q.variables(), vec!["c", "p"]);
    }

    #[test]
    fn results_are_deterministic_and_deduplicated() {
        let kb = sample();
        let a = query(&kb, "?p bornIn ?c . ?c locatedIn ?n").unwrap();
        let b = query(&kb, "?p bornIn ?c . ?c locatedIn ?n").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_renders_bindings() {
        let kb = sample();
        let out = query(&kb, "?p bornIn Tor").unwrap();
        let s = out[0].to_string();
        assert!(s.starts_with('{') && s.contains("?p="));
    }
}
