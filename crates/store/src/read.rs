//! [`KbRead`]: the read surface shared by every view of a knowledge
//! base — the mutable [`KnowledgeBase`](crate::KnowledgeBase) façade
//! and the immutable [`KbSnapshot`](crate::KbSnapshot).
//!
//! Consumers (NED, analytics, query execution, serialization, the CLI)
//! are written against this trait, never against a concrete index
//! layout, so the storage engine can evolve — and callers can switch
//! between the builder-backed façade and frozen snapshots — without
//! touching them.
//!
//! The primitive is [`matching_iter`](KbRead::matching_iter): one
//! contiguous index range scan streamed as `&Fact`s. Everything else
//! (`matching`, counts, `objects`/`subjects`, `degree`, `neighbors`,
//! time-travel, path joins, statistics) is a provided method built on
//! it, so an implementor supplies only storage accessors.

use std::collections::{BTreeSet, HashMap};

use crate::fact::{Fact, Triple};
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::TriplePattern;
use crate::sameas::SameAsStore;
use crate::snapshot::{
    LiveFactsIter, MatchBatches, MatchIter, MatchingAtIter, TriplesIter, BATCH_ROWS,
};
use crate::stats::KbStats;
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimePoint;

/// Read-only access to a knowledge base: terms, facts, pattern
/// queries, taxonomy, sameAs, labels and statistics.
///
/// Term access is exposed as [`term`](Self::term) /
/// [`resolve`](Self::resolve) / [`term_count`](Self::term_count) rather
/// than a concrete dictionary handle, so layered views (a
/// [`SegmentedSnapshot`](crate::SegmentedSnapshot) whose terms span a
/// base dictionary plus per-delta extensions) can implement the trait
/// without materializing one merged dictionary.
///
/// Object-safe except for [`path_join_iter`](Self::path_join_iter)
/// (which must name `Self` in its return type and is therefore gated
/// on `Self: Sized`); `&dyn KbRead` supports the full pattern-query
/// surface.
pub trait KbRead {
    // -- required storage accessors -------------------------------------

    /// Looks up an already-interned term.
    fn term(&self, term: &str) -> Option<TermId>;

    /// Resolves a term id back to its string.
    fn resolve(&self, id: TermId) -> Option<&str>;

    /// Number of distinct terms interned in this view.
    fn term_count(&self) -> usize;

    /// Subclass-of DAG over class terms.
    fn taxonomy(&self) -> &Taxonomy;

    /// owl:sameAs equivalence classes.
    fn sameas(&self) -> &SameAsStore;

    /// Multilingual labels and the reverse surface-form index.
    fn labels(&self) -> &LabelStore;

    /// Resolves a provenance source id back to its name.
    fn source_name(&self, id: SourceId) -> Option<&str>;

    /// Looks up a fact by id (retracted facts remain addressable).
    fn fact(&self, id: FactId) -> Option<&Fact>;

    /// Looks up a live fact by triple — `O(1)` via the dedup map, so
    /// bulk existence checks (e.g. KB fusion) never touch the indexes.
    fn fact_for(&self, t: &Triple) -> Option<&Fact>;

    /// Number of live (non-retracted) facts.
    fn len(&self) -> usize;

    /// Iterates over all live facts in fact-table (insertion) order —
    /// the cheapest full scan, used by whole-KB aggregation that needs
    /// no particular order. On a segmented view the base facts stream
    /// first, then each delta's, with shadowed and retracted entries
    /// skipped.
    fn facts(&self) -> LiveFactsIter<'_>;

    /// Streams the live facts matching `pattern` in permutation-index
    /// order — one binary-searched contiguous range scan, no
    /// allocation.
    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_>;

    /// Faults in and verifies any lazily loaded regions backing this
    /// view, surfacing cold corruption as a typed error instead of a
    /// mid-query panic. A no-op (always `Ok`) for fully resident views.
    fn prefault(&self) -> Result<(), crate::StoreError> {
        Ok(())
    }

    // -- provided: facts ------------------------------------------------

    /// Whether the store holds no live facts.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the triple is present and live.
    fn contains(&self, t: &Triple) -> bool {
        self.fact_for(t).is_some()
    }

    /// Iterates over all live facts in SPO order (streaming).
    fn iter(&self) -> MatchIter<'_> {
        self.matching_iter(&TriplePattern::any())
    }

    // -- provided: queries ----------------------------------------------

    /// All live facts matching the pattern, materialized. Prefer
    /// [`matching_iter`](Self::matching_iter) in hot paths.
    fn matching(&self, pattern: &TriplePattern) -> Vec<&Fact> {
        self.matching_iter(pattern).collect()
    }

    /// Like [`matching`](Self::matching) but returns only the triples.
    fn matching_triples(&self, pattern: &TriplePattern) -> Vec<Triple> {
        self.triples_iter(pattern).collect()
    }

    /// Streams the triples matching `pattern`.
    fn triples_iter(&self, pattern: &TriplePattern) -> TriplesIter<'_> {
        TriplesIter(self.matching_iter(pattern))
    }

    /// Count of live facts matching the pattern — `O(log n)` for every
    /// shape except `s?o`, with no result allocation.
    fn count_matching(&self, pattern: &TriplePattern) -> usize {
        self.matching_iter(pattern).exact_count()
    }

    /// Facts matching the pattern that are valid at `point`: facts with
    /// no temporal scope always qualify (they are assumed timeless);
    /// scoped facts qualify when their span contains the point — the
    /// time-travel query of YAGO2-style temporal KBs.
    fn matching_at(&self, pattern: &TriplePattern, point: &TimePoint) -> Vec<&Fact> {
        self.matching_at_iter(pattern, point).collect()
    }

    /// Streaming form of [`matching_at`](Self::matching_at).
    fn matching_at_iter(&self, pattern: &TriplePattern, point: &TimePoint) -> MatchingAtIter<'_> {
        MatchingAtIter { inner: self.matching_iter(pattern), point: *point }
    }

    /// All objects `o` such that `(s, p, o)` is a live fact.
    fn objects(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.triples_iter(&TriplePattern::with_sp(s, p)).map(|t| t.o).collect()
    }

    /// All subjects `s` such that `(s, p, o)` is a live fact.
    fn subjects(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.triples_iter(&TriplePattern::with_po(p, o)).map(|t| t.s).collect()
    }

    /// Two-pattern join on a shared variable: all `(x, y)` pairs such
    /// that `(x, p1, m)` and `(m, p2, y)` both hold for some `m` (a
    /// path join, e.g. "people born in cities located in country Y").
    fn path_join(&self, p1: TermId, p2: TermId) -> Vec<(TermId, TermId)>
    where
        Self: Sized,
    {
        self.path_join_iter(p1, p2).collect()
    }

    /// Streaming form of [`path_join`](Self::path_join): the inner
    /// range scan is opened lazily per outer fact, so no intermediate
    /// `Vec` is built. Pair order is identical to the materialized
    /// form.
    fn path_join_iter(&self, p1: TermId, p2: TermId) -> PathJoinIter<'_, Self>
    where
        Self: Sized,
    {
        PathJoinIter {
            kb: self,
            outer: self.matching_iter(&TriplePattern::with_p(p1)),
            p2,
            inner: None,
        }
    }

    /// Degree of a term: number of live facts where it appears as
    /// subject plus those where it appears as object. Used by NED
    /// coherence and popularity priors.
    fn degree(&self, t: TermId) -> usize {
        self.count_matching(&TriplePattern::with_s(t))
            + self.count_matching(&TriplePattern::with_o(t))
    }

    /// Neighboring entities of `t` (subjects/objects of facts touching
    /// it, excluding `t` itself), deduplicated.
    fn neighbors(&self, t: TermId) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        out.extend(self.triples_iter(&TriplePattern::with_s(t)).map(|tr| tr.o));
        out.extend(self.triples_iter(&TriplePattern::with_o(t)).map(|tr| tr.s));
        out.sort_unstable();
        out.dedup();
        out.retain(|&x| x != t);
        out
    }

    // -- provided: statistics -------------------------------------------

    /// Per-predicate fact counts, sorted by descending count then name —
    /// the relation histogram reported alongside KB statistics. Walks
    /// the fact table directly (no index or hash lookups).
    fn predicate_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<TermId, usize> = HashMap::new();
        for f in self.facts() {
            *counts.entry(f.triple.p).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .filter_map(|(p, n)| self.resolve(p).map(|s| (s.to_string(), n)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Computes summary statistics over the current contents. A single
    /// pass over the fact table — no per-fact index traffic.
    fn stats(&self) -> KbStats {
        let mut distinct_subjects: BTreeSet<TermId> = BTreeSet::new();
        let mut distinct_predicates: BTreeSet<TermId> = BTreeSet::new();
        let mut conf_sum = 0.0;
        let mut temporal = 0usize;
        for f in self.facts() {
            distinct_subjects.insert(f.triple.s);
            distinct_predicates.insert(f.triple.p);
            conf_sum += f.confidence;
            if f.span.is_some() {
                temporal += 1;
            }
        }
        let n = self.len();
        KbStats {
            terms: self.term_count(),
            facts: n,
            subjects: distinct_subjects.len(),
            predicates: distinct_predicates.len(),
            classes: self.taxonomy().class_count(),
            subclass_edges: self.taxonomy().edge_count(),
            sameas_classes: self.sameas().class_count(),
            labels: self.labels().label_count(),
            temporal_facts: temporal,
            mean_confidence: if n == 0 { 0.0 } else { conf_sum / n as f64 },
        }
    }
}

/// Vectorized extension of [`KbRead`]: the same pattern queries, but
/// emitting columnar batches of ~[`BATCH_ROWS`] rows instead of single
/// tuples. Blanket-implemented for every `KbRead`, so any view —
/// monolithic snapshot, segmented stack, mutable façade — serves
/// batches; only the monolithic unfiltered path is specially
/// vectorized (decoded frame windows spliced straight into the output
/// columns), the rest fall back to the tuple merge internally.
pub trait KbReadBatch: KbRead {
    /// Batch form of [`KbRead::matching_iter`]: columnar
    /// [`TripleBatch`](crate::snapshot::TripleBatch)es of matching
    /// triples, in the same order the tuple iterator yields them.
    fn matching_batches(&self, pattern: &TriplePattern) -> MatchBatches<'_> {
        MatchBatches::new(self.matching_iter(pattern))
    }

    /// Batch form of [`KbRead::path_join_iter`]: `(x, y)` pair columns
    /// in the same order the tuple iterator yields them.
    fn path_join_batches(&self, p1: TermId, p2: TermId) -> PathJoinBatches<'_, Self>
    where
        Self: Sized,
    {
        PathJoinBatches { inner: self.path_join_iter(p1, p2) }
    }
}

impl<K: KbRead + ?Sized> KbReadBatch for K {}

/// A columnar batch of join pairs: two parallel `TermId` columns, at
/// most [`BATCH_ROWS`] rows.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PairBatch {
    /// Left (outer) column.
    pub a: Vec<TermId>,
    /// Right (inner) column.
    pub b: Vec<TermId>,
}

impl PairBatch {
    /// An empty batch with [`BATCH_ROWS`] capacity per column.
    pub fn new() -> Self {
        Self { a: Vec::with_capacity(BATCH_ROWS), b: Vec::with_capacity(BATCH_ROWS) }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Drops all rows, keeping capacity.
    pub fn clear(&mut self) {
        self.a.clear();
        self.b.clear();
    }
}

/// Batch form of [`PathJoinIter`]: chunks the streaming path join into
/// columnar [`PairBatch`]es. Returned by
/// [`KbReadBatch::path_join_batches`].
#[derive(Debug)]
pub struct PathJoinBatches<'a, K: ?Sized> {
    inner: PathJoinIter<'a, K>,
}

impl<K: KbRead> PathJoinBatches<'_, K> {
    /// Fills `out` (cleared first) with the next batch. Returns `false`
    /// when the join is exhausted and no rows were produced.
    pub fn next_batch(&mut self, out: &mut PairBatch) -> bool {
        out.clear();
        while out.len() < BATCH_ROWS {
            match self.inner.next() {
                Some((x, y)) => {
                    out.a.push(x);
                    out.b.push(y);
                }
                None => break,
            }
        }
        !out.is_empty()
    }
}

/// Streaming path join: for each outer fact `(x, p1, m)` an inner
/// range scan `(m, p2, ?)` is opened lazily; yields `(x, y)` pairs in
/// the same order the nested materialized loops would.
#[derive(Debug)]
pub struct PathJoinIter<'a, K: ?Sized> {
    kb: &'a K,
    outer: MatchIter<'a>,
    p2: TermId,
    inner: Option<(TermId, MatchIter<'a>)>,
}

impl<K: KbRead + ?Sized> Iterator for PathJoinIter<'_, K> {
    type Item = (TermId, TermId);

    fn next(&mut self) -> Option<(TermId, TermId)> {
        loop {
            if let Some((x, inner)) = &mut self.inner {
                if let Some(f) = inner.next() {
                    return Some((*x, f.triple.o));
                }
            }
            let f1 = self.outer.next()?;
            self.inner = Some((
                f1.triple.s,
                self.kb.matching_iter(&TriplePattern::with_sp(f1.triple.o, self.p2)),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KbBuilder, KbSnapshot};

    fn snap() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        b.assert_str("Apple_Inc", "headquarteredIn", "Cupertino");
        b.freeze()
    }

    #[test]
    fn trait_is_object_safe_for_pattern_queries() {
        let s = snap();
        let dyn_kb: &dyn KbRead = &s;
        let jobs = dyn_kb.term("Steve_Jobs").unwrap();
        assert_eq!(dyn_kb.matching(&TriplePattern::with_s(jobs)).len(), 2);
        assert_eq!(dyn_kb.degree(jobs), 2);
        assert_eq!(dyn_kb.stats().facts, 5);
    }

    #[test]
    fn path_join_streams_in_nested_loop_order() {
        let s = snap();
        let born = s.term("bornIn").unwrap();
        let located = s.term("locatedIn").unwrap();
        let streamed: Vec<_> = s.path_join_iter(born, located).collect();
        assert_eq!(streamed, s.path_join(born, located));
        assert_eq!(streamed.len(), 1);
        assert_eq!(s.resolve(streamed[0].0), Some("Steve_Jobs"));
        assert_eq!(s.resolve(streamed[0].1), Some("United_States"));
    }

    #[test]
    fn path_join_batches_agree_with_tuple_pairs() {
        let s = snap();
        let born = s.term("bornIn").unwrap();
        let located = s.term("locatedIn").unwrap();
        let tuple = s.path_join(born, located);
        let mut pairs = Vec::new();
        let mut batches = s.path_join_batches(born, located);
        let mut buf = PairBatch::new();
        while batches.next_batch(&mut buf) {
            pairs.extend(buf.a.iter().copied().zip(buf.b.iter().copied()));
        }
        assert_eq!(pairs, tuple);
    }

    #[test]
    fn facts_table_scan_agrees_with_index_scan() {
        let mut b = KbBuilder::new();
        b.assert_str("c", "r", "d");
        b.assert_str("a", "r", "b");
        let t = Triple::new(b.term("c").unwrap(), b.term("r").unwrap(), b.term("d").unwrap());
        b.retract(t);
        let s = b.freeze();
        let table: Vec<Triple> = s.facts().map(|f| f.triple).collect();
        let mut indexed: Vec<Triple> = s.iter().map(|f| f.triple).collect();
        assert_eq!(table.len(), 1);
        indexed.sort();
        let mut sorted_table = table.clone();
        sorted_table.sort();
        assert_eq!(indexed, sorted_table);
    }
}
