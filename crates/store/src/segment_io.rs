//! The on-disk segment format: versioned, checksummed binary images of
//! [`KbSnapshot`] base segments and [`DeltaSegment`] increments.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ preamble (16 B): magic "KBSG"/"KBDS" · version u32           │
//! │                  header_len u32 · header_crc u32             │
//! ├──────────────────────────────────────────────────────────────┤
//! │ header: region_count u32, then per region                    │
//! │         tag u8 · offset u64 · len u64 · crc u32              │
//! ├──────────────────────────────────────────────────────────────┤
//! │ regions, contiguous, each independently CRC-32 checksummed:  │
//! │   base:  dictionary · sources · facts · frames ·             │
//! │          taxonomy · sameAs · labels                          │
//! │   delta: delta-meta · dictionary · sources · facts · kinds · │
//! │          frames                                              │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Version 2 (current) serializes the permutation indexes as the
//! **frames** region: the fifteen delta/bitpacked [`ColFrames`] columns
//! exactly as they live in memory, so opening a segment installs the
//! compressed index without re-encoding. Version 1 stored raw fact-id
//! permutations plus offset buckets; the reader still accepts v1 images
//! (re-deriving and compressing the columns on open), and hidden `_v1`
//! writers are retained so compatibility is testable forever.
//!
//! Two deliberate format choices keep cold-start cheap and recovery
//! honest:
//!
//! * **Redundant data is validated, never trusted.** v2 key columns are
//!   checked against the fact table, sortedness is verified, and offset
//!   buckets must equal a recomputed prefix sum — all in `O(n)`, with
//!   no sorting or re-compression on the open path.
//! * **Nothing derivable is trusted.** Lookup maps, live counts and
//!   delta counters are recomputed (or checked against a recomputation)
//!   on load, so a reader can never be bit-flipped into a silently
//!   wrong KB: every failure is a typed [`StoreError::Corrupt`] naming
//!   the damaged [`SegmentRegion`].

use std::io::Write as _;
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

use crate::builder::KbCore;
use crate::error::SegmentRegion;
use crate::fact::{Fact, Triple};
use crate::frames::{ColFrames, FrameMeta};
use crate::fx::FxHashMap;
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::sameas::SameAsStore;
use crate::segmap::{ColSlot, FrameRegion, MemoryBudget, SegmentSource, FRAME_COLS};
use crate::segment::{DeltaSegment, FactKind};
use crate::snapshot::{EagerBase, FrozenIndexes, KbSnapshot, LazyBase, LazyIndexes, PermFrames};
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;
use crate::time::TimeSpan;
use crate::{Dictionary, StoreError};

/// Magic for a base (full snapshot) segment file.
pub const MAGIC_BASE: [u8; 4] = *b"KBSG";
/// Magic for a delta segment file.
pub const MAGIC_DELTA: [u8; 4] = *b"KBDS";
/// Current format version (compressed frames region). Readers accept
/// this and [`FORMAT_VERSION_V1`]; anything else is rejected.
pub const FORMAT_VERSION: u32 = 2;
/// The original format version: raw permutations + offset buckets.
pub const FORMAT_VERSION_V1: u32 = 1;

const PREAMBLE_LEN: usize = 16;
const REGION_ENTRY_LEN: usize = 1 + 8 + 8 + 4;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven and built at
// compile time — the container has no checksum crate to lean on.
//
// Uses the slicing-by-8 variant: eight derived tables let the hot loop
// consume 8 input bytes per iteration instead of 1, which matters here
// because every segment open re-checksums megabytes of columns on the
// cold-start path.

const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    // Table j advances the CRC by one extra zero byte relative to j-1,
    // so the 8 lookups in the hot loop can be XORed independently.
    let mut i = 0;
    while i < 256 {
        let mut c = t[0][i];
        let mut j = 1;
        while j < 8 {
            c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
            t[j][i] = c;
            j += 1;
        }
        i += 1;
    }
    t
}

/// Advances a raw (pre-inverted) CRC state over `data`.
fn crc32_advance(mut c: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 checksum of `data` (IEEE polynomial, init/final XOR `!0`).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_advance(!0, data)
}

/// Incremental CRC-32: feed chunks with [`update`](Crc32::update), then
/// [`finish`](Crc32::finish). Equivalent to [`crc32`] over the
/// concatenated input — this is what lets the lazy segment reader
/// verify a multi-megabyte region with an `O(1)`-memory streaming pass
/// instead of buffering the whole region.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Consumes the next chunk of input.
    pub fn update(&mut self, data: &[u8]) {
        self.state = crc32_advance(self.state, data);
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

// ---------------------------------------------------------------------
// Region tags.

fn region_tag(region: SegmentRegion) -> u8 {
    match region {
        SegmentRegion::Dictionary => 1,
        SegmentRegion::Sources => 2,
        SegmentRegion::Facts => 3,
        SegmentRegion::Kinds => 4,
        SegmentRegion::Permutations => 5,
        SegmentRegion::Buckets => 6,
        SegmentRegion::Taxonomy => 7,
        SegmentRegion::SameAs => 8,
        SegmentRegion::Labels => 9,
        SegmentRegion::DeltaMeta => 10,
        SegmentRegion::Frames => 11,
        // Never serialized as a segment region.
        SegmentRegion::Header
        | SegmentRegion::WalHeader
        | SegmentRegion::WalRecord
        | SegmentRegion::Manifest => 0,
    }
}

fn region_of_tag(tag: u8) -> Option<SegmentRegion> {
    Some(match tag {
        1 => SegmentRegion::Dictionary,
        2 => SegmentRegion::Sources,
        3 => SegmentRegion::Facts,
        4 => SegmentRegion::Kinds,
        5 => SegmentRegion::Permutations,
        6 => SegmentRegion::Buckets,
        7 => SegmentRegion::Taxonomy,
        8 => SegmentRegion::SameAs,
        9 => SegmentRegion::Labels,
        10 => SegmentRegion::DeltaMeta,
        11 => SegmentRegion::Frames,
        _ => return None,
    })
}

fn corrupt(region: SegmentRegion, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { region, detail: detail.into() }
}

// ---------------------------------------------------------------------
// Little-endian encode helpers.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// Tests shrink the length-field capacity so the checked-cast error is
// exercisable without allocating 4 GiB. Thread-local so parallel tests
// cannot perturb each other.
#[cfg(test)]
thread_local! {
    static TEST_LEN_LIMIT: std::cell::Cell<usize> =
        const { std::cell::Cell::new(u32::MAX as usize) };
}

/// Runs `f` with the on-disk length-field limit lowered to `limit`
/// (test-only; scoped to the current thread).
#[cfg(test)]
pub(crate) fn with_len_limit<T>(limit: usize, f: impl FnOnce() -> T) -> T {
    TEST_LEN_LIMIT.with(|l| {
        let prev = l.replace(limit);
        let out = f();
        l.set(prev);
        out
    })
}

fn len_limit() -> usize {
    #[cfg(test)]
    return TEST_LEN_LIMIT.with(|l| l.get());
    #[cfg(not(test))]
    {
        u32::MAX as usize
    }
}

/// Checked conversion of a length into its `u32` on-disk field. A value
/// that does not fit is a typed [`StoreError::TooLarge`], never a
/// silent truncation: a truncated length field would frame the rest of
/// the file wrong and surface (at best) as a CRC mismatch at reopen.
pub(crate) fn check_len(len: usize, region: SegmentRegion) -> Result<u32, StoreError> {
    if len > len_limit() {
        return Err(StoreError::TooLarge { region, len });
    }
    u32::try_from(len).map_err(|_| StoreError::TooLarge { region, len })
}

fn put_len(out: &mut Vec<u8>, len: usize, region: SegmentRegion) -> Result<(), StoreError> {
    let v = check_len(len, region)?;
    put_u32(out, v);
    Ok(())
}

fn put_str(out: &mut Vec<u8>, s: &str, region: SegmentRegion) -> Result<(), StoreError> {
    put_len(out, s.len(), region)?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

// ---------------------------------------------------------------------
// Bounds-checked decode cursor. Every read that would run past the
// region's end is a typed corruption, never a panic.

struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
    region: SegmentRegion,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8], region: SegmentRegion) -> Self {
        Self { buf, pos: 0, region }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            corrupt(self.region, format!("truncated: wanted {n} bytes at offset {}", self.pos))
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str_u32(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| corrupt(self.region, "invalid UTF-8 string"))
    }

    /// A length prefix about to drive a `Vec::with_capacity`: reject
    /// counts that could not possibly fit in the remaining bytes, so a
    /// corrupted length can't trigger a huge allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_item_bytes) > remaining {
            return Err(corrupt(
                self.region,
                format!("implausible element count {n} for {remaining} remaining bytes"),
            ));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(corrupt(
                self.region,
                format!("{} trailing bytes after decoded payload", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Region encoders.

fn encode_terms(
    terms: impl Iterator<Item = impl AsRef<str>>,
    count: usize,
    region: SegmentRegion,
) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    put_len(&mut out, count, region)?;
    for t in terms {
        put_str(&mut out, t.as_ref(), region)?;
    }
    Ok(out)
}

fn encode_facts(facts: &[Fact]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::with_capacity(4 + facts.len() * 25);
    put_len(&mut out, facts.len(), SegmentRegion::Facts)?;
    for f in facts {
        put_u32(&mut out, f.triple.s.0);
        put_u32(&mut out, f.triple.p.0);
        put_u32(&mut out, f.triple.o.0);
        put_u64(&mut out, f.confidence.to_bits());
        put_u32(&mut out, f.source.0);
        match f.span {
            None => out.push(0),
            Some(span) => {
                out.push(1);
                let text = span.to_string();
                put_u16(&mut out, text.len() as u16);
                out.extend_from_slice(text.as_bytes());
            }
        }
    }
    Ok(out)
}

fn encode_perms(perms: &[Vec<u32>; 3]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    for p in perms {
        put_len(&mut out, p.len(), SegmentRegion::Permutations)?;
        for &id in p {
            put_u32(&mut out, id);
        }
    }
    Ok(out)
}

fn encode_buckets(starts: &[Vec<u32>; 3]) -> Result<Vec<u8>, StoreError> {
    let mut out = Vec::new();
    for s in starts {
        put_len(&mut out, s.len(), SegmentRegion::Buckets)?;
        for &v in s {
            put_u32(&mut out, v);
        }
    }
    Ok(out)
}

/// Bytes per serialized frame descriptor: base u32 · enc u8 · width u8
/// · end u32.
pub(crate) const FRAME_META_LEN: usize = 4 + 1 + 1 + 4;

/// Serializes the fifteen compressed index columns (v2 frames region).
/// Per column: row count, frame descriptors, then the raw payload —
/// exactly the in-memory representation, so a reader installs it
/// without re-encoding.
fn encode_frames(cols: [&ColFrames; 15]) -> Result<Vec<u8>, StoreError> {
    let region = SegmentRegion::Frames;
    let mut out = Vec::new();
    for col in cols {
        put_len(&mut out, col.len(), region)?;
        put_len(&mut out, col.n_frames(), region)?;
        for m in col.metas() {
            put_u32(&mut out, m.base);
            out.push(m.enc);
            out.push(m.width);
            put_u32(&mut out, m.end);
        }
        let payload = col.payload();
        put_len(&mut out, payload.len(), region)?;
        out.extend_from_slice(payload);
    }
    Ok(out)
}

/// Decodes the v2 frames region back into the three permutations and
/// three starts columns. Structural damage a checksum cannot catch
/// (frame counts, offsets, encodings) is rejected by
/// [`ColFrames::from_raw`]; cross-column consistency with the fact
/// table is the caller's job via [`FrozenIndexes::from_frames`].
fn decode_frames(buf: &[u8]) -> Result<([PermFrames; 3], [ColFrames; 3]), StoreError> {
    let region = SegmentRegion::Frames;
    let mut cur = Cur::new(buf, region);
    let mut cols = Vec::with_capacity(15);
    for i in 0..15 {
        let len = cur.u32()? as usize;
        let n_frames = cur.count(FRAME_META_LEN)?;
        let mut metas = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let base = cur.u32()?;
            let enc = cur.u8()?;
            let width = cur.u8()?;
            let end = cur.u32()?;
            metas.push(FrameMeta { base, enc, width, end });
        }
        let payload_len = cur.u32()? as usize;
        let payload = cur.take(payload_len)?.to_vec();
        let col = ColFrames::from_raw(len, metas, payload)
            .map_err(|e| corrupt(region, format!("column {i}: {e}")))?;
        cols.push(col);
    }
    cur.finish()?;
    let mut it = cols.into_iter();
    let mut perm = || {
        PermFrames::from_cols(
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
            it.next().unwrap(),
        )
    };
    let perms = [perm(), perm(), perm()];
    let starts = [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()];
    Ok((perms, starts))
}

fn encode_taxonomy(tax: &Taxonomy) -> Result<Vec<u8>, StoreError> {
    let region = SegmentRegion::Taxonomy;
    let mut out = Vec::new();
    let classes = tax.all_classes();
    put_len(&mut out, classes.len(), region)?;
    for c in &classes {
        put_u32(&mut out, c.0);
    }
    let mut edges: Vec<(TermId, TermId)> = tax.edges().collect();
    edges.sort_unstable();
    put_len(&mut out, edges.len(), region)?;
    for (sub, sup) in edges {
        put_u32(&mut out, sub.0);
        put_u32(&mut out, sup.0);
    }
    Ok(out)
}

fn encode_sameas(sameas: &SameAsStore) -> Result<Vec<u8>, StoreError> {
    let region = SegmentRegion::SameAs;
    let mut out = Vec::new();
    let classes = sameas.classes();
    put_len(&mut out, classes.len(), region)?;
    for class in classes {
        put_len(&mut out, class.len(), region)?;
        for m in class {
            put_u32(&mut out, m.0);
        }
    }
    Ok(out)
}

fn encode_labels(labels: &LabelStore) -> Result<Vec<u8>, StoreError> {
    let region = SegmentRegion::Labels;
    let mut all: Vec<(TermId, &str, &str)> = labels
        .iter()
        .map(|(term, lang, form)| (term, labels.lang_tag(lang).unwrap_or(""), form))
        .collect();
    all.sort_unstable();
    let mut out = Vec::new();
    put_len(&mut out, all.len(), region)?;
    for (term, tag, form) in all {
        put_u32(&mut out, term.0);
        put_str(&mut out, tag, region)?;
        put_str(&mut out, form, region)?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Region decoders.

fn decode_terms(buf: &[u8]) -> Result<Vec<Arc<str>>, StoreError> {
    let mut cur = Cur::new(buf, SegmentRegion::Dictionary);
    let n = cur.count(4)?;
    let mut terms = Vec::with_capacity(n);
    for _ in 0..n {
        terms.push(Arc::<str>::from(cur.str_u32()?));
    }
    cur.finish()?;
    Ok(terms)
}

fn decode_sources(buf: &[u8]) -> Result<Vec<String>, StoreError> {
    let mut cur = Cur::new(buf, SegmentRegion::Sources);
    let n = cur.count(4)?;
    let mut sources = Vec::with_capacity(n);
    for _ in 0..n {
        sources.push(cur.str_u32()?.to_string());
    }
    cur.finish()?;
    Ok(sources)
}

/// Decodes the fact table, rejecting non-finite or out-of-range
/// confidences — a bit flip in a float must not poison ranking math.
/// Term/source id range checks live in [`check_fact_ids`] so the base
/// loader can decode facts before the dictionary is available.
fn decode_facts(buf: &[u8]) -> Result<Vec<Fact>, StoreError> {
    let region = SegmentRegion::Facts;
    let mut cur = Cur::new(buf, region);
    let n = cur.count(22)?;
    let mut facts = Vec::with_capacity(n);
    for i in 0..n {
        let (s, p, o) = (cur.u32()?, cur.u32()?, cur.u32()?);
        let confidence = f64::from_bits(cur.u64()?);
        if !confidence.is_finite() || !(0.0..=1.0).contains(&confidence) {
            return Err(corrupt(region, format!("fact {i}: confidence {confidence} out of range")));
        }
        let source = cur.u32()?;
        let span = match cur.u8()? {
            0 => None,
            1 => {
                let len = cur.u16()? as usize;
                let bytes = cur.take(len)?;
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| corrupt(region, format!("fact {i}: span is not UTF-8")))?;
                Some(TimeSpan::parse(text).ok_or_else(|| {
                    corrupt(region, format!("fact {i}: unparseable span {text:?}"))
                })?)
            }
            flag => return Err(corrupt(region, format!("fact {i}: invalid span flag {flag}"))),
        };
        facts.push(Fact {
            triple: Triple::new(TermId(s), TermId(p), TermId(o)),
            confidence,
            source: SourceId(source),
            span,
        });
    }
    cur.finish()?;
    Ok(facts)
}

/// Range-checks every fact's term and source ids against the caller's
/// universe. Split from [`decode_facts`] so validation can run after a
/// concurrently-decoded dictionary lands.
fn check_fact_ids(
    facts: &[Fact],
    term_count: usize,
    source_count: usize,
) -> Result<(), StoreError> {
    let region = SegmentRegion::Facts;
    for (i, f) in facts.iter().enumerate() {
        for id in [f.triple.s, f.triple.p, f.triple.o] {
            if id.index() >= term_count {
                return Err(corrupt(
                    region,
                    format!("fact {i}: term id {} out of range ({term_count} terms)", id.0),
                ));
            }
        }
        if f.source.0 as usize >= source_count {
            return Err(corrupt(
                region,
                format!("fact {i}: source id {} out of range ({source_count} sources)", f.source.0),
            ));
        }
    }
    Ok(())
}

fn decode_u32_arrays<const N: usize>(
    buf: &[u8],
    region: SegmentRegion,
) -> Result<[Vec<u32>; N], StoreError> {
    let mut cur = Cur::new(buf, region);
    let mut out: [Vec<u32>; N] = std::array::from_fn(|_| Vec::new());
    for arr in out.iter_mut() {
        let n = cur.count(4)?;
        // One bounds check for the whole array, then a straight
        // little-endian gather — these columns are the bulk of a
        // segment, so per-element cursor reads would dominate open.
        let bytes = cur.take(n * 4)?;
        arr.reserve_exact(n);
        arr.extend(bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())));
    }
    cur.finish()?;
    Ok(out)
}

fn decode_taxonomy(buf: &[u8], term_count: usize) -> Result<Taxonomy, StoreError> {
    let region = SegmentRegion::Taxonomy;
    let mut cur = Cur::new(buf, region);
    let mut tax = Taxonomy::new();
    let classes = cur.count(4)?;
    for _ in 0..classes {
        let c = cur.u32()?;
        if c as usize >= term_count {
            return Err(corrupt(region, format!("class id {c} out of range")));
        }
        tax.add_class(TermId(c));
    }
    let edges = cur.count(8)?;
    for _ in 0..edges {
        let (sub, sup) = (cur.u32()?, cur.u32()?);
        if sub as usize >= term_count || sup as usize >= term_count {
            return Err(corrupt(region, format!("edge {sub}->{sup} out of term range")));
        }
        tax.add_subclass(TermId(sub), TermId(sup))
            .map_err(|e| corrupt(region, format!("invalid subclass edge: {e}")))?;
    }
    cur.finish()?;
    Ok(tax)
}

fn decode_sameas(buf: &[u8], term_count: usize) -> Result<SameAsStore, StoreError> {
    let region = SegmentRegion::SameAs;
    let mut cur = Cur::new(buf, region);
    let mut store = SameAsStore::new();
    let classes = cur.count(8)?;
    for _ in 0..classes {
        let members = cur.count(4)?;
        if members < 2 {
            return Err(corrupt(region, format!("equivalence class of size {members}")));
        }
        let first = cur.u32()?;
        if first as usize >= term_count {
            return Err(corrupt(region, format!("term id {first} out of range")));
        }
        for _ in 1..members {
            let m = cur.u32()?;
            if m as usize >= term_count {
                return Err(corrupt(region, format!("term id {m} out of range")));
            }
            store.declare(TermId(first), TermId(m));
        }
    }
    cur.finish()?;
    Ok(store)
}

fn decode_labels(buf: &[u8], term_count: usize) -> Result<LabelStore, StoreError> {
    let region = SegmentRegion::Labels;
    let mut cur = Cur::new(buf, region);
    let mut labels = LabelStore::new();
    let n = cur.count(12)?;
    for _ in 0..n {
        let term = cur.u32()?;
        if term as usize >= term_count {
            return Err(corrupt(region, format!("label term id {term} out of range")));
        }
        let tag = cur.str_u32()?.to_string();
        let form = cur.str_u32()?;
        let lang = labels.lang(&tag);
        labels.add(TermId(term), lang, form);
    }
    cur.finish()?;
    Ok(labels)
}

// ---------------------------------------------------------------------
// File assembly: preamble + checksummed region table + region payloads.

fn assemble(magic: [u8; 4], version: u32, regions: Vec<(SegmentRegion, Vec<u8>)>) -> Vec<u8> {
    let header_len = 4 + regions.len() * REGION_ENTRY_LEN;
    let mut header = Vec::with_capacity(header_len);
    put_u32(&mut header, regions.len() as u32);
    let mut offset = (PREAMBLE_LEN + header_len) as u64;
    for (region, payload) in &regions {
        header.push(region_tag(*region));
        put_u64(&mut header, offset);
        put_u64(&mut header, payload.len() as u64);
        put_u32(&mut header, crc32(payload));
        offset += payload.len() as u64;
    }
    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(&magic);
    put_u32(&mut out, version);
    put_u32(&mut out, header.len() as u32);
    put_u32(&mut out, crc32(&header));
    out.extend_from_slice(&header);
    for (_, payload) in regions {
        out.extend_from_slice(&payload);
    }
    out
}

/// Parses and validates the preamble + region table of a segment image,
/// returning each region's byte range within the buffer (the header's
/// own range is reported under [`SegmentRegion::Header`]).
///
/// This is the *diagnostic* entry point: corruption-injection tests and
/// tooling use it to locate regions; the real readers re-do all of this
/// plus per-region CRC and structural validation.
pub fn region_map(buf: &[u8]) -> Result<Vec<(SegmentRegion, Range<usize>)>, StoreError> {
    let (_, _, entries) = parse_header(buf, None)?;
    let header_end = PREAMBLE_LEN + header_len_of(buf)?;
    let mut out = vec![(SegmentRegion::Header, 0..header_end)];
    for e in entries {
        out.push((e.region, e.range));
    }
    Ok(out)
}

/// One row of a parsed region table: where a region's payload lives in
/// the file and the CRC it must hash to.
#[derive(Debug, Clone)]
pub(crate) struct RegionEntry {
    pub(crate) region: SegmentRegion,
    pub(crate) range: Range<usize>,
    pub(crate) crc: u32,
}

fn header_len_of(buf: &[u8]) -> Result<usize, StoreError> {
    if buf.len() < PREAMBLE_LEN {
        return Err(corrupt(SegmentRegion::Header, "file shorter than the 16-byte preamble"));
    }
    Ok(u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize)
}

/// Validates preamble magic/version and the header CRC, then decodes
/// the region table. `expect_magic: None` accepts either segment kind.
/// Both format versions parse identically at this level; the returned
/// version tells the reader which index regions to expect.
fn parse_header(
    buf: &[u8],
    expect_magic: Option<[u8; 4]>,
) -> Result<([u8; 4], u32, Vec<RegionEntry>), StoreError> {
    parse_header_limited(buf, expect_magic, buf.len())
}

/// [`parse_header`] over a *prefix* of the file: `buf` holds at least
/// the preamble + header, while region payload bounds are checked
/// against `data_len` (the full file length). This is what lets the
/// lazy opener validate the region table after reading only the first
/// few hundred bytes of an arbitrarily large segment.
fn parse_header_limited(
    buf: &[u8],
    expect_magic: Option<[u8; 4]>,
    data_len: usize,
) -> Result<([u8; 4], u32, Vec<RegionEntry>), StoreError> {
    let region = SegmentRegion::Header;
    if buf.len() < PREAMBLE_LEN {
        return Err(corrupt(region, "file shorter than the 16-byte preamble"));
    }
    let magic: [u8; 4] = buf[0..4].try_into().unwrap();
    if magic != MAGIC_BASE && magic != MAGIC_DELTA {
        return Err(corrupt(region, format!("bad magic {magic:02x?}")));
    }
    if let Some(want) = expect_magic {
        if magic != want {
            return Err(corrupt(
                region,
                format!(
                    "wrong segment kind: expected {:?}, found {:?}",
                    String::from_utf8_lossy(&want),
                    String::from_utf8_lossy(&magic)
                ),
            ));
        }
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION && version != FORMAT_VERSION_V1 {
        return Err(corrupt(
            region,
            format!(
                "unsupported format version {version} \
                 (reader supports {FORMAT_VERSION_V1} and {FORMAT_VERSION})"
            ),
        ));
    }
    let header_len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    let header_crc = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let header_end = PREAMBLE_LEN
        .checked_add(header_len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt(region, "header length runs past end of file"))?;
    let header = &buf[PREAMBLE_LEN..header_end];
    if crc32(header) != header_crc {
        return Err(corrupt(region, "header checksum mismatch"));
    }
    let mut cur = Cur::new(header, region);
    let n = cur.count(REGION_ENTRY_LEN)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = cur.u8()?;
        let offset = cur.u64()? as usize;
        let len = cur.u64()? as usize;
        let crc = cur.u32()?;
        let r = region_of_tag(tag)
            .ok_or_else(|| corrupt(region, format!("unknown region tag {tag}")))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data_len)
            .ok_or_else(|| corrupt(region, format!("region {r} runs past end of file")))?;
        entries.push(RegionEntry { region: r, range: offset..end, crc });
    }
    cur.finish()?;
    Ok((magic, version, entries))
}

/// Locates a region, verifies its CRC, and hands back its payload.
fn region<'a>(
    buf: &'a [u8],
    entries: &[RegionEntry],
    want: SegmentRegion,
) -> Result<&'a [u8], StoreError> {
    let e = entries
        .iter()
        .find(|e| e.region == want)
        .ok_or_else(|| corrupt(SegmentRegion::Header, format!("missing {want} region")))?;
    let payload = &buf[e.range.clone()];
    if crc32(payload) != e.crc {
        return Err(corrupt(want, "checksum mismatch"));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Base snapshot image.

/// Serializes a base snapshot to its segment image (current format:
/// the compressed frames region carries the indexes verbatim).
pub(crate) fn snapshot_to_bytes(snap: &KbSnapshot) -> Result<Vec<u8>, StoreError> {
    let core = snap.core();
    let regions = vec![
        (
            SegmentRegion::Dictionary,
            encode_terms(
                core.dict.iter().map(|(_, t)| t),
                core.dict.len(),
                SegmentRegion::Dictionary,
            )?,
        ),
        (
            SegmentRegion::Sources,
            encode_terms(core.sources.iter(), core.sources.len(), SegmentRegion::Sources)?,
        ),
        (SegmentRegion::Facts, encode_facts(&core.facts)?),
        (SegmentRegion::Frames, encode_frames(snap.indexes().frame_cols())?),
        (SegmentRegion::Taxonomy, encode_taxonomy(snap.taxonomy())?),
        (SegmentRegion::SameAs, encode_sameas(snap.sameas())?),
        (SegmentRegion::Labels, encode_labels(snap.labels())?),
    ];
    Ok(assemble(MAGIC_BASE, FORMAT_VERSION, regions))
}

/// Serializes a base snapshot in the legacy v1 layout (raw fact-id
/// permutations + offset buckets). Kept so backward-compatibility of
/// the reader stays under test; not used by the write path.
pub(crate) fn snapshot_to_bytes_v1(snap: &KbSnapshot) -> Result<Vec<u8>, StoreError> {
    let core = snap.core();
    let regions = vec![
        (
            SegmentRegion::Dictionary,
            encode_terms(
                core.dict.iter().map(|(_, t)| t),
                core.dict.len(),
                SegmentRegion::Dictionary,
            )?,
        ),
        (
            SegmentRegion::Sources,
            encode_terms(core.sources.iter(), core.sources.len(), SegmentRegion::Sources)?,
        ),
        (SegmentRegion::Facts, encode_facts(&core.facts)?),
        (SegmentRegion::Permutations, encode_perms(&snap.indexes().perm_fact_ids())?),
        (SegmentRegion::Buckets, encode_buckets(&snap.indexes().bucket_starts_vec())?),
        (SegmentRegion::Taxonomy, encode_taxonomy(snap.taxonomy())?),
        (SegmentRegion::SameAs, encode_sameas(snap.sameas())?),
        (SegmentRegion::Labels, encode_labels(snap.labels())?),
    ];
    Ok(assemble(MAGIC_BASE, FORMAT_VERSION_V1, regions))
}

/// Decodes and validates the index regions of a base or delta image,
/// dispatching on the format version. `expected_len` / `is_base` carry
/// the segment-kind invariants down to the validators.
fn decode_indexes(
    buf: &[u8],
    entries: &[RegionEntry],
    version: u32,
    facts: &[Fact],
    expected_len: usize,
    is_base: bool,
) -> Result<FrozenIndexes, StoreError> {
    if version == FORMAT_VERSION_V1 {
        let perms = decode_u32_arrays::<3>(
            region(buf, entries, SegmentRegion::Permutations)?,
            SegmentRegion::Permutations,
        )?;
        for p in &perms {
            if p.len() != expected_len {
                return Err(corrupt(
                    SegmentRegion::Permutations,
                    format!("permutation has {} entries, expected {expected_len}", p.len()),
                ));
            }
        }
        if is_base {
            if let Some(&id) =
                perms[0].iter().find(|&&id| facts.get(id as usize).is_none_or(|f| f.is_retracted()))
            {
                return Err(corrupt(
                    SegmentRegion::Permutations,
                    format!("permutation indexes retracted or missing fact {id}"),
                ));
            }
        }
        let starts = decode_u32_arrays::<3>(
            region(buf, entries, SegmentRegion::Buckets)?,
            SegmentRegion::Buckets,
        )?;
        FrozenIndexes::from_fact_perms(facts, perms, starts)
    } else {
        let (perms, starts) = decode_frames(region(buf, entries, SegmentRegion::Frames)?)?;
        FrozenIndexes::from_frames(facts, expected_len, is_base, perms, starts)
    }
}

/// Deserializes and fully validates a base snapshot image (either
/// format version).
pub(crate) fn snapshot_from_bytes(buf: &[u8]) -> Result<KbSnapshot, StoreError> {
    let (_, version, entries) = parse_header(buf, Some(MAGIC_BASE))?;

    // The fact table comes first: the triple-dedup map and the
    // permutation validation both read it, while the dictionary decode
    // is independent of all three — so decode facts once, then overlap
    // the remaining heavy steps across threads. This fan-out is what
    // keeps a cold open at 100k facts in the low tens of milliseconds.
    let facts = decode_facts(region(buf, &entries, SegmentRegion::Facts)?)?;
    let live = facts.iter().filter(|f| !f.is_retracted()).count();

    type DictParts = (Dictionary, Vec<String>, FxHashMap<String, SourceId>);
    let (dict_parts, by_triple, indexes) = std::thread::scope(|s| {
        let dict_handle = s.spawn(|| -> Result<DictParts, StoreError> {
            let terms = decode_terms(region(buf, &entries, SegmentRegion::Dictionary)?)?;
            let dict = Dictionary::from_terms(terms).ok_or_else(|| {
                corrupt(SegmentRegion::Dictionary, "duplicate term in dictionary")
            })?;
            let sources = decode_sources(region(buf, &entries, SegmentRegion::Sources)?)?;
            let mut source_lookup =
                FxHashMap::with_capacity_and_hasher(sources.len(), Default::default());
            for (i, name) in sources.iter().enumerate() {
                if source_lookup.insert(name.clone(), SourceId(i as u32)).is_some() {
                    return Err(corrupt(
                        SegmentRegion::Sources,
                        format!("duplicate source {name:?}"),
                    ));
                }
            }
            Ok((dict, sources, source_lookup))
        });
        let triple_handle = s.spawn(|| -> Result<FxHashMap<Triple, FactId>, StoreError> {
            let mut by_triple =
                FxHashMap::with_capacity_and_hasher(facts.len(), Default::default());
            for (i, f) in facts.iter().enumerate() {
                if by_triple.insert(f.triple, FactId(i as u32)).is_some() {
                    return Err(corrupt(
                        SegmentRegion::Facts,
                        format!("fact {i}: duplicate triple"),
                    ));
                }
            }
            Ok(by_triple)
        });
        // A base segment indexes exactly its live facts, none retracted.
        let indexes = decode_indexes(buf, &entries, version, &facts, live, true);
        (
            dict_handle.join().expect("dictionary decode"),
            triple_handle.join().expect("triple map build"),
            indexes,
        )
    });
    let (dict, sources, source_lookup) = dict_parts?;
    let by_triple = by_triple?;
    let indexes = indexes?;
    // Deferred from decode_facts: the term/source universe only exists
    // once the concurrent dictionary decode has landed.
    check_fact_ids(&facts, dict.len(), sources.len())?;

    let taxonomy = decode_taxonomy(region(buf, &entries, SegmentRegion::Taxonomy)?, dict.len())?;
    let sameas = decode_sameas(region(buf, &entries, SegmentRegion::SameAs)?, dict.len())?;
    let labels = decode_labels(region(buf, &entries, SegmentRegion::Labels)?, dict.len())?;

    let core = KbCore { dict, facts, by_triple, sources, source_lookup, live };
    Ok(KbSnapshot::from_parts(core, taxonomy, sameas, labels, indexes))
}

// ---------------------------------------------------------------------
// Lazy (paged) base snapshot open.

/// Locates a region in a file-backed source, reads its payload with one
/// positioned read, and verifies the CRC — the `pread` twin of
/// [`region`].
fn region_from_source(
    source: &SegmentSource,
    entries: &[RegionEntry],
    want: SegmentRegion,
) -> Result<Vec<u8>, StoreError> {
    let e = entries
        .iter()
        .find(|e| e.region == want)
        .ok_or_else(|| corrupt(SegmentRegion::Header, format!("missing {want} region")))?;
    let payload = source.read_range(e.range.clone())?;
    if crc32(&payload) != e.crc {
        return Err(corrupt(want, "checksum mismatch"));
    }
    Ok(payload)
}

/// Reads a count-prefixed region's leading `u32` without touching the
/// rest of the payload. Returns 0 for a missing or short region — the
/// caller treats the count as advisory (real validation happens when
/// the region faults in).
pub(crate) fn region_count_prefix(
    source: &SegmentSource,
    entries: &[RegionEntry],
    want: SegmentRegion,
) -> usize {
    let Some(e) = entries.iter().find(|e| e.region == want) else {
        return 0;
    };
    if e.range.len() < 4 {
        return 0;
    }
    let mut buf = [0u8; 4];
    match source.read_exact_at(e.range.start as u64, &mut buf) {
        Ok(()) => u32::from_le_bytes(buf) as usize,
        Err(_) => 0,
    }
}

/// Decodes the base (non-index) regions of a lazily opened segment:
/// dictionary, sources, facts, taxonomy, sameAs, labels — each read
/// with one positioned read and CRC-verified on this first touch. Runs
/// at most once per snapshot (cached in [`LazyBase`]); the same
/// validation as the eager open applies, so a corrupt region is the
/// same typed error either way.
pub(crate) fn fault_base(
    source: &Arc<SegmentSource>,
    entries: &[RegionEntry],
) -> Result<EagerBase, StoreError> {
    let facts = decode_facts(&region_from_source(source, entries, SegmentRegion::Facts)?)?;
    let live = facts.iter().filter(|f| !f.is_retracted()).count();

    let terms = decode_terms(&region_from_source(source, entries, SegmentRegion::Dictionary)?)?;
    let dict = Dictionary::from_terms(terms)
        .ok_or_else(|| corrupt(SegmentRegion::Dictionary, "duplicate term in dictionary"))?;
    let sources = decode_sources(&region_from_source(source, entries, SegmentRegion::Sources)?)?;
    let mut source_lookup = FxHashMap::with_capacity_and_hasher(sources.len(), Default::default());
    for (i, name) in sources.iter().enumerate() {
        if source_lookup.insert(name.clone(), SourceId(i as u32)).is_some() {
            return Err(corrupt(SegmentRegion::Sources, format!("duplicate source {name:?}")));
        }
    }
    let mut by_triple = FxHashMap::with_capacity_and_hasher(facts.len(), Default::default());
    for (i, f) in facts.iter().enumerate() {
        if by_triple.insert(f.triple, FactId(i as u32)).is_some() {
            return Err(corrupt(SegmentRegion::Facts, format!("fact {i}: duplicate triple")));
        }
    }
    check_fact_ids(&facts, dict.len(), sources.len())?;

    let taxonomy = decode_taxonomy(
        &region_from_source(source, entries, SegmentRegion::Taxonomy)?,
        dict.len(),
    )?;
    let sameas =
        decode_sameas(&region_from_source(source, entries, SegmentRegion::SameAs)?, dict.len())?;
    let labels =
        decode_labels(&region_from_source(source, entries, SegmentRegion::Labels)?, dict.len())?;

    let core = KbCore { dict, facts, by_triple, sources, source_lookup, live };
    Ok(EagerBase { core, taxonomy, sameas, labels })
}

/// Builds a [`FrozenIndexes::Lazy`] over a file's frames region: one
/// [`ColSlot`] per column, all registered with `budget`'s eviction
/// clock. Nothing is read yet beyond what the caller already parsed.
fn lazy_indexes(
    source: &Arc<SegmentSource>,
    entries: &[RegionEntry],
    budget: &MemoryBudget,
) -> Result<FrozenIndexes, StoreError> {
    let e = entries
        .iter()
        .find(|e| e.region == SegmentRegion::Frames)
        .ok_or_else(|| corrupt(SegmentRegion::Header, "missing frames region"))?;
    let region = Arc::new(FrameRegion::new(Arc::clone(source), e.range.clone(), e.crc));
    let slots: [Arc<ColSlot>; FRAME_COLS] =
        std::array::from_fn(|i| ColSlot::new(Arc::clone(&region), i, budget.clone()));
    Ok(FrozenIndexes::Lazy(LazyIndexes::new(region, slots)))
}

/// Opens a base segment lazily: reads and validates only the preamble
/// and region table, then hands back a [`KbSnapshot`] whose base
/// regions fault in on first access and whose index columns page in
/// (and spill back out) under `budget`. Open cost is `O(header)`,
/// independent of KB size.
///
/// Corruption anywhere past the header surfaces on *first access* as a
/// typed [`StoreError::Corrupt`]; call [`KbSnapshot::prefault`] right
/// after open to get eager-open error semantics back. v1 images have no
/// pageable frames region and fall back to the eager reader.
pub(crate) fn snapshot_open_lazy(
    path: &Path,
    budget: &MemoryBudget,
) -> Result<KbSnapshot, StoreError> {
    let obs = kb_obs::global();
    let span = obs.span("store.segment.open_us");
    let source = Arc::new(SegmentSource::open(path)?);
    let file_len = source.len() as usize;
    let mut preamble = [0u8; PREAMBLE_LEN];
    if file_len < PREAMBLE_LEN {
        return Err(corrupt(SegmentRegion::Header, "file shorter than the 16-byte preamble"));
    }
    source.read_exact_at(0, &mut preamble)?;
    let header_len = u32::from_le_bytes(preamble[8..12].try_into().unwrap()) as usize;
    let prefix_len = PREAMBLE_LEN
        .checked_add(header_len)
        .filter(|&e| e <= file_len)
        .ok_or_else(|| corrupt(SegmentRegion::Header, "header length runs past end of file"))?;
    let prefix = source.read_range(0..prefix_len)?;
    let (_, version, entries) = parse_header_limited(&prefix, Some(MAGIC_BASE), file_len)?;
    if version == FORMAT_VERSION_V1 {
        // v1 stores raw permutations that must be re-compressed on
        // open; there is nothing to page. Fall back to the eager path.
        return KbSnapshot::open_segment(path);
    }
    let indexes = lazy_indexes(&source, &entries, budget)?;
    let snap = KbSnapshot::from_lazy(Arc::new(LazyBase::new(source, entries)), indexes);
    span.stop();
    obs.counter("store.segment.opens").inc();
    Ok(snap)
}

/// Opens a sealed delta segment with pageable index columns: the image
/// is read and *fully validated* eagerly (deltas are small relative to
/// the base, and the quarantine/recovery story depends on open-time
/// validation), then — only under a bounded budget — the decoded index
/// columns are swapped for lazy slots so they can spill. Under an
/// unbounded budget the eager indexes are kept as-is: re-reading what
/// was just decoded would double the open cost for nothing.
pub(crate) fn delta_open_lazy(
    path: &Path,
    budget: &MemoryBudget,
) -> Result<DeltaSegment, StoreError> {
    let bytes = std::fs::read(path)?;
    let mut delta = delta_from_bytes(&bytes)?;
    if budget.limit().is_some() {
        let (_, version, entries) = parse_header(&bytes, Some(MAGIC_DELTA))?;
        if version == FORMAT_VERSION {
            let source = Arc::new(SegmentSource::open(path)?);
            delta.indexes = lazy_indexes(&source, &entries, budget)?;
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------
// Delta segment image.

fn delta_common_regions(delta: &DeltaSegment) -> Result<Vec<(SegmentRegion, Vec<u8>)>, StoreError> {
    let mut meta = Vec::with_capacity(8);
    put_u32(&mut meta, delta.first_term().0);
    put_u32(&mut meta, delta.first_source_id());
    let mut kinds = Vec::with_capacity(4 + delta.kinds.len());
    put_len(&mut kinds, delta.kinds.len(), SegmentRegion::Kinds)?;
    kinds.extend(delta.kinds.iter().map(|k| match k {
        FactKind::New => 0u8,
        FactKind::Shadow => 1,
        FactKind::Tombstone => 2,
    }));
    Ok(vec![
        (SegmentRegion::DeltaMeta, meta),
        (
            SegmentRegion::Dictionary,
            encode_terms(delta.ext_terms.iter(), delta.ext_terms.len(), SegmentRegion::Dictionary)?,
        ),
        (
            SegmentRegion::Sources,
            encode_terms(
                delta.ext_sources.iter(),
                delta.ext_sources.len(),
                SegmentRegion::Sources,
            )?,
        ),
        (SegmentRegion::Facts, encode_facts(&delta.facts)?),
        (SegmentRegion::Kinds, kinds),
    ])
}

/// Serializes a delta segment to its image (also the WAL payload).
pub(crate) fn delta_to_bytes(delta: &DeltaSegment) -> Result<Vec<u8>, StoreError> {
    let mut regions = delta_common_regions(delta)?;
    regions.push((SegmentRegion::Frames, encode_frames(delta.indexes.frame_cols())?));
    Ok(assemble(MAGIC_DELTA, FORMAT_VERSION, regions))
}

/// Serializes a delta segment in the legacy v1 layout. Retained for
/// compatibility tests only (old WAL records and delta files carry v1
/// images that must keep replaying).
pub(crate) fn delta_to_bytes_v1(delta: &DeltaSegment) -> Result<Vec<u8>, StoreError> {
    let mut regions = delta_common_regions(delta)?;
    regions.push((SegmentRegion::Permutations, encode_perms(&delta.indexes.perm_fact_ids())?));
    regions.push((SegmentRegion::Buckets, encode_buckets(&delta.indexes.bucket_starts_vec())?));
    Ok(assemble(MAGIC_DELTA, FORMAT_VERSION_V1, regions))
}

/// Deserializes and fully validates a delta segment image. Whether the
/// delta actually stacks on a given view is checked at install time
/// ([`SegmentedSnapshot::try_with_delta`](crate::SegmentedSnapshot::try_with_delta));
/// here ids are validated against the universe the delta itself declares
/// (`first_term + ext_terms`, `first_source + ext_sources`).
pub(crate) fn delta_from_bytes(buf: &[u8]) -> Result<DeltaSegment, StoreError> {
    let (_, version, entries) = parse_header(buf, Some(MAGIC_DELTA))?;

    let meta = region(buf, &entries, SegmentRegion::DeltaMeta)?;
    let mut cur = Cur::new(meta, SegmentRegion::DeltaMeta);
    let first_term = cur.u32()?;
    let first_source = cur.u32()?;
    cur.finish()?;

    let ext_terms = decode_terms(region(buf, &entries, SegmentRegion::Dictionary)?)?;
    {
        let mut seen = std::collections::HashSet::with_capacity(ext_terms.len());
        for t in &ext_terms {
            if !seen.insert(t.as_ref()) {
                return Err(corrupt(SegmentRegion::Dictionary, "duplicate extension term"));
            }
        }
    }
    let ext_sources = decode_sources(region(buf, &entries, SegmentRegion::Sources)?)?;

    let term_count = first_term as usize + ext_terms.len();
    let source_count = first_source as usize + ext_sources.len();
    let facts = decode_facts(region(buf, &entries, SegmentRegion::Facts)?)?;
    check_fact_ids(&facts, term_count, source_count)?;
    {
        let mut seen = std::collections::HashSet::with_capacity(facts.len());
        for (i, f) in facts.iter().enumerate() {
            if !seen.insert(f.triple) {
                return Err(corrupt(SegmentRegion::Facts, format!("fact {i}: duplicate triple")));
            }
        }
    }

    let kinds_buf = region(buf, &entries, SegmentRegion::Kinds)?;
    let mut cur = Cur::new(kinds_buf, SegmentRegion::Kinds);
    let n = cur.count(1)?;
    if n != facts.len() {
        return Err(corrupt(SegmentRegion::Kinds, format!("{n} kinds for {} facts", facts.len())));
    }
    let mut kinds = Vec::with_capacity(n);
    for (i, fact) in facts.iter().enumerate() {
        let kind = match cur.u8()? {
            0 => FactKind::New,
            1 => FactKind::Shadow,
            2 => FactKind::Tombstone,
            tag => return Err(corrupt(SegmentRegion::Kinds, format!("invalid kind tag {tag}"))),
        };
        // The tombstone marker and the confidence-zero convention must
        // agree, or merge semantics would silently diverge.
        if (kind == FactKind::Tombstone) != fact.is_retracted() {
            return Err(corrupt(
                SegmentRegion::Kinds,
                format!("fact {i}: kind {kind:?} disagrees with confidence {}", fact.confidence),
            ));
        }
        kinds.push(kind);
    }
    cur.finish()?;

    // A delta indexes *all* its entries, tombstones included.
    let indexes = decode_indexes(buf, &entries, version, &facts, facts.len(), false)?;

    Ok(DeltaSegment::from_parts(
        ext_terms,
        first_term,
        ext_sources,
        first_source,
        facts,
        kinds,
        indexes,
    ))
}

// ---------------------------------------------------------------------
// File-level helpers.

/// Writes `bytes` to `path` atomically: write to a sibling temp file,
/// flush (+ optional fsync), rename into place, then fsync the parent
/// directory so the rename itself is durable.
pub(crate) fn write_file_atomic(path: &Path, bytes: &[u8], fsync: bool) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        if fsync {
            f.sync_all()?;
        }
    }
    std::fs::rename(&tmp, path)?;
    if fsync {
        fsync_dir(path.parent().unwrap_or_else(|| Path::new(".")))?;
    }
    Ok(())
}

/// Fsyncs a directory so a just-completed rename/create within it
/// survives power loss. Best-effort on platforms that refuse to open
/// directories for sync.
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    match std::fs::File::open(dir) {
        Ok(f) => {
            f.sync_all().ok();
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

impl KbSnapshot {
    /// Writes this snapshot as a checksummed base segment file
    /// (atomically; fsynced). Returns the number of bytes written.
    pub fn write_segment(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let obs = kb_obs::global();
        let span = obs.span("store.segment.write_us");
        let bytes = snapshot_to_bytes(self)?;
        write_file_atomic(path.as_ref(), &bytes, true)?;
        span.stop();
        obs.counter("store.segment.writes").inc();
        Ok(bytes.len() as u64)
    }

    /// Writes this snapshot in the legacy v1 segment layout. Exists so
    /// compatibility tests and tooling can produce old-format files;
    /// normal code should use [`KbSnapshot::write_segment`].
    #[doc(hidden)]
    pub fn write_segment_v1(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let bytes = snapshot_to_bytes_v1(self)?;
        write_file_atomic(path.as_ref(), &bytes, true)?;
        Ok(bytes.len() as u64)
    }

    /// Opens a base segment file, validating every checksum and
    /// structural invariant. `O(n)` — no sorting, no re-indexing.
    pub fn open_segment(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let obs = kb_obs::global();
        let span = obs.span("store.segment.open_us");
        let bytes = std::fs::read(path.as_ref())?;
        let snap = snapshot_from_bytes(&bytes)?;
        span.stop();
        obs.counter("store.segment.opens").inc();
        Ok(snap)
    }
}

impl DeltaSegment {
    /// Writes this delta as a checksummed delta segment file
    /// (atomically; fsynced). Returns the number of bytes written.
    pub fn write_segment(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let bytes = delta_to_bytes(self)?;
        write_file_atomic(path.as_ref(), &bytes, true)?;
        Ok(bytes.len() as u64)
    }

    /// Writes this delta in the legacy v1 segment layout. Exists so
    /// compatibility tests can produce old-format files; normal code
    /// should use [`DeltaSegment::write_segment`].
    #[doc(hidden)]
    pub fn write_segment_v1(&self, path: impl AsRef<Path>) -> Result<u64, StoreError> {
        let bytes = delta_to_bytes_v1(self)?;
        write_file_atomic(path.as_ref(), &bytes, true)?;
        Ok(bytes.len() as u64)
    }

    /// Opens a delta segment file, validating checksums and structure.
    pub fn open_segment(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = std::fs::read(path.as_ref())?;
        delta_from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::KbRead;
    use crate::{KbBuilder, SegmentedSnapshot, TimePoint, TriplePattern};

    fn sample_snapshot() -> KbSnapshot {
        let mut b = KbBuilder::new();
        let src = b.register_source("wikipedia");
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "type", "person");
        b.assert_str("person", "subclassOf", "entity");
        let t = Triple::new(b.intern("Steve_Jobs"), b.intern("bornIn"), b.intern("SF"));
        b.add_fact(Fact {
            triple: t,
            confidence: 0.75,
            source: src,
            span: Some(TimeSpan::at(TimePoint::date(1955, 2, 24))),
        });
        b.retract_str("Steve_Jobs", "type", "person");
        let person = b.term("person").unwrap();
        let entity = b.term("entity").unwrap();
        b.taxonomy.add_subclass(person, entity).unwrap();
        let jobs = b.term("Steve_Jobs").unwrap();
        let apple = b.term("Apple_Inc").unwrap();
        b.sameas.declare(jobs, apple);
        let en = b.labels.lang("en");
        b.labels.add(jobs, en, "Steve Jobs");
        b.labels.add(jobs, en, "Jobs");
        b.freeze()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_sliced_agrees_with_bytewise_reference_at_every_length() {
        // The sliced hot loop consumes 8 bytes at a time with a scalar
        // tail; sweep lengths 0..64 so every remainder size is hit.
        fn reference(data: &[u8]) -> u32 {
            let mut c = !0u32;
            for &b in data {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        }
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(0x9E37) >> 3) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn streaming_crc_agrees_with_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(0xB5297A4D) >> 5) as u8).collect();
        let want = crc32(&data);
        for split in 0..=data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), want, "split at {split}");
        }
        // Many tiny chunks, too.
        let mut crc = Crc32::new();
        for b in &data {
            crc.update(std::slice::from_ref(b));
        }
        assert_eq!(crc.finish(), want);
    }

    #[test]
    fn oversized_lengths_are_a_typed_error_not_a_truncation() {
        // A value longer than the length field must fail loudly at
        // write time. Scaled down via the test-only limit so the test
        // does not have to materialize 4 GiB.
        let snap = sample_snapshot();
        let err = with_len_limit(2, || snapshot_to_bytes(&snap)).unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { .. }), "expected TooLarge, got {err:?}");
        // The writers thread the error out through the public API.
        let dir = std::env::temp_dir().join(format!("kbseg-big-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = with_len_limit(2, || snap.write_segment(dir.join("big.seg"))).unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { .. }));
        // Every region encoder is checked, not just the dictionary: a
        // limit of 2 lets two-element tables through but still trips on
        // the first longer string/column, so sweep a range of limits
        // and require the error to name *some* region each time.
        for limit in [0, 1, 3, 8] {
            let err = with_len_limit(limit, || snapshot_to_bytes(&snap)).unwrap_err();
            let StoreError::TooLarge { len, .. } = err else {
                panic!("limit {limit}: expected TooLarge, got {err:?}")
            };
            assert!(len > limit, "reported len {len} must exceed the limit {limit}");
        }
        // Unlimited writes still succeed afterwards (the limit is
        // scoped, not sticky).
        assert!(snapshot_to_bytes(&snap).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_byte_identically() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap).unwrap();
        let reopened = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(
            crate::ntriples::to_string(&snap).unwrap(),
            crate::ntriples::to_string(&reopened).unwrap()
        );
        assert_eq!(snap.len(), reopened.len());
        assert_eq!(snap.term_count(), reopened.term_count());
        // Retracted facts keep their slots (provenance addressing).
        assert_eq!(snap.fact(FactId(1)).unwrap().confidence, 0.0);
        assert_eq!(reopened.fact(FactId(1)).unwrap().confidence, 0.0);
        // Serialization is deterministic.
        assert_eq!(bytes, snapshot_to_bytes(&reopened).unwrap());
    }

    #[test]
    fn delta_round_trips_and_restacks() {
        let view = SegmentedSnapshot::from_base(sample_snapshot().into_shared());
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        d.assert_str("Steve_Jobs", "founded", "Apple_Inc"); // shadow
        d.retract_str("Steve_Jobs", "bornIn", "SF"); // tombstone
        let delta = d.freeze_delta(&view);
        let bytes = delta_to_bytes(&delta).unwrap();
        let reopened = delta_from_bytes(&bytes).unwrap();
        assert_eq!(reopened.new_facts(), delta.new_facts());
        assert_eq!(reopened.shadowed(), delta.shadowed());
        assert_eq!(reopened.tombstones(), delta.tombstones());
        assert_eq!(reopened.net_live(), delta.net_live());
        assert_eq!(reopened.touched_predicates(), delta.touched_predicates());
        let a = view.with_delta(Arc::new(delta));
        let b = view.try_with_delta(Arc::new(reopened)).unwrap();
        assert_eq!(
            crate::ntriples::to_string(&a).unwrap(),
            crate::ntriples::to_string(&b).unwrap()
        );
        assert_eq!(bytes, delta_to_bytes(&b.deltas()[0]).unwrap());
    }

    #[test]
    fn region_map_names_every_region() {
        let bytes = snapshot_to_bytes(&sample_snapshot()).unwrap();
        let map = region_map(&bytes).unwrap();
        let regions: Vec<SegmentRegion> = map.iter().map(|(r, _)| *r).collect();
        for want in [
            SegmentRegion::Header,
            SegmentRegion::Dictionary,
            SegmentRegion::Sources,
            SegmentRegion::Facts,
            SegmentRegion::Frames,
            SegmentRegion::Taxonomy,
            SegmentRegion::SameAs,
            SegmentRegion::Labels,
        ] {
            assert!(regions.contains(&want), "{want} missing from region map");
        }
        // Ranges are non-overlapping and cover the file exactly.
        let mut ranges: Vec<_> = map.iter().map(|(_, r)| r.clone()).collect();
        ranges.sort_by_key(|r| r.start);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, bytes.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn v1_images_still_open_identically() {
        // The reader must keep accepting the legacy layout: same dump,
        // same query results, and the reopened snapshot re-serializes
        // into a byte-identical *v2* image (proving the index rebuild
        // is exact, not merely equivalent).
        let snap = sample_snapshot();
        let v1 = snapshot_to_bytes_v1(&snap).unwrap();
        assert_eq!(v1[4], FORMAT_VERSION_V1 as u8);
        let reopened = snapshot_from_bytes(&v1).unwrap();
        assert_eq!(
            crate::ntriples::to_string(&snap).unwrap(),
            crate::ntriples::to_string(&reopened).unwrap()
        );
        assert_eq!(snapshot_to_bytes(&snap).unwrap(), snapshot_to_bytes(&reopened).unwrap());

        let view = SegmentedSnapshot::from_base(sample_snapshot().into_shared());
        let mut d = KbBuilder::new();
        d.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        d.retract_str("Steve_Jobs", "bornIn", "SF");
        let delta = d.freeze_delta(&view);
        let v1 = delta_to_bytes_v1(&delta).unwrap();
        assert_eq!(v1[4], FORMAT_VERSION_V1 as u8);
        let reopened = delta_from_bytes(&v1).unwrap();
        assert_eq!(delta_to_bytes(&delta).unwrap(), delta_to_bytes(&reopened).unwrap());
        let a = view.with_delta(Arc::new(delta));
        let b = view.try_with_delta(Arc::new(reopened)).unwrap();
        assert_eq!(
            crate::ntriples::to_string(&a).unwrap(),
            crate::ntriples::to_string(&b).unwrap()
        );
    }

    #[test]
    fn every_flipped_byte_in_a_v1_image_is_caught() {
        let bytes = snapshot_to_bytes_v1(&sample_snapshot()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            match snapshot_from_bytes(&bad) {
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected error kind {other:?}"),
                Ok(_) => panic!("byte {i}: corruption accepted silently"),
            }
        }
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        // Flipping ANY single byte of the image must surface as a typed
        // corruption (or, for a handful of semantically inert bytes such
        // as a float's low mantissa bits, at least never panic).
        let bytes = snapshot_to_bytes(&sample_snapshot()).unwrap();
        let baseline = crate::ntriples::to_string(&sample_snapshot()).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            match snapshot_from_bytes(&bad) {
                Err(StoreError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {i}: unexpected error kind {other:?}"),
                Ok(snap) => {
                    panic!(
                        "byte {i}: corruption accepted silently (dump changed: {})",
                        crate::ntriples::to_string(&snap).unwrap() != baseline
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let bytes = snapshot_to_bytes(&sample_snapshot()).unwrap();
        let err = delta_from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::Header, .. }));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        let err = snapshot_from_bytes(&wrong_version).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::Header, .. }));
        let err = snapshot_from_bytes(&[]).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::Header, .. }));
    }

    #[test]
    fn truncated_file_is_a_header_corruption() {
        let bytes = snapshot_to_bytes(&sample_snapshot()).unwrap();
        for cut in [1, PREAMBLE_LEN - 1, PREAMBLE_LEN + 3, bytes.len() - 1] {
            let err = snapshot_from_bytes(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt { .. }), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn file_round_trip_via_public_api() {
        let dir = std::env::temp_dir().join(format!("kbseg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("base.seg");
        let snap = sample_snapshot();
        let written = snap.write_segment(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let reopened = KbSnapshot::open_segment(&path).unwrap();
        assert_eq!(
            crate::ntriples::to_string(&snap).unwrap(),
            crate::ntriples::to_string(&reopened).unwrap()
        );
        // Queries work identically on the reopened snapshot.
        let jobs = reopened.term("Steve_Jobs").unwrap();
        assert_eq!(
            snap.count_matching(&TriplePattern::with_s(jobs)),
            reopened.count_matching(&TriplePattern::with_s(jobs)),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
