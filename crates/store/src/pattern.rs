//! Triple patterns: the unit of querying.
//!
//! A [`TriplePattern`] fixes any subset of `{s, p, o}`; the store picks
//! the permutation index whose prefix covers the bound components and
//! answers the pattern with a single range scan.

use crate::{TermId, Triple};

/// A query pattern with optionally bound subject, predicate and object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Required subject, if bound.
    pub s: Option<TermId>,
    /// Required predicate, if bound.
    pub p: Option<TermId>,
    /// Required object, if bound.
    pub o: Option<TermId>,
}

/// Which permutation index answers a pattern with a contiguous range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// `(s, p, o)` index; used for bound-s and bound-sp patterns.
    Spo,
    /// `(p, o, s)` index; used for bound-p and bound-po patterns.
    Pos,
    /// `(o, s, p)` index; used for bound-o and bound-os patterns.
    Osp,
}

impl TriplePattern {
    /// Matches every triple.
    pub fn any() -> Self {
        Self::default()
    }

    /// Pattern binding only the subject.
    pub fn with_s(s: TermId) -> Self {
        Self { s: Some(s), ..Self::default() }
    }

    /// Pattern binding only the predicate.
    pub fn with_p(p: TermId) -> Self {
        Self { p: Some(p), ..Self::default() }
    }

    /// Pattern binding only the object.
    pub fn with_o(o: TermId) -> Self {
        Self { o: Some(o), ..Self::default() }
    }

    /// Pattern binding subject and predicate.
    pub fn with_sp(s: TermId, p: TermId) -> Self {
        Self { s: Some(s), p: Some(p), o: None }
    }

    /// Pattern binding predicate and object.
    pub fn with_po(p: TermId, o: TermId) -> Self {
        Self { s: None, p: Some(p), o: Some(o) }
    }

    /// Pattern binding subject and object.
    pub fn with_so(s: TermId, o: TermId) -> Self {
        Self { s: Some(s), p: None, o: Some(o) }
    }

    /// Fully bound pattern (existence check).
    pub fn exact(t: Triple) -> Self {
        Self { s: Some(t.s), p: Some(t.p), o: Some(t.o) }
    }

    /// Number of bound components.
    pub fn bound_count(&self) -> u8 {
        u8::from(self.s.is_some()) + u8::from(self.p.is_some()) + u8::from(self.o.is_some())
    }

    /// Whether `t` satisfies every bound component.
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Chooses the permutation index whose key prefix covers the bound
    /// components, so the pattern becomes one contiguous range.
    ///
    /// The only pattern no single index covers contiguously is `s?o`
    /// (subject+object bound, predicate free); for it we scan the OSP
    /// range of `o` and post-filter on `s` — OSP's second component *is*
    /// `s`, so that range is still contiguous.
    pub fn choose_index(&self) -> IndexChoice {
        match (self.s.is_some(), self.p.is_some(), self.o.is_some()) {
            // Fully bound or s-prefix patterns.
            (true, true, true) | (true, true, false) | (true, false, false) => IndexChoice::Spo,
            (false, true, _) => IndexChoice::Pos,
            (false, false, true) => IndexChoice::Osp,
            // s and o bound: OSP gives the (o, s, *) contiguous range.
            (true, false, true) => IndexChoice::Osp,
            (false, false, false) => IndexChoice::Spo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn matches_only_bound_components() {
        let p = TriplePattern::with_p(TermId(5));
        assert!(p.matches(&t(1, 5, 9)));
        assert!(!p.matches(&t(1, 6, 9)));
        assert!(TriplePattern::any().matches(&t(0, 0, 0)));
    }

    #[test]
    fn index_choice_covers_every_binding_shape() {
        use IndexChoice::*;
        assert_eq!(TriplePattern::any().choose_index(), Spo);
        assert_eq!(TriplePattern::with_s(TermId(1)).choose_index(), Spo);
        assert_eq!(TriplePattern::with_p(TermId(1)).choose_index(), Pos);
        assert_eq!(TriplePattern::with_o(TermId(1)).choose_index(), Osp);
        assert_eq!(TriplePattern::with_sp(TermId(1), TermId(2)).choose_index(), Spo);
        assert_eq!(TriplePattern::with_po(TermId(1), TermId(2)).choose_index(), Pos);
        assert_eq!(TriplePattern::with_so(TermId(1), TermId(2)).choose_index(), Osp);
        assert_eq!(TriplePattern::exact(t(1, 2, 3)).choose_index(), Spo);
    }

    #[test]
    fn bound_count_counts() {
        assert_eq!(TriplePattern::any().bound_count(), 0);
        assert_eq!(TriplePattern::with_so(TermId(0), TermId(1)).bound_count(), 2);
        assert_eq!(TriplePattern::exact(t(1, 2, 3)).bound_count(), 3);
    }
}
