//! A fast, non-cryptographic hasher for the store's hot lookup maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! which none of our internal maps need: they are keyed by dense ids we
//! mint ourselves (`Triple`, `TermId`) or by interned strings. On the
//! cold-start path the `by_triple` map alone re-inserts every fact in
//! the segment, and SipHash was the single largest line item in that
//! profile. This is the word-at-a-time multiply-rotate scheme used by
//! rustc ("FxHash"), reimplemented here because the container image
//! carries no external hashing crate.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Zero-sized builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over 64-bit words; not collision-resistant
/// against adversarial keys, which the store never feeds it.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        for i in 0..10_000u32 {
            assert_eq!(m.insert((i, i ^ 7, i / 3), i), None);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(m.get(&(i, i ^ 7, i / 3)), Some(&i));
        }
    }

    #[test]
    fn string_keys_hash_consistently() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        for i in 0..1_000 {
            m.insert(format!("term_{i}"), i);
        }
        for i in 0..1_000 {
            assert_eq!(m[&format!("term_{i}")], i);
        }
    }
}
