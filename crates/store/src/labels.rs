//! Multilingual labels and the reverse surface-form index.
//!
//! A label is a `(term, language, surface form)` triple: `Steve_Jobs`
//! is labelled `"Steve Jobs"@en`, `"スティーブ・ジョブズ"@ja`, and also by
//! ambiguous short forms such as `"Jobs"@en`. The *reverse* index — which
//! entities a surface form can mean (`means` in YAGO terminology) — is
//! the backbone of NED candidate generation (tutorial §4).

use std::collections::HashMap;

use crate::TermId;

/// A language tag. Kept as a small interned code (e.g. `"en"`, `"de"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lang(pub u16);

/// Multilingual label store with reverse surface-form lookup.
#[derive(Debug, Default, Clone)]
pub struct LabelStore {
    langs: Vec<String>,
    lang_lookup: HashMap<String, Lang>,
    /// (term, lang) -> surface forms
    forward: HashMap<(TermId, Lang), Vec<String>>,
    /// lowercased surface form -> (term, lang) pairs
    reverse: HashMap<String, Vec<(TermId, Lang)>>,
    count: usize,
}

impl LabelStore {
    /// Creates an empty label store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a language tag.
    pub fn lang(&mut self, tag: &str) -> Lang {
        if let Some(&l) = self.lang_lookup.get(tag) {
            return l;
        }
        let l = Lang(self.langs.len() as u16);
        self.langs.push(tag.to_string());
        self.lang_lookup.insert(tag.to_string(), l);
        l
    }

    /// Looks up a language tag without inserting.
    pub fn lang_of(&self, tag: &str) -> Option<Lang> {
        self.lang_lookup.get(tag).copied()
    }

    /// Resolves a language id back to its tag.
    pub fn lang_tag(&self, lang: Lang) -> Option<&str> {
        self.langs.get(lang.0 as usize).map(|s| s.as_str())
    }

    /// Adds a label for `term` in `lang`. Duplicate labels (same term,
    /// lang and form) are ignored. Returns whether the label was new.
    pub fn add(&mut self, term: TermId, lang: Lang, form: &str) -> bool {
        let forms = self.forward.entry((term, lang)).or_default();
        if forms.iter().any(|f| f == form) {
            return false;
        }
        forms.push(form.to_string());
        self.reverse.entry(form.to_lowercase()).or_default().push((term, lang));
        self.count += 1;
        true
    }

    /// All labels of `term` in `lang`.
    pub fn labels(&self, term: TermId, lang: Lang) -> &[String] {
        self.forward.get(&(term, lang)).map_or(&[], |v| v.as_slice())
    }

    /// All `(term, lang)` pairs a surface form can mean, case-insensitive.
    pub fn meanings(&self, form: &str) -> &[(TermId, Lang)] {
        self.reverse.get(&form.to_lowercase()).map_or(&[], |v| v.as_slice())
    }

    /// Distinct terms the surface form can mean (any language), sorted.
    pub fn candidate_entities(&self, form: &str) -> Vec<TermId> {
        let mut out: Vec<TermId> = self.meanings(form).iter().map(|&(t, _)| t).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ambiguity of a surface form: number of distinct candidate terms.
    pub fn ambiguity(&self, form: &str) -> usize {
        self.candidate_entities(form).len()
    }

    /// Total number of stored labels.
    pub fn label_count(&self) -> usize {
        self.count
    }

    /// Number of distinct surface forms.
    pub fn surface_form_count(&self) -> usize {
        self.reverse.len()
    }

    /// Iterates over all `(term, lang, form)` labels in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, Lang, &str)> {
        self.forward
            .iter()
            .flat_map(|(&(t, l), forms)| forms.iter().map(move |f| (t, l, f.as_str())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn add_and_lookup_forward() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        ls.add(t(1), en, "Steve Jobs");
        ls.add(t(1), en, "Jobs");
        assert_eq!(ls.labels(t(1), en), &["Steve Jobs", "Jobs"]);
        assert_eq!(ls.label_count(), 2);
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        assert!(ls.add(t(1), en, "Jobs"));
        assert!(!ls.add(t(1), en, "Jobs"));
        assert_eq!(ls.label_count(), 1);
    }

    #[test]
    fn reverse_lookup_is_case_insensitive() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        ls.add(t(1), en, "Steve Jobs");
        assert_eq!(ls.candidate_entities("steve jobs"), vec![t(1)]);
        assert_eq!(ls.candidate_entities("STEVE JOBS"), vec![t(1)]);
        assert!(ls.candidate_entities("Steve Wozniak").is_empty());
    }

    #[test]
    fn ambiguous_forms_list_all_meanings() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        ls.add(t(1), en, "Jobs"); // the person
        ls.add(t(2), en, "Jobs"); // the film
        assert_eq!(ls.ambiguity("jobs"), 2);
        assert_eq!(ls.candidate_entities("Jobs"), vec![t(1), t(2)]);
    }

    #[test]
    fn languages_are_interned_and_kept_separate() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        let de = ls.lang("de");
        assert_eq!(ls.lang("en"), en);
        assert_eq!(ls.lang_tag(de), Some("de"));
        ls.add(t(1), en, "Germany");
        ls.add(t(1), de, "Deutschland");
        assert_eq!(ls.labels(t(1), en), &["Germany"]);
        assert_eq!(ls.labels(t(1), de), &["Deutschland"]);
        // Reverse lookup spans languages but reports each.
        assert_eq!(ls.meanings("germany"), &[(t(1), en)]);
    }

    #[test]
    fn surface_form_count_deduplicates() {
        let mut ls = LabelStore::new();
        let en = ls.lang("en");
        ls.add(t(1), en, "Jobs");
        ls.add(t(2), en, "Jobs");
        ls.add(t(1), en, "Steve Jobs");
        assert_eq!(ls.surface_form_count(), 2);
    }
}
