//! Beyond-RAM segment access: pread-backed lazy column loading under a
//! byte budget.
//!
//! A v2 base segment on disk is a header plus checksummed regions; the
//! frames region alone holds fifteen compressed columns (three
//! permutations × four columns, plus three bucket arrays) and dominates
//! the file. Eager open decodes all of it, so open cost — and resident
//! memory — grows linearly with KB size. The types here invert that:
//!
//! * [`SegmentSource`] — a positioned-read (`pread`) handle to the
//!   segment file. No mmap: every byte that enters memory does so
//!   through an explicit, checksummed read, and I/O errors surface as
//!   [`StoreError::Io`] instead of `SIGBUS`.
//! * `FrameRegion` — the frames region as a lazily verified byte
//!   range. The first touch streams the region once to check its CRC
//!   and walk the column layout (O(1) memory); afterwards each column
//!   is loadable independently with two `pread`s.
//! * `ColSlot` — one lazily materialized column. `pin` returns a
//!   shared handle, faulting the bytes in on first use and charging
//!   them to the budget.
//! * [`MemoryBudget`] — a byte budget with clock (second-chance)
//!   eviction over every registered slot. Eviction happens *before* a
//!   fault is charged, so `resident_bytes` never exceeds the limit,
//!   and it never writes: columns are clean, file-backed data, so
//!   spilling is just dropping the decoded copy.
//!
//! The budget is a floor, not a guarantee of progress starvation: a
//! single column larger than the whole limit evicts everything else
//! and then loads anyway — queries always complete, at the cost of one
//! oversized resident column.

use std::fs::File;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::error::{SegmentRegion, StoreError};
use crate::frames::{ColFrames, FrameMeta};
use crate::segment_io::{Crc32, FRAME_META_LEN};

/// Columns in the frames region, in serialization order: SPO, POS, OSP
/// permutations (k0, k1, k2, fid each), then the three bucket arrays.
pub(crate) const FRAME_COLS: usize = 15;

/// Chunk size for the streaming CRC pass over the frames region.
const VERIFY_CHUNK: usize = 1 << 20;

fn corrupt(region: SegmentRegion, detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { region, detail: detail.into() }
}

// ---------------------------------------------------------------------
// SegmentSource
// ---------------------------------------------------------------------

/// A positioned-read handle to one segment file. All reads are
/// `pread`-style (no shared seek position), so concurrent faults from
/// different columns never race on a file offset.
#[derive(Debug)]
pub struct SegmentSource {
    file: File,
    path: PathBuf,
    len: u64,
}

impl SegmentSource {
    /// Opens `path` read-only and records its length.
    pub(crate) fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Self { file, path: path.to_path_buf(), len })
    }

    /// File length in bytes.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// The file this source reads.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Reads exactly `buf.len()` bytes at `offset`.
    #[cfg(unix)]
    pub(crate) fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    #[cfg(not(unix))]
    pub(crate) fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), StoreError> {
        // Portable fallback: clone the handle and seek it, leaving the
        // original handle's position untouched.
        use std::io::{Read, Seek, SeekFrom};
        let mut f = self.file.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    /// Reads the byte range `[start, end)` into a fresh buffer.
    pub(crate) fn read_range(&self, range: Range<usize>) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; range.end - range.start];
        self.read_exact_at(range.start as u64, &mut buf)?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------

struct SlotRegistry {
    slots: Vec<Weak<ColSlot>>,
    /// Clock hand for second-chance eviction.
    hand: usize,
}

struct BudgetInner {
    /// Resident-byte ceiling; `usize::MAX` means unbounded.
    limit: usize,
    resident: AtomicUsize,
    faults: AtomicUsize,
    spills: AtomicUsize,
    registry: Mutex<SlotRegistry>,
}

/// A shared byte budget for lazily loaded columns. Cloning shares the
/// budget; every [`SegmentStore`](crate::SegmentStore) owns one and
/// threads it through each lazily opened segment.
#[derive(Clone)]
pub struct MemoryBudget {
    inner: Arc<BudgetInner>,
}

impl std::fmt::Debug for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBudget")
            .field("limit", &self.inner.limit)
            .field("resident", &self.resident_bytes())
            .finish()
    }
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes of resident column data.
    pub fn bounded(limit: usize) -> Self {
        Self {
            inner: Arc::new(BudgetInner {
                limit,
                resident: AtomicUsize::new(0),
                faults: AtomicUsize::new(0),
                spills: AtomicUsize::new(0),
                registry: Mutex::new(SlotRegistry { slots: Vec::new(), hand: 0 }),
            }),
        }
    }

    /// A budget that never evicts (the eager-equivalent default).
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// The configured ceiling, or `None` when unbounded.
    pub fn limit(&self) -> Option<usize> {
        (self.inner.limit != usize::MAX).then_some(self.inner.limit)
    }

    /// Bytes of decoded column data currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.resident.load(Ordering::Relaxed)
    }

    /// Column faults (first touches and re-loads after a spill).
    pub fn page_faults(&self) -> usize {
        self.inner.faults.load(Ordering::Relaxed)
    }

    /// Columns dropped back to disk by eviction.
    pub fn spills(&self) -> usize {
        self.inner.spills.load(Ordering::Relaxed)
    }

    /// Makes a slot's column evictable. Called once per slot at lazy
    /// open; dead weak refs are pruned during eviction scans.
    fn register(&self, slot: &Arc<ColSlot>) {
        let mut reg = self.inner.registry.lock().expect("budget registry poisoned");
        reg.slots.push(Arc::downgrade(slot));
    }

    /// Charges `bytes` for a freshly decoded column, evicting cold
    /// resident columns first so the gauge stays at or under the limit.
    /// Serialized under the registry lock so concurrent faults cannot
    /// jointly overshoot.
    fn charge(&self, bytes: usize) {
        let mut reg = self.inner.registry.lock().expect("budget registry poisoned");
        if self.inner.limit != usize::MAX {
            self.evict_locked(&mut reg, bytes);
        }
        self.inner.resident.fetch_add(bytes, Ordering::Relaxed);
        self.inner.faults.fetch_add(1, Ordering::Relaxed);
        let obs = kb_obs::global();
        obs.counter("store.page_faults").inc();
        obs.gauge("store.resident_bytes").set(self.resident_bytes() as i64);
    }

    /// Returns `bytes` to the budget (slot dropped or evicted).
    fn release(&self, bytes: usize) {
        self.inner.resident.fetch_sub(bytes, Ordering::Relaxed);
        kb_obs::global().gauge("store.resident_bytes").set(self.resident_bytes() as i64);
    }

    /// Clock (second-chance) sweep: each resident slot gets its `hot`
    /// bit cleared on the first pass and is spilled on the second,
    /// until `incoming` more bytes fit under the limit. Victims are
    /// `try_lock`ed so the slot mid-fault on this very thread (which
    /// holds its own data lock) is skipped, never deadlocked on.
    fn evict_locked(&self, reg: &mut SlotRegistry, incoming: usize) {
        reg.slots.retain(|w| w.strong_count() > 0);
        let n = reg.slots.len();
        if n == 0 {
            return;
        }
        let spills = kb_obs::global().counter("store.spills");
        let mut scanned = 0;
        while self.inner.resident.load(Ordering::Relaxed).saturating_add(incoming)
            > self.inner.limit
            && scanned < 2 * n
        {
            let i = reg.hand % n;
            reg.hand = reg.hand.wrapping_add(1);
            scanned += 1;
            let Some(slot) = reg.slots[i].upgrade() else { continue };
            if slot.hot.swap(false, Ordering::Relaxed) {
                continue; // second chance
            }
            let Ok(mut data) = slot.data.try_lock() else { continue };
            if let Some(col) = data.take() {
                let bytes = col.compressed_bytes();
                drop(data);
                drop(col);
                self.inner.resident.fetch_sub(bytes, Ordering::Relaxed);
                self.inner.spills.fetch_add(1, Ordering::Relaxed);
                spills.inc();
            }
        }
    }
}

// ---------------------------------------------------------------------
// FrameRegion
// ---------------------------------------------------------------------

/// Where one column's bytes live inside the frames region (file
/// offsets), captured by the first-touch layout walk.
#[derive(Debug, Clone, Copy)]
struct ColLayout {
    /// Row count of the column.
    len: usize,
    /// Number of frame descriptors.
    n_frames: usize,
    /// File offset of the first [`FrameMeta`].
    metas_at: u64,
    /// File offset of the payload bytes.
    payload_at: u64,
    /// Payload length in bytes.
    payload_len: usize,
}

/// The frames region of one lazily opened segment: a checksummed byte
/// range whose fifteen columns are located (and the region CRC
/// verified) on first touch, then loaded independently on demand.
#[derive(Debug)]
pub(crate) struct FrameRegion {
    source: Arc<SegmentSource>,
    /// Byte range of the region within the file.
    range: Range<usize>,
    /// Expected CRC-32 of the whole region, from the header table.
    crc: u32,
    init: OnceLock<Result<[ColLayout; FRAME_COLS], StoreError>>,
}

impl FrameRegion {
    pub(crate) fn new(source: Arc<SegmentSource>, range: Range<usize>, crc: u32) -> Self {
        Self { source, range, crc, init: OnceLock::new() }
    }

    /// First touch: one streaming pass for the CRC, then a layout walk
    /// with small positioned reads. Both are O(1) in memory regardless
    /// of region size. The result (layout or the typed corruption
    /// error) is cached, so a damaged region fails every access the
    /// same way.
    fn layout(&self) -> Result<&[ColLayout; FRAME_COLS], StoreError> {
        self.init
            .get_or_init(|| {
                self.verify_crc()?;
                self.walk_layout()
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// Forces CRC verification and the layout walk, surfacing cold
    /// corruption as a typed error instead of a later panic.
    pub(crate) fn prefault(&self) -> Result<(), StoreError> {
        self.layout().map(|_| ())
    }

    fn verify_crc(&self) -> Result<(), StoreError> {
        let mut crc = Crc32::new();
        let mut buf = vec![0u8; VERIFY_CHUNK.min(self.range.len().max(1))];
        let mut at = self.range.start as u64;
        let mut left = self.range.len();
        while left > 0 {
            let take = left.min(buf.len());
            self.source.read_exact_at(at, &mut buf[..take])?;
            crc.update(&buf[..take]);
            at += take as u64;
            left -= take;
        }
        if crc.finish() != self.crc {
            return Err(corrupt(
                SegmentRegion::Frames,
                format!("checksum mismatch in {}", self.source.path().display()),
            ));
        }
        Ok(())
    }

    /// Walks the serialized column layout: per column a `len u32 ·
    /// n_frames u32` pair, `n_frames` metas, then `payload_len u32` and
    /// the payload. Only the fixed-size prefixes are read; metas and
    /// payloads are skipped by offset arithmetic, bounds-checked
    /// against the region end.
    fn walk_layout(&self) -> Result<[ColLayout; FRAME_COLS], StoreError> {
        let end = self.range.end as u64;
        let mut at = self.range.start as u64;
        let mut cols =
            [ColLayout { len: 0, n_frames: 0, metas_at: 0, payload_at: 0, payload_len: 0 };
                FRAME_COLS];
        for (i, col) in cols.iter_mut().enumerate() {
            let mut head = [0u8; 8];
            if at + 8 > end {
                return Err(corrupt(SegmentRegion::Frames, format!("column {i} header truncated")));
            }
            self.source.read_exact_at(at, &mut head)?;
            let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as usize;
            let n_frames = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
            let metas_at = at + 8;
            let metas_bytes =
                (n_frames as u64).checked_mul(FRAME_META_LEN as u64).ok_or_else(|| {
                    corrupt(SegmentRegion::Frames, format!("column {i} meta count overflows"))
                })?;
            let payload_len_at =
                metas_at.checked_add(metas_bytes).filter(|&p| p + 4 <= end).ok_or_else(|| {
                    corrupt(SegmentRegion::Frames, format!("column {i} metas run past the region"))
                })?;
            let mut plen = [0u8; 4];
            self.source.read_exact_at(payload_len_at, &mut plen)?;
            let payload_len = u32::from_le_bytes(plen) as usize;
            let payload_at = payload_len_at + 4;
            if payload_at + payload_len as u64 > end {
                return Err(corrupt(
                    SegmentRegion::Frames,
                    format!("column {i} payload runs past the region"),
                ));
            }
            *col = ColLayout { len, n_frames, metas_at, payload_at, payload_len };
            at = payload_at + payload_len as u64;
        }
        if at != end {
            return Err(corrupt(SegmentRegion::Frames, "trailing bytes after the last column"));
        }
        Ok(cols)
    }

    /// Reads and decodes column `i` (two positioned reads: metas, then
    /// payload), re-validating its structural invariants.
    fn load_col(&self, i: usize) -> Result<ColFrames, StoreError> {
        let l = self.layout()?[i];
        let mut meta_bytes = vec![0u8; l.n_frames * FRAME_META_LEN];
        self.source.read_exact_at(l.metas_at, &mut meta_bytes)?;
        let metas: Vec<FrameMeta> = meta_bytes
            .chunks_exact(FRAME_META_LEN)
            .map(|m| FrameMeta {
                base: u32::from_le_bytes(m[0..4].try_into().unwrap()),
                enc: m[4],
                width: m[5],
                end: u32::from_le_bytes(m[6..10].try_into().unwrap()),
            })
            .collect();
        let mut payload = vec![0u8; l.payload_len];
        self.source.read_exact_at(l.payload_at, &mut payload)?;
        ColFrames::from_raw(l.len, metas, payload)
            .map_err(|e| corrupt(SegmentRegion::Frames, format!("column {i}: {e}")))
    }

    /// Row count of column `i` from the layout alone (no column load).
    pub(crate) fn col_len(&self, i: usize) -> Result<usize, StoreError> {
        Ok(self.layout()?[i].len)
    }

    /// Frame count of column `i` from the layout alone.
    pub(crate) fn col_frames(&self, i: usize) -> Result<usize, StoreError> {
        Ok(self.layout()?[i].n_frames)
    }

    /// Compressed footprint the column would occupy if resident
    /// (payload + pad + metas), from the layout alone.
    pub(crate) fn col_bytes(&self, i: usize) -> Result<usize, StoreError> {
        let l = self.layout()?[i];
        Ok(l.payload_len + 8 + l.n_frames * std::mem::size_of::<FrameMeta>())
    }
}

// ---------------------------------------------------------------------
// ColSlot
// ---------------------------------------------------------------------

/// One budget-managed column of a lazily opened segment. The decoded
/// [`ColFrames`] lives behind an `Arc` so eviction can drop the slot's
/// reference while live cursors keep theirs — a spill never invalidates
/// an in-flight query.
#[derive(Debug)]
pub(crate) struct ColSlot {
    region: Arc<FrameRegion>,
    col: usize,
    budget: MemoryBudget,
    /// Second-chance bit: set on every pin, cleared by the clock sweep.
    hot: AtomicBool,
    data: Mutex<Option<Arc<ColFrames>>>,
}

impl ColSlot {
    /// Creates the slot and registers it with the budget's eviction
    /// clock.
    pub(crate) fn new(region: Arc<FrameRegion>, col: usize, budget: MemoryBudget) -> Arc<Self> {
        let slot = Arc::new(Self {
            region,
            col,
            budget: budget.clone(),
            hot: AtomicBool::new(false),
            data: Mutex::new(None),
        });
        budget.register(&slot);
        slot
    }

    /// Returns the decoded column, faulting it in from disk on a miss.
    /// The region CRC has been verified by the time any bytes are
    /// trusted (first touch of the region verifies; `from_raw`
    /// re-validates structure), so an error here is a typed
    /// [`StoreError::Corrupt`], never undefined behavior.
    pub(crate) fn pin(&self) -> Result<Arc<ColFrames>, StoreError> {
        self.hot.store(true, Ordering::Relaxed);
        let mut data = self.data.lock().expect("column slot poisoned");
        if let Some(col) = data.as_ref() {
            return Ok(Arc::clone(col));
        }
        let col = Arc::new(self.region.load_col(self.col)?);
        self.budget.charge(col.compressed_bytes());
        *data = Some(Arc::clone(&col));
        Ok(col)
    }
}

impl Drop for ColSlot {
    fn drop(&mut self) {
        if let Ok(mut data) = self.data.lock() {
            if let Some(col) = data.take() {
                self.budget.release(col.compressed_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_reports_no_limit() {
        let b = MemoryBudget::unbounded();
        assert_eq!(b.limit(), None);
        assert_eq!(b.resident_bytes(), 0);
        let b = MemoryBudget::bounded(4096);
        assert_eq!(b.limit(), Some(4096));
    }
}
