//! Summary statistics over a knowledge base, as reported in experiment T1.

use std::fmt;

/// Snapshot statistics produced by
/// [`KbRead::stats`](crate::KbRead::stats).
#[derive(Debug, Clone, PartialEq)]
pub struct KbStats {
    /// Distinct interned terms.
    pub terms: usize,
    /// Live (non-retracted) facts.
    pub facts: usize,
    /// Distinct subjects among live facts.
    pub subjects: usize,
    /// Distinct predicates among live facts.
    pub predicates: usize,
    /// Classes registered in the taxonomy.
    pub classes: usize,
    /// Subclass edges in the taxonomy.
    pub subclass_edges: usize,
    /// Non-singleton sameAs equivalence classes.
    pub sameas_classes: usize,
    /// Stored multilingual labels.
    pub labels: usize,
    /// Live facts carrying a temporal scope.
    pub temporal_facts: usize,
    /// Mean confidence over live facts (0 when empty).
    pub mean_confidence: f64,
}

impl fmt::Display for KbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "terms:            {}", self.terms)?;
        writeln!(f, "facts:            {}", self.facts)?;
        writeln!(f, "subjects:         {}", self.subjects)?;
        writeln!(f, "predicates:       {}", self.predicates)?;
        writeln!(f, "classes:          {}", self.classes)?;
        writeln!(f, "subclass edges:   {}", self.subclass_edges)?;
        writeln!(f, "sameAs classes:   {}", self.sameas_classes)?;
        writeln!(f, "labels:           {}", self.labels)?;
        writeln!(f, "temporal facts:   {}", self.temporal_facts)?;
        write!(f, "mean confidence:  {:.3}", self.mean_confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_every_field() {
        let s = KbStats {
            terms: 1,
            facts: 2,
            subjects: 3,
            predicates: 4,
            classes: 5,
            subclass_edges: 6,
            sameas_classes: 7,
            labels: 8,
            temporal_facts: 9,
            mean_confidence: 0.5,
        };
        let text = s.to_string();
        for needle in ["terms", "facts", "classes", "sameAs", "labels", "0.500"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
