//! `owl:sameAs` management: equivalence classes of entity terms.
//!
//! Interlinked KBs (the Web of Linked Data, tutorial §1 and §4) require
//! maintaining large `sameAs` equivalence relations. We use a union-find
//! with path compression and union by rank, keyed by [`TermId`], with a
//! deterministic canonical representative (the smallest `TermId` in each
//! class) so that canonicalization is stable across runs.

use std::collections::HashMap;

use crate::TermId;

/// Union-find over entity terms with stable canonical representatives.
#[derive(Debug, Default, Clone)]
pub struct SameAsStore {
    parent: HashMap<TermId, TermId>,
    rank: HashMap<TermId, u32>,
    /// minimum TermId in each root's class — the canonical representative
    min_of_root: HashMap<TermId, TermId>,
    merges: usize,
}

impl SameAsStore {
    /// Creates an empty store (every term is its own class).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `a sameAs b`, merging their classes. Returns whether the
    /// two were previously in different classes.
    pub fn declare(&mut self, a: TermId, b: TermId) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let rank_a = *self.rank.get(&ra).unwrap_or(&0);
        let rank_b = *self.rank.get(&rb).unwrap_or(&0);
        let (winner, loser) = if rank_a >= rank_b { (ra, rb) } else { (rb, ra) };
        self.parent.insert(loser, winner);
        if rank_a == rank_b {
            *self.rank.entry(winner).or_insert(0) += 1;
        }
        let min_w = *self.min_of_root.get(&winner).unwrap_or(&winner);
        let min_l = *self.min_of_root.get(&loser).unwrap_or(&loser);
        self.min_of_root.insert(winner, min_w.min(min_l));
        self.merges += 1;
        true
    }

    /// Root of `t`'s class (with path compression).
    fn find(&mut self, t: TermId) -> TermId {
        let mut root = t;
        while let Some(&p) = self.parent.get(&root) {
            root = p;
        }
        // Path compression pass.
        let mut cur = t;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    /// Root of `t`'s class without mutation (no path compression).
    fn find_readonly(&self, t: TermId) -> TermId {
        let mut root = t;
        while let Some(&p) = self.parent.get(&root) {
            root = p;
        }
        root
    }

    /// The canonical representative of `t`'s class: the smallest
    /// [`TermId`] ever merged into it (deterministic across insertion
    /// orders). A term never declared equivalent to anything is its own
    /// canon.
    pub fn canon(&self, t: TermId) -> TermId {
        let root = self.find_readonly(t);
        *self.min_of_root.get(&root).unwrap_or(&root)
    }

    /// Whether the two terms are known to denote the same entity.
    pub fn same(&self, a: TermId, b: TermId) -> bool {
        self.find_readonly(a) == self.find_readonly(b)
    }

    /// Number of merge operations that actually joined two classes.
    /// Equivalently: (terms touched) − (number of classes).
    pub fn merge_count(&self) -> usize {
        self.merges
    }

    /// Number of non-singleton equivalence classes. O(n) in the number of
    /// terms ever touched.
    pub fn class_count(&self) -> usize {
        self.classes().len()
    }

    /// Materializes all non-singleton equivalence classes, each sorted,
    /// ordered by their canonical representative.
    pub fn classes(&self) -> Vec<Vec<TermId>> {
        let mut by_root: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut members: Vec<TermId> = self.parent.keys().copied().collect();
        members.extend(self.rank.keys().copied());
        members.extend(self.min_of_root.keys().copied());
        members.sort_unstable();
        members.dedup();
        for m in members {
            by_root.entry(self.find_readonly(m)).or_default().push(m);
        }
        let mut out: Vec<Vec<TermId>> = by_root
            .into_values()
            .filter(|v| v.len() > 1)
            .map(|mut v| {
                v.sort_unstable();
                v
            })
            .collect();
        out.sort_by_key(|v| v[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn fresh_terms_are_their_own_canon() {
        let s = SameAsStore::new();
        assert_eq!(s.canon(t(5)), t(5));
        assert!(!s.same(t(1), t(2)));
    }

    #[test]
    fn declare_merges_and_canon_is_minimum() {
        let mut s = SameAsStore::new();
        assert!(s.declare(t(5), t(3)));
        assert!(s.same(t(5), t(3)));
        assert_eq!(s.canon(t(5)), t(3));
        assert_eq!(s.canon(t(3)), t(3));
    }

    #[test]
    fn transitivity_through_chains() {
        let mut s = SameAsStore::new();
        s.declare(t(1), t(2));
        s.declare(t(2), t(3));
        s.declare(t(10), t(11));
        assert!(s.same(t(1), t(3)));
        assert!(!s.same(t(1), t(10)));
        s.declare(t(3), t(10));
        assert!(s.same(t(1), t(11)));
        assert_eq!(s.canon(t(11)), t(1));
    }

    #[test]
    fn redundant_declares_return_false() {
        let mut s = SameAsStore::new();
        assert!(s.declare(t(1), t(2)));
        assert!(!s.declare(t(2), t(1)));
        assert!(!s.declare(t(1), t(1)));
        assert_eq!(s.class_count(), 1);
    }

    #[test]
    fn canon_is_order_independent() {
        let mut a = SameAsStore::new();
        a.declare(t(9), t(4));
        a.declare(t(4), t(7));
        let mut b = SameAsStore::new();
        b.declare(t(7), t(9));
        b.declare(t(9), t(4));
        for i in [4, 7, 9] {
            assert_eq!(a.canon(t(i)), t(4));
            assert_eq!(b.canon(t(i)), t(4));
        }
    }

    #[test]
    fn classes_materializes_sorted_groups() {
        let mut s = SameAsStore::new();
        s.declare(t(5), t(2));
        s.declare(t(8), t(9));
        s.declare(t(2), t(1));
        let classes = s.classes();
        assert_eq!(classes, vec![vec![t(1), t(2), t(5)], vec![t(8), t(9)]]);
    }
}
