//! Subject-hash partitioning: split one knowledge base into N disjoint
//! slices that together answer exactly like the whole, plus the merged
//! read view the scatter path executes over.
//!
//! The partitioning invariant is *subject colocation*: every fact lives
//! in partition `subject_partition(subject, n)` and nowhere else, so a
//! subject-bound pattern is answerable by exactly one partition while
//! triple keys never collide across partitions. The split is by the
//! subject *string* (not its [`TermId`]), so the assignment is stable
//! across rebuilds, delta installs and dictionary growth.
//!
//! Three pieces:
//!
//! * [`partition_snapshot`] slices a base [`KbSnapshot`] into N
//!   snapshots. The term dictionary, source table, taxonomy, sameAs
//!   store and labels are replicated wholesale into every partition, so
//!   all partitions speak the same [`TermId`]/[`SourceId`] language as
//!   the original — a query plan built against one view is valid
//!   against any of them.
//! * [`partition_delta`] splits an already-frozen [`DeltaSegment`] the
//!   same way: the term/source extension tables are replicated, the
//!   fact rows are routed by subject hash. Because a triple always
//!   colocates with its subject, the New/Shadow/Tombstone kind baked
//!   into each row by the monolithic freeze is exactly what a
//!   per-partition freeze would have computed, so the rows are reused
//!   verbatim. Every partition receives a (possibly empty) delta, which
//!   keeps the per-partition term and source totals marching in
//!   lockstep with the global view — the sequential-stacking contract
//!   holds on every replica.
//! * [`PartitionedView`] merges N partition views back into one
//!   [`KbRead`]: pattern scans k-way merge the per-partition cursors
//!   (disjoint key spaces make the flat merge exact), so a query
//!   executed over the merged view is byte-identical to one executed
//!   over the monolithic snapshot the partitions were cut from.

use std::sync::Arc;

use crate::builder::KbCore;
use crate::fact::{Fact, Triple};
use crate::fx::FxHashMap;
use crate::ids::{FactId, TermId};
use crate::labels::LabelStore;
use crate::pattern::TriplePattern;
use crate::read::KbRead;
use crate::sameas::SameAsStore;
use crate::segment::{DeltaSegment, SegmentedSnapshot};
use crate::snapshot::{FrozenIndexes, KbSnapshot, LiveFactsIter, MatchIter};
use crate::store::SourceId;
use crate::taxonomy::Taxonomy;

/// Which of `partitions` slices owns `subject`.
///
/// FNV-1a over the subject string, reduced mod `partitions`. Hashing
/// the *string* rather than a [`TermId`] makes the assignment a pure
/// function of the subject name: the router and the partitioner agree
/// without sharing a dictionary, and the mapping survives re-interning.
pub fn subject_partition(subject: &str, partitions: usize) -> usize {
    debug_assert!(partitions > 0, "partition count must be positive");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in subject.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % partitions as u64) as usize
}

/// Slices a base snapshot into `partitions` disjoint snapshots by
/// subject hash.
///
/// Every partition clones the full dictionary, source table, taxonomy,
/// sameAs classes and labels (ids stay global); only the fact table is
/// split. Fact rows are copied verbatim — retracted rows included, so a
/// partition's `fact_for` visibility answers match the monolith's — and
/// each partition freezes its own permutation indexes over its slice.
///
/// Deterministic: a pure function of the input snapshot, so two routers
/// partitioning the same snapshot agree on every placement.
pub fn partition_snapshot(base: &KbSnapshot, partitions: usize) -> Vec<KbSnapshot> {
    assert!(partitions > 0, "partition count must be positive");
    let template = KbCore {
        dict: base.core().dict.clone(),
        facts: Vec::new(),
        by_triple: FxHashMap::default(),
        sources: base.core().sources.clone(),
        source_lookup: base.core().source_lookup.clone(),
        live: 0,
    };
    let mut cores: Vec<KbCore> = (0..partitions).map(|_| template.clone()).collect();
    for f in &base.core().facts {
        let subject = base.core().dict.resolve(f.triple.s).expect("fact subject is interned");
        let core = &mut cores[subject_partition(subject, partitions)];
        let id = FactId(core.facts.len() as u32);
        core.by_triple.insert(f.triple, id);
        if !f.is_retracted() {
            core.live += 1;
        }
        core.facts.push(f.clone());
    }
    cores
        .into_iter()
        .map(|core| {
            let indexes = FrozenIndexes::build(&core.facts);
            KbSnapshot::from_parts(
                core,
                base.taxonomy().clone(),
                base.sameas().clone(),
                base.labels().clone(),
                indexes,
            )
        })
        .collect()
}

/// Splits a frozen delta segment into `partitions` per-partition deltas
/// by subject hash.
///
/// `view` must be the merged view the delta was frozen against (it
/// resolves subject ids below the delta's extension range). The
/// extension tables are replicated into every output — a partition
/// whose fact slice is empty still extends its term and source space,
/// keeping all replicas aligned with the global id space — and each
/// fact row keeps the New/Shadow/Tombstone kind the monolithic freeze
/// assigned, which subject colocation makes exactly right for the
/// owning partition.
pub fn partition_delta<K: KbRead + ?Sized>(
    delta: &DeltaSegment,
    view: &K,
    partitions: usize,
) -> Vec<DeltaSegment> {
    assert!(partitions > 0, "partition count must be positive");
    let first = delta.first_term as usize;
    let mut facts: Vec<Vec<Fact>> = vec![Vec::new(); partitions];
    let mut kinds: Vec<Vec<crate::segment::FactKind>> = vec![Vec::new(); partitions];
    for (f, k) in delta.facts.iter().zip(&delta.kinds) {
        let s = f.triple.s.index();
        let subject: &str = if s >= first {
            &delta.ext_terms[s - first]
        } else {
            view.resolve(f.triple.s).expect("delta subject is interned in the view")
        };
        let p = subject_partition(subject, partitions);
        facts[p].push(f.clone());
        kinds[p].push(*k);
    }
    facts
        .into_iter()
        .zip(kinds)
        .map(|(facts, kinds)| {
            let indexes = FrozenIndexes::build_with_tombstones(&facts);
            DeltaSegment::from_parts(
                delta.ext_terms.clone(),
                delta.first_term,
                delta.ext_sources.clone(),
                delta.first_source,
                facts,
                kinds,
                indexes,
            )
        })
        .collect()
}

/// N partition views merged back into one coherent [`KbRead`].
///
/// Because partitions hold disjoint triple sets (subject colocation)
/// and share the global term/source id space, the merge is exact and
/// cheap: dictionary lookups delegate to partition 0 (every partition
/// holds the full dictionary), point lookups probe the owning
/// partition's hash maps, and [`matching_iter`](KbRead::matching_iter)
/// k-way merges one cursor per segment across all partitions — within a
/// partition the base→delta cursor order preserves shadowing and
/// tombstone semantics, across partitions keys never collide, so the
/// merged scan yields exactly the monolithic scan's fact sequence.
///
/// This is what the scatter path of a partitioned router executes
/// over: one plan, one execution, results byte-identical to a
/// single-service oracle by construction.
#[derive(Debug, Clone)]
pub struct PartitionedView {
    parts: Vec<Arc<SegmentedSnapshot>>,
    live: usize,
}

impl PartitionedView {
    /// Merges partition views. All partitions must share the global
    /// term/source id space (as produced by [`partition_snapshot`] plus
    /// aligned [`partition_delta`] installs).
    pub fn new(parts: Vec<Arc<SegmentedSnapshot>>) -> Self {
        assert!(!parts.is_empty(), "a partitioned view needs at least one partition");
        debug_assert!(
            parts.iter().all(|p| p.term_count() == parts[0].term_count()),
            "partitions disagree on the term space"
        );
        let live = parts.iter().map(|p| p.len()).sum();
        Self { parts, live }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// One partition's view.
    pub fn part(&self, i: usize) -> &Arc<SegmentedSnapshot> {
        &self.parts[i]
    }
}

impl KbRead for PartitionedView {
    // Dictionary, ontology and source lookups delegate to partition 0:
    // every partition replicates the full term/source space and the
    // base-level taxonomy/sameAs/label stores.
    fn term(&self, term: &str) -> Option<TermId> {
        self.parts[0].term(term)
    }

    fn resolve(&self, id: TermId) -> Option<&str> {
        self.parts[0].resolve(id)
    }

    fn term_count(&self) -> usize {
        self.parts[0].term_count()
    }

    fn taxonomy(&self) -> &Taxonomy {
        self.parts[0].taxonomy()
    }

    fn sameas(&self) -> &SameAsStore {
        self.parts[0].sameas()
    }

    fn labels(&self) -> &LabelStore {
        self.parts[0].labels()
    }

    fn source_name(&self, id: SourceId) -> Option<&str> {
        self.parts[0].source_name(id)
    }

    /// Fact ids address the concatenated partition tables: partition 0
    /// (base, then its deltas), then partition 1, and so on.
    fn fact(&self, id: FactId) -> Option<&Fact> {
        let mut idx = id.index();
        for p in &self.parts {
            let base = &p.base().core().facts;
            if idx < base.len() {
                return base.get(idx);
            }
            idx -= base.len();
            for d in p.deltas() {
                let table = d.fact_table();
                if idx < table.len() {
                    return table.get(idx);
                }
                idx -= table.len();
            }
        }
        None
    }

    fn fact_for(&self, t: &Triple) -> Option<&Fact> {
        // Exactly one partition can hold the triple (subject
        // colocation), so the first hit is authoritative.
        self.parts.iter().find_map(|p| p.fact_for(t))
    }

    fn len(&self) -> usize {
        self.live
    }

    fn facts(&self) -> LiveFactsIter<'_> {
        LiveFactsIter::grouped(
            self.parts.iter().map(|p| (&p.base().core().facts[..], p.deltas())).collect(),
        )
    }

    fn matching_iter(&self, pattern: &TriplePattern) -> MatchIter<'_> {
        let p0 = self.parts[0].base();
        let (head, filter) = p0.indexes.cursor(pattern, &p0.core().facts);
        let mut rest = Vec::new();
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                let base = p.base();
                let (cur, _) = base.indexes.cursor(pattern, &base.core().facts);
                rest.push(cur);
            }
            for d in p.deltas() {
                let (cur, _) = d.indexes.cursor(pattern, &d.facts);
                rest.push(cur);
            }
        }
        MatchIter::with_deltas(head, rest, filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KbBuilder;

    fn sample() -> KbSnapshot {
        let mut b = KbBuilder::new();
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.assert_str("Steve_Wozniak", "founded", "Apple_Inc");
        b.assert_str("Steve_Jobs", "bornIn", "San_Francisco");
        b.assert_str("San_Francisco", "locatedIn", "United_States");
        b.assert_str("Apple_Inc", "headquarteredIn", "Cupertino");
        b.assert_str("Cupertino", "locatedIn", "United_States");
        b.freeze()
    }

    fn merged_view(base: &KbSnapshot, n: usize) -> PartitionedView {
        let parts = partition_snapshot(base, n)
            .into_iter()
            .map(|p| Arc::new(SegmentedSnapshot::from_base(p.into_shared())))
            .collect();
        PartitionedView::new(parts)
    }

    fn all_triples<K: KbRead>(kb: &K) -> Vec<Triple> {
        kb.iter().map(|f| f.triple).collect()
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        // The string hash must never change: partition layouts persist
        // implicitly in which replica owns which subject.
        assert_eq!(subject_partition("Steve_Jobs", 1), 0);
        let p4 = subject_partition("Steve_Jobs", 4);
        assert!(p4 < 4);
        assert_eq!(p4, subject_partition("Steve_Jobs", 4));
        // Different strings should spread (not a correctness
        // requirement, but a canary for a degenerate hash).
        let spread: std::collections::BTreeSet<usize> =
            (0..64).map(|i| subject_partition(&format!("entity_{i}"), 4)).collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let base = sample();
        for n in [1usize, 2, 3, 4] {
            let parts = partition_snapshot(&base, n);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, base.len());
            for (i, p) in parts.iter().enumerate() {
                for f in p.facts() {
                    let s = p.resolve(f.triple.s).unwrap();
                    assert_eq!(subject_partition(s, n), i, "fact in the wrong partition");
                    assert!(base.contains(&f.triple));
                }
                // The full dictionary and source table are replicated.
                assert_eq!(p.term_count(), base.term_count());
            }
        }
    }

    #[test]
    fn merged_view_scans_byte_identical_to_the_monolith() {
        let base = sample();
        let located = base.term("locatedIn").unwrap();
        let jobs = base.term("Steve_Jobs").unwrap();
        for n in [1usize, 2, 3, 4] {
            let view = merged_view(&base, n);
            assert_eq!(view.len(), base.len());
            assert_eq!(all_triples(&view), all_triples(&base));
            for pat in [
                TriplePattern::any(),
                TriplePattern::with_p(located),
                TriplePattern::with_s(jobs),
                TriplePattern::with_o(base.term("United_States").unwrap()),
            ] {
                let got: Vec<Triple> = view.triples_iter(&pat).collect();
                let want: Vec<Triple> = base.triples_iter(&pat).collect();
                assert_eq!(got, want, "pattern scan diverged at n={n}");
                assert_eq!(view.count_matching(&pat), base.count_matching(&pat));
            }
            let mut table: Vec<Triple> = view.facts().map(|f| f.triple).collect();
            let mut want: Vec<Triple> = base.facts().map(|f| f.triple).collect();
            table.sort();
            want.sort();
            assert_eq!(table, want);
        }
    }

    #[test]
    fn partitioned_delta_installs_match_the_monolithic_stack() {
        let base = sample();
        let oracle = SegmentedSnapshot::from_base(base.clone().into_shared());
        // A delta that adds a new subject (new term), shadows an
        // existing fact and tombstones another.
        let mut b = KbBuilder::new();
        b.assert_str("Tim_Cook", "worksAt", "Apple_Inc");
        b.assert_str("Steve_Jobs", "founded", "Apple_Inc");
        b.retract_str("Steve_Jobs", "bornIn", "San_Francisco");
        let jobs = base.term("Steve_Jobs").unwrap();
        let born = base.term("bornIn").unwrap();
        let sf = base.term("San_Francisco").unwrap();
        let delta = Arc::new(b.freeze_delta(&oracle));
        let oracle = oracle.with_delta(Arc::clone(&delta));

        for n in [1usize, 2, 3] {
            let before = merged_view(&base, n);
            let split = partition_delta(delta.as_ref(), &before, n);
            assert_eq!(split.len(), n);
            let total: usize = split.iter().map(|d| d.fact_table().len()).sum();
            assert_eq!(total, delta.fact_table().len());
            let parts: Vec<Arc<SegmentedSnapshot>> = split
                .into_iter()
                .enumerate()
                .map(|(i, d)| Arc::new(before.part(i).with_delta(Arc::new(d))))
                .collect();
            let after = PartitionedView::new(parts);
            assert_eq!(after.len(), oracle.len());
            assert_eq!(all_triples(&after), all_triples(&oracle));
            assert_eq!(after.term_count(), oracle.term_count());
            // The tombstoned triple is gone everywhere.
            assert!(!after.contains(&Triple::new(jobs, born, sf)));
        }
    }
}
