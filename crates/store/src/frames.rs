//! Compressed columnar frames for the permutation indexes.
//!
//! A [`ColFrames`] stores one `u32` column (a permutation key column,
//! a fact-id column, or an offset-bucket array) as a sequence of
//! [`FRAME_ROWS`]-row frames, each encoded independently by whichever
//! scheme is smallest for its value distribution:
//!
//! * **Const** — every value in the frame equals the frame base; no
//!   payload at all. Dominates the leading key column, where a single
//!   term's bucket spans many frames.
//! * **Packed** — frame-of-reference bitpacking: `value - base` stored
//!   in `width` bits, LSB-first. Random access is `O(1)` (one unaligned
//!   64-bit load, shift, mask), which is what keeps point lookups and
//!   binary-search probes cheap.
//! * **Varint** — delta + zigzag LEB128 relative to the previous value.
//!   Sequential decode only; chosen only when it beats bitpacking
//!   (sorted id runs with small gaps).
//!
//! Columns that back `O(1)` probes — fact ids and bucket offsets — are
//! built with [`ColFrames::from_values_packed`], which never emits a
//! varint frame, so `get` on them is always constant-time.
//!
//! [`FrameCursor`] walks a row range frame-at-a-time with a decoded
//! window, and supports a galloping `seek_ge` over sorted columns that
//! skips whole frames using only their `O(1)` first values.

/// Rows per compression frame (and per decoded batch).
pub const FRAME_ROWS: usize = 1024;

/// Zero-payload frame: every row equals `base`.
const ENC_CONST: u8 = 0;
/// Frame-of-reference bitpacked payload (`width` bits per row).
const ENC_PACKED: u8 = 1;
/// Delta + zigzag LEB128 payload (sequential decode only).
const ENC_VARINT: u8 = 2;

/// Padding appended after the last payload byte so packed `get` can
/// always issue one unaligned 8-byte load.
const PAD: usize = 8;

/// Per-frame descriptor. `end` is the *cumulative* exclusive payload
/// offset: frame `f`'s payload spans `metas[f-1].end .. metas[f].end`
/// (frame 0 starts at offset 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Frame-of-reference base (Const/Packed) or first value (Varint).
    pub base: u32,
    /// One of `ENC_CONST` / `ENC_PACKED` / `ENC_VARINT`.
    pub enc: u8,
    /// Bits per packed row (0 for Const and Varint frames).
    pub width: u8,
    /// Exclusive end offset of this frame's payload bytes.
    pub end: u32,
}

/// A compressed `u32` column: frame metadata plus one contiguous
/// payload buffer (padded with `PAD` zero bytes for unaligned loads).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ColFrames {
    len: usize,
    metas: Vec<FrameMeta>,
    bytes: Vec<u8>,
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_varint(mut u: u64, out: &mut Vec<u8>) {
    loop {
        let b = (u & 0x7f) as u8;
        u >>= 7;
        if u == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one LEB128 varint from trusted (already-validated) bytes.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut out = 0u64;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return out;
        }
        shift += 7;
    }
}

/// Bounds- and overflow-checked varint read for untrusted payloads.
fn try_read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut out = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or("varint runs past the frame payload")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint wider than 64 bits".into());
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

/// Appends `vals - base` bitpacked at `width` bits per value, LSB-first.
fn pack_into(vals: &[u32], base: u32, width: u8, out: &mut Vec<u8>) {
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &v in vals {
        acc |= u64::from(v - base) << nbits;
        nbits += u32::from(width);
        while nbits >= 8 {
            out.push((acc & 0xff) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
}

impl ColFrames {
    /// Compresses a column, choosing the smallest encoding per frame
    /// (Const, Packed, or Varint).
    pub fn from_values(values: &[u32]) -> Self {
        Self::encode(values, true)
    }

    /// Compresses a column without ever using Varint frames, so `get`
    /// is `O(1)` for every row — required for the fact-id and
    /// bucket-offset columns that back binary-search probes.
    pub fn from_values_packed(values: &[u32]) -> Self {
        Self::encode(values, false)
    }

    fn encode(values: &[u32], allow_varint: bool) -> Self {
        let mut metas = Vec::with_capacity(values.len().div_ceil(FRAME_ROWS));
        let mut bytes = Vec::new();
        let mut scratch = Vec::new();
        for frame in values.chunks(FRAME_ROWS) {
            let (min, max) =
                frame.iter().fold((u32::MAX, 0u32), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            if min == max {
                metas.push(FrameMeta {
                    base: min,
                    enc: ENC_CONST,
                    width: 0,
                    end: bytes.len() as u32,
                });
                continue;
            }
            let width = (32 - (max - min).leading_zeros()) as u8;
            let packed_size = (frame.len() * width as usize).div_ceil(8);
            if allow_varint {
                scratch.clear();
                for w in frame.windows(2) {
                    put_varint(zigzag(i64::from(w[1]) - i64::from(w[0])), &mut scratch);
                    if scratch.len() >= packed_size {
                        break;
                    }
                }
                if scratch.len() < packed_size {
                    bytes.extend_from_slice(&scratch);
                    metas.push(FrameMeta {
                        base: frame[0],
                        enc: ENC_VARINT,
                        width: 0,
                        end: bytes.len() as u32,
                    });
                    continue;
                }
            }
            pack_into(frame, min, width, &mut bytes);
            metas.push(FrameMeta { base: min, enc: ENC_PACKED, width, end: bytes.len() as u32 });
        }
        bytes.extend_from_slice(&[0u8; PAD]);
        Self { len: values.len(), metas, bytes }
    }

    /// Reassembles a column from deserialized parts, validating every
    /// structural invariant an attacker-controlled payload could break.
    /// `payload` excludes the `PAD` bytes (they are not serialized).
    pub fn from_raw(len: usize, metas: Vec<FrameMeta>, payload: Vec<u8>) -> Result<Self, String> {
        if metas.len() != len.div_ceil(FRAME_ROWS) {
            return Err(format!(
                "{} frames cannot cover {} rows (expected {})",
                metas.len(),
                len,
                len.div_ceil(FRAME_ROWS)
            ));
        }
        let mut prev_end = 0usize;
        for (f, m) in metas.iter().enumerate() {
            let end = m.end as usize;
            if end < prev_end || end > payload.len() {
                return Err(format!("frame {f} payload offsets are not monotonic"));
            }
            let rows = frame_rows(len, f);
            let size = end - prev_end;
            match m.enc {
                ENC_CONST => {
                    if size != 0 || m.width != 0 {
                        return Err(format!("const frame {f} carries a payload"));
                    }
                }
                ENC_PACKED => {
                    if m.width == 0 || m.width > 32 {
                        return Err(format!("packed frame {f} has width {}", m.width));
                    }
                    let expect = (rows * m.width as usize).div_ceil(8);
                    if size != expect {
                        return Err(format!(
                            "packed frame {f} payload is {size} bytes, expected {expect}"
                        ));
                    }
                }
                ENC_VARINT => {
                    if m.width != 0 {
                        return Err(format!("varint frame {f} declares a width"));
                    }
                    let frame_bytes = &payload[prev_end..end];
                    let mut pos = 0usize;
                    let mut cur = i64::from(m.base);
                    for _ in 1..rows {
                        let u = try_read_varint(frame_bytes, &mut pos)
                            .map_err(|e| format!("varint frame {f}: {e}"))?;
                        cur += unzigzag(u);
                        if cur < 0 || cur > i64::from(u32::MAX) {
                            return Err(format!("varint frame {f} decodes outside u32 range"));
                        }
                    }
                    if pos != frame_bytes.len() {
                        return Err(format!("varint frame {f} has trailing payload bytes"));
                    }
                }
                other => return Err(format!("frame {f} has unknown encoding {other}")),
            }
            prev_end = end;
        }
        if prev_end != payload.len() {
            return Err("payload extends past the last frame".into());
        }
        let mut bytes = payload;
        bytes.extend_from_slice(&[0u8; PAD]);
        Ok(Self { len, metas, bytes })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.metas.len()
    }

    /// Whether any frame uses the sequential-only Varint encoding.
    pub fn has_varint(&self) -> bool {
        self.metas.iter().any(|m| m.enc == ENC_VARINT)
    }

    /// Frame metadata (for serialization).
    pub fn metas(&self) -> &[FrameMeta] {
        &self.metas
    }

    /// Payload bytes, excluding the in-memory `PAD` suffix (for
    /// serialization).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[..self.bytes.len() - PAD]
    }

    /// In-memory footprint of the compressed column.
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len() + self.metas.len() * std::mem::size_of::<FrameMeta>()
    }

    fn payload_start(&self, f: usize) -> usize {
        if f == 0 {
            0
        } else {
            self.metas[f - 1].end as usize
        }
    }

    /// The first value of frame `f` — `O(1)` for every encoding, which
    /// is what lets [`FrameCursor::seek_ge`] skip whole frames.
    pub fn first_of(&self, f: usize) -> u32 {
        let m = self.metas[f];
        match m.enc {
            ENC_PACKED => m.base + self.get_packed(self.payload_start(f), m.width, 0),
            _ => m.base,
        }
    }

    fn get_packed(&self, payload_start: usize, width: u8, idx: usize) -> u32 {
        let bitpos = idx * width as usize;
        let byte = payload_start + bitpos / 8;
        let word = u64::from_le_bytes(self.bytes[byte..byte + 8].try_into().unwrap());
        let mask = if width == 32 { u64::from(u32::MAX) } else { (1u64 << width) - 1 };
        ((word >> (bitpos % 8)) & mask) as u32
    }

    /// Random access. `O(1)` for Const/Packed frames; `O(frame prefix)`
    /// for Varint frames (columns built with
    /// [`from_values_packed`](Self::from_values_packed) never hit that
    /// case).
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        let f = i / FRAME_ROWS;
        let m = self.metas[f];
        match m.enc {
            ENC_CONST => m.base,
            ENC_PACKED => m.base + self.get_packed(self.payload_start(f), m.width, i % FRAME_ROWS),
            _ => {
                let start = self.payload_start(f);
                let mut pos = start;
                let mut cur = m.base;
                for _ in 0..(i % FRAME_ROWS) {
                    cur = (i64::from(cur) + unzigzag(read_varint(&self.bytes, &mut pos))) as u32;
                }
                cur
            }
        }
    }

    /// Decodes rows `[from, to)` into `out` (appended). Touches each
    /// overlapping frame once; the workhorse behind batch scans.
    pub fn decode_range(&self, from: usize, to: usize, out: &mut Vec<u32>) {
        debug_assert!(from <= to && to <= self.len);
        out.reserve(to - from);
        let mut i = from;
        while i < to {
            let f = i / FRAME_ROWS;
            let m = self.metas[f];
            let frame_base_row = f * FRAME_ROWS;
            let stop = to.min(frame_base_row + frame_rows(self.len, f));
            match m.enc {
                ENC_CONST => out.resize(out.len() + (stop - i), m.base),
                ENC_PACKED => {
                    let start = self.payload_start(f);
                    for r in (i - frame_base_row)..(stop - frame_base_row) {
                        out.push(m.base + self.get_packed(start, m.width, r));
                    }
                }
                _ => {
                    let mut pos = self.payload_start(f);
                    let mut cur = m.base;
                    for r in 0..(stop - frame_base_row) {
                        if r > 0 {
                            cur = (i64::from(cur) + unzigzag(read_varint(&self.bytes, &mut pos)))
                                as u32;
                        }
                        if frame_base_row + r >= i {
                            out.push(cur);
                        }
                    }
                }
            }
            i = stop;
        }
    }

    /// Fully decodes the column.
    pub fn values(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        self.decode_range(0, self.len, &mut out);
        out
    }
}

/// Rows in frame `f` of a `len`-row column (the last frame may be
/// short).
fn frame_rows(len: usize, f: usize) -> usize {
    FRAME_ROWS.min(len - f * FRAME_ROWS)
}

/// A decoding cursor over a row range of one [`ColFrames`] column:
/// sequential frame-at-a-time windows plus a galloping `seek_ge` for
/// sorted columns.
#[derive(Debug, Clone)]
pub struct FrameCursor<'a> {
    col: &'a ColFrames,
    /// Next row to yield (absolute).
    pos: usize,
    /// Exclusive end of the scanned range (absolute).
    end: usize,
    buf: Vec<u32>,
    /// Absolute row of `buf[0]`.
    buf_start: usize,
}

impl<'a> FrameCursor<'a> {
    /// Cursor over the whole column.
    pub fn new(col: &'a ColFrames) -> Self {
        Self::with_range(col, 0, col.len())
    }

    /// Cursor over rows `[pos, end)`.
    pub fn with_range(col: &'a ColFrames, pos: usize, end: usize) -> Self {
        debug_assert!(pos <= end && end <= col.len());
        Self { col, pos, end, buf: Vec::new(), buf_start: pos }
    }

    /// Rows left to yield.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    fn fill(&mut self) {
        self.buf.clear();
        self.buf_start = self.pos;
        if self.pos >= self.end {
            return;
        }
        // Decode to the end of the current frame (or the range end).
        let stop = self.end.min((self.pos / FRAME_ROWS + 1) * FRAME_ROWS);
        self.col.decode_range(self.pos, stop, &mut self.buf);
    }

    /// The decoded rows at the cursor head (at most one frame's worth);
    /// empty iff the cursor is exhausted. Consume with
    /// [`advance`](Self::advance).
    pub fn window(&mut self) -> &[u32] {
        if self.pos >= self.buf_start + self.buf.len() {
            self.fill();
        }
        &self.buf[self.pos - self.buf_start..]
    }

    /// Consumes `n` rows of the current window.
    pub fn advance(&mut self, n: usize) {
        debug_assert!(self.pos + n <= self.end);
        self.pos += n;
    }

    /// The value at the cursor head without consuming it.
    pub fn peek(&mut self) -> Option<u32> {
        self.window().first().copied()
    }

    /// Yields the value at the cursor head.
    pub fn next_val(&mut self) -> Option<u32> {
        let v = self.peek()?;
        self.pos += 1;
        Some(v)
    }

    /// Advances a cursor over a *sorted* range until the head value is
    /// `>= target` (or the range is exhausted). Gallops: once the
    /// current decoded window is exhausted, whole frames are skipped
    /// using only their `O(1)` first values.
    pub fn seek_ge(&mut self, target: u32) {
        loop {
            let win = self.window();
            match win.last() {
                None => return,
                Some(&last) if last >= target => {
                    let skip = win.partition_point(|&v| v < target);
                    self.pos += skip;
                    return;
                }
                Some(_) => self.pos += win.len(),
            }
            // Skip whole frames whose first value is still below target.
            loop {
                let f = self.pos / FRAME_ROWS;
                let next_start = (f + 1) * FRAME_ROWS;
                if next_start >= self.end
                    || next_start >= self.col.len()
                    || self.col.first_of(f + 1) >= target
                {
                    break;
                }
                self.pos = next_start;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) {
        for col in [ColFrames::from_values(values), ColFrames::from_values_packed(values)] {
            assert_eq!(col.values(), values, "full decode");
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(col.get(i), v, "get({i})");
            }
            // from_raw over the serialized parts reproduces the column.
            let back = ColFrames::from_raw(col.len(), col.metas().to_vec(), col.payload().to_vec())
                .expect("from_raw");
            assert_eq!(back, col);
        }
    }

    #[test]
    fn roundtrips_every_encoding() {
        roundtrip(&[]);
        roundtrip(&[7]);
        roundtrip(&vec![42; 5000]); // const frames
        roundtrip(&(0..5000).collect::<Vec<_>>()); // tiny deltas → varint
        let jumpy: Vec<u32> = (0..5000).map(|i| (i as u32).wrapping_mul(2654435761) >> 3).collect();
        roundtrip(&jumpy); // wide range → packed
        roundtrip(&[0, u32::MAX, 0, u32::MAX, 7]); // width-32 frames
        let mixed: Vec<u32> = (0..4000)
            .map(|i| {
                if i < 1024 {
                    9
                } else if i < 2048 {
                    i as u32
                } else {
                    i as u32 * 977
                }
            })
            .collect();
        roundtrip(&mixed);
    }

    #[test]
    fn packed_only_constructor_never_emits_varint() {
        let sorted: Vec<u32> = (0..10_000).collect();
        let packed = ColFrames::from_values_packed(&sorted);
        assert!(!packed.has_varint());
        let free = ColFrames::from_values(&sorted);
        assert!(free.has_varint(), "sorted small-gap data should pick varint when allowed");
        assert!(free.compressed_bytes() < packed.compressed_bytes());
    }

    #[test]
    fn sorted_runs_compress_well_below_raw() {
        // A plausible permutation key column: long sorted runs.
        let vals: Vec<u32> = (0..100_000u32).map(|i| i / 7).collect();
        let col = ColFrames::from_values(&vals);
        let raw = vals.len() * 4;
        assert!(
            col.compressed_bytes() * 3 < raw,
            "expected ≥3× compression, got {} of {raw}",
            col.compressed_bytes()
        );
    }

    #[test]
    fn decode_range_matches_get_everywhere() {
        let vals: Vec<u32> = (0..3000u32).map(|i| i.wrapping_mul(2654435761) % 10_000).collect();
        let col = ColFrames::from_values(&vals);
        for (from, to) in [(0, 0), (0, 1), (5, 2100), (1020, 1030), (1024, 2048), (2999, 3000)] {
            let mut out = Vec::new();
            col.decode_range(from, to, &mut out);
            assert_eq!(out, &vals[from..to], "range {from}..{to}");
        }
    }

    #[test]
    fn cursor_seek_ge_matches_partition_point() {
        let vals: Vec<u32> = (0..9000u32).map(|i| i / 3 * 2).collect(); // sorted with dups
        let col = ColFrames::from_values(&vals);
        for target in [0, 1, 2, 777, 2048, 5999, 6000, 7000] {
            let mut cur = FrameCursor::new(&col);
            cur.seek_ge(target);
            let expect = vals.partition_point(|&v| v < target);
            assert_eq!(cur.remaining(), vals.len() - expect, "target {target}");
            assert_eq!(cur.peek(), vals.get(expect).copied());
        }
        // Seeking past the end empties the cursor.
        let mut cur = FrameCursor::new(&col);
        cur.seek_ge(u32::MAX);
        assert_eq!(cur.remaining(), 0);
        assert_eq!(cur.peek(), None);
    }

    #[test]
    fn cursor_windows_cover_the_range_in_order() {
        let vals: Vec<u32> = (0..2600u32).map(|i| i.wrapping_mul(7919) % 500).collect();
        let col = ColFrames::from_values(&vals);
        let mut cur = FrameCursor::with_range(&col, 3, 2591);
        let mut seen = Vec::new();
        loop {
            let win = cur.window();
            if win.is_empty() {
                break;
            }
            let n = win.len().min(100); // consume in odd-sized bites
            seen.extend_from_slice(&win[..n]);
            cur.advance(n);
        }
        assert_eq!(seen, &vals[3..2591]);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn from_raw_rejects_structural_damage() {
        let vals: Vec<u32> = (0..2500).collect();
        let col = ColFrames::from_values(&vals);
        let (len, metas, payload) = (col.len(), col.metas().to_vec(), col.payload().to_vec());
        // Wrong frame count.
        assert!(ColFrames::from_raw(len + FRAME_ROWS, metas.clone(), payload.clone()).is_err());
        // Unknown encoding.
        let mut bad = metas.clone();
        bad[0].enc = 9;
        assert!(ColFrames::from_raw(len, bad, payload.clone()).is_err());
        // Truncated payload.
        assert!(
            ColFrames::from_raw(len, metas.clone(), payload[..payload.len() - 1].to_vec()).is_err()
        );
        // Non-monotonic offsets.
        let mut bad = metas.clone();
        if bad.len() > 1 {
            bad[1].end = 0;
            assert!(ColFrames::from_raw(len, bad, payload.clone()).is_err());
        }
        // Over-wide packed frame.
        let packed = ColFrames::from_values_packed(&vals);
        let mut bad = packed.metas().to_vec();
        bad[0].width = 33;
        assert!(ColFrames::from_raw(packed.len(), bad, packed.payload().to_vec()).is_err());
        let ok = ColFrames::from_raw(len, metas, payload).unwrap();
        assert_eq!(ok.values(), vals);
    }
}
