//! The store manifest: the single small file that names which segment
//! files constitute the current KB — base segment, sealed delta stack,
//! and the active WAL — plus the generation and the highest WAL
//! sequence number already sealed into delta files.
//!
//! The manifest is the commit point for every multi-file operation.
//! It is only ever replaced atomically (write temp → fsync → rename →
//! fsync parent dir), so a reader either sees the old complete file
//! list or the new one, never a half-written mixture. Any crash window
//! between writing new segment files and renaming the manifest leaves
//! extra *unreferenced* files on disk, which recovery garbage-collects;
//! it never leaves the manifest pointing at files that don't exist.
//!
//! Format: a short line-oriented text file, CRC-sealed by its last line
//! so truncation or editing is detected, not misread:
//!
//! ```text
//! kbstore-manifest v1
//! generation 3
//! applied_seq 12
//! base base-3.seg
//! delta delta-3-11.seg
//! delta delta-3-12.seg
//! wal wal-3.log
//! compacted_from 2
//! crc 0x1A2B3C4D
//! ```

use std::path::Path;

use crate::error::SegmentRegion;
use crate::segment_io::{crc32, write_file_atomic};
use crate::StoreError;

/// Name of the manifest file inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "kbstore-manifest v1";

fn corrupt(detail: impl Into<String>) -> StoreError {
    StoreError::Corrupt { region: SegmentRegion::Manifest, detail: detail.into() }
}

/// The durable description of a store: which files hold the KB and how
/// far the WAL has been sealed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Compaction generation; bumped each time a new base is written.
    pub generation: u64,
    /// Highest WAL sequence number whose delta is sealed into a
    /// standalone `delta-*.seg` file. WAL records with `seq <=
    /// applied_seq` are duplicates of sealed files and are skipped on
    /// replay — this is what makes seal/crash windows idempotent.
    pub applied_seq: u64,
    /// File name (relative to the store directory) of the base segment.
    pub base: String,
    /// Sealed delta file names, oldest first.
    pub deltas: Vec<String>,
    /// File name of the active WAL.
    pub wal: String,
    /// Generation this store was compacted from, if any (lineage).
    pub compacted_from: Option<u64>,
}

impl Manifest {
    /// Serializes to the CRC-sealed text form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(MANIFEST_HEADER);
        body.push('\n');
        body.push_str(&format!("generation {}\n", self.generation));
        body.push_str(&format!("applied_seq {}\n", self.applied_seq));
        body.push_str(&format!("base {}\n", self.base));
        for d in &self.deltas {
            body.push_str(&format!("delta {d}\n"));
        }
        body.push_str(&format!("wal {}\n", self.wal));
        if let Some(from) = self.compacted_from {
            body.push_str(&format!("compacted_from {from}\n"));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc 0x{crc:08X}\n"));
        body.into_bytes()
    }

    /// Parses and CRC-verifies a manifest. Every malformed shape maps
    /// to a typed [`StoreError::Corrupt`] in the `manifest` region.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let text = std::str::from_utf8(bytes).map_err(|_| corrupt("manifest is not UTF-8"))?;
        // Split off the trailing `crc 0x...` line and verify it covers
        // everything before it.
        let trimmed = text.strip_suffix('\n').ok_or_else(|| corrupt("missing final newline"))?;
        let (body_end, crc_line) = match trimmed.rfind('\n') {
            Some(i) => (i + 1, &trimmed[i + 1..]),
            None => return Err(corrupt("manifest has no checksum line")),
        };
        let stated = crc_line
            .strip_prefix("crc 0x")
            .and_then(|hex| u32::from_str_radix(hex, 16).ok())
            .ok_or_else(|| corrupt("malformed checksum line"))?;
        let body = &text[..body_end];
        let actual = crc32(body.as_bytes());
        if stated != actual {
            return Err(corrupt(format!(
                "manifest checksum mismatch (stated 0x{stated:08X}, computed 0x{actual:08X})"
            )));
        }

        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt("unrecognized manifest header"));
        }
        let mut generation = None;
        let mut applied_seq = None;
        let mut base = None;
        let mut deltas = Vec::new();
        let mut wal = None;
        let mut compacted_from = None;
        for line in lines {
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| corrupt(format!("malformed manifest line {line:?}")))?;
            match key {
                "generation" => {
                    generation = Some(value.parse().map_err(|_| corrupt("bad generation number"))?);
                }
                "applied_seq" => {
                    applied_seq =
                        Some(value.parse().map_err(|_| corrupt("bad applied_seq number"))?);
                }
                "base" => base = Some(value.to_string()),
                "delta" => deltas.push(value.to_string()),
                "wal" => wal = Some(value.to_string()),
                "compacted_from" => {
                    compacted_from =
                        Some(value.parse().map_err(|_| corrupt("bad compacted_from number"))?);
                }
                other => return Err(corrupt(format!("unknown manifest key {other:?}"))),
            }
        }
        Ok(Self {
            generation: generation.ok_or_else(|| corrupt("manifest missing generation"))?,
            applied_seq: applied_seq.ok_or_else(|| corrupt("manifest missing applied_seq"))?,
            base: base.ok_or_else(|| corrupt("manifest missing base segment"))?,
            deltas,
            wal: wal.ok_or_else(|| corrupt("manifest missing wal"))?,
            compacted_from,
        })
    }

    /// Reads and verifies the manifest inside `dir`.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let bytes = std::fs::read(dir.join(MANIFEST_NAME))?;
        Self::from_bytes(&bytes)
    }

    /// Atomically replaces the manifest inside `dir`: the rename is the
    /// commit point for whatever multi-file operation preceded it.
    pub fn store(&self, dir: &Path, fsync: bool) -> Result<(), StoreError> {
        write_file_atomic(&dir.join(MANIFEST_NAME), &self.to_bytes(), fsync)
    }

    /// Every file name the manifest references (used by recovery to
    /// garbage-collect unreferenced leftovers from crashed operations).
    pub fn referenced_files(&self) -> Vec<&str> {
        let mut out = vec![self.base.as_str(), self.wal.as_str()];
        out.extend(self.deltas.iter().map(String::as_str));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            generation: 3,
            applied_seq: 12,
            base: "base-3.seg".into(),
            deltas: vec!["delta-3-11.seg".into(), "delta-3-12.seg".into()],
            wal: "wal-3.log".into(),
            compacted_from: Some(2),
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);

        let minimal = Manifest {
            generation: 0,
            applied_seq: 0,
            base: "base-0.seg".into(),
            deltas: vec![],
            wal: "wal-0.log".into(),
            compacted_from: None,
        };
        assert_eq!(Manifest::from_bytes(&minimal.to_bytes()).unwrap(), minimal);
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xA5;
            let result = Manifest::from_bytes(&bad);
            assert!(
                matches!(result, Err(StoreError::Corrupt { region: SegmentRegion::Manifest, .. })),
                "flip at byte {i} was not caught: {result:?}"
            );
        }
    }

    #[test]
    fn truncation_is_caught() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Manifest::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes was not caught"
            );
        }
    }

    #[test]
    fn referenced_files_lists_everything() {
        let m = sample();
        let mut files = m.referenced_files();
        files.sort_unstable();
        assert_eq!(files, vec!["base-3.seg", "delta-3-11.seg", "delta-3-12.seg", "wal-3.log"]);
    }
}
