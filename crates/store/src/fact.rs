//! Triples and facts.
//!
//! A [`Triple`] is the bare subject–predicate–object statement; a
//! [`Fact`] wraps a triple with the metadata that big-data KB
//! construction needs to track: extraction confidence, provenance
//! source and temporal scope.

use crate::store::SourceId;
use crate::time::TimeSpan;
use crate::TermId;

/// A bare SPO statement over interned terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject term.
    pub s: TermId,
    /// Predicate (relation) term.
    pub p: TermId,
    /// Object term (entity or literal).
    pub o: TermId,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Self { s, p, o }
    }

    /// The triple reordered as `(p, o, s)` — the POS index key.
    #[inline]
    pub fn pos_key(&self) -> (TermId, TermId, TermId) {
        (self.p, self.o, self.s)
    }

    /// The triple reordered as `(o, s, p)` — the OSP index key.
    #[inline]
    pub fn osp_key(&self) -> (TermId, TermId, TermId) {
        (self.o, self.s, self.p)
    }

    /// The natural `(s, p, o)` key.
    #[inline]
    pub fn spo_key(&self) -> (TermId, TermId, TermId) {
        (self.s, self.p, self.o)
    }
}

/// A triple plus the provenance/confidence/temporal metadata attached by
/// the harvesting pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// The statement itself.
    pub triple: Triple,
    /// Extraction confidence in `[0, 1]`. Manually asserted facts use 1.0.
    /// A confidence of exactly 0.0 marks a retracted fact.
    pub confidence: f64,
    /// Which registered source produced this fact.
    pub source: SourceId,
    /// Validity interval, if the harvester inferred one.
    pub span: Option<TimeSpan>,
}

impl Fact {
    /// A fully-confident fact with default provenance and no temporal
    /// scope.
    pub fn asserted(triple: Triple) -> Self {
        Self { triple, confidence: 1.0, source: SourceId::DEFAULT, span: None }
    }

    /// Whether the fact has been retracted (confidence forced to zero).
    pub fn is_retracted(&self) -> bool {
        self.confidence == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn permutation_keys_reorder_components() {
        let tr = t(1, 2, 3);
        assert_eq!(tr.spo_key(), (TermId(1), TermId(2), TermId(3)));
        assert_eq!(tr.pos_key(), (TermId(2), TermId(3), TermId(1)));
        assert_eq!(tr.osp_key(), (TermId(3), TermId(1), TermId(2)));
    }

    #[test]
    fn asserted_facts_are_fully_confident() {
        let f = Fact::asserted(t(1, 2, 3));
        assert_eq!(f.confidence, 1.0);
        assert!(!f.is_retracted());
        assert!(f.span.is_none());
    }

    #[test]
    fn triple_ordering_is_lexicographic_spo() {
        assert!(t(1, 9, 9) < t(2, 0, 0));
        assert!(t(1, 1, 1) < t(1, 1, 2));
    }
}
