//! The class taxonomy: a subclass-of DAG with transitive subsumption.
//!
//! Every entity in a KB belongs to one or more classes, and classes are
//! organized into a taxonomy where special classes are subsumed by more
//! general ones (tutorial §2, "Harvesting Knowledge on Entities and
//! Classes"). The taxonomy is kept acyclic by construction:
//! [`Taxonomy::add_subclass`] rejects edges that would close a cycle.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::{StoreError, TermId};

/// A subclass-of DAG over class terms.
#[derive(Debug, Default, Clone)]
pub struct Taxonomy {
    /// class -> direct superclasses
    up: HashMap<TermId, Vec<TermId>>,
    /// class -> direct subclasses
    down: HashMap<TermId, Vec<TermId>>,
    /// all classes ever mentioned (including leaves/roots without edges)
    classes: HashSet<TermId>,
    edges: usize,
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class without any edges (idempotent).
    pub fn add_class(&mut self, class: TermId) {
        self.classes.insert(class);
    }

    /// Adds `sub subclassOf sup`. Rejects self-loops and edges that would
    /// create a cycle. Duplicate edges are ignored. Returns whether a new
    /// edge was inserted.
    pub fn add_subclass(&mut self, sub: TermId, sup: TermId) -> Result<bool, StoreError> {
        if sub == sup {
            return Err(StoreError::TaxonomyCycle { sub, sup });
        }
        if self.is_subclass_of(sup, sub) {
            return Err(StoreError::TaxonomyCycle { sub, sup });
        }
        self.classes.insert(sub);
        self.classes.insert(sup);
        let ups = self.up.entry(sub).or_default();
        if ups.contains(&sup) {
            return Ok(false);
        }
        ups.push(sup);
        self.down.entry(sup).or_default().push(sub);
        self.edges += 1;
        Ok(true)
    }

    /// Every class the taxonomy knows about (including isolated ones
    /// registered via [`add_class`](Self::add_class)), sorted — the
    /// deterministic order the segment writer serializes.
    pub(crate) fn all_classes(&self) -> Vec<TermId> {
        let mut out: Vec<TermId> = self.classes.iter().copied().collect();
        out.sort_unstable();
        out
    }

    /// Direct superclasses of `class`.
    pub fn superclasses(&self, class: TermId) -> &[TermId] {
        self.up.get(&class).map_or(&[], |v| v.as_slice())
    }

    /// Direct subclasses of `class`.
    pub fn subclasses(&self, class: TermId) -> &[TermId] {
        self.down.get(&class).map_or(&[], |v| v.as_slice())
    }

    /// Transitive (reflexive) subsumption test: is `sub` equal to or a
    /// descendant of `sup`?
    pub fn is_subclass_of(&self, sub: TermId, sup: TermId) -> bool {
        if sub == sup {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([sub]);
        while let Some(c) = queue.pop_front() {
            for &parent in self.superclasses(c) {
                if parent == sup {
                    return true;
                }
                if seen.insert(parent) {
                    queue.push_back(parent);
                }
            }
        }
        false
    }

    /// All ancestors of `class` (excluding itself), breadth-first.
    pub fn ancestors(&self, class: TermId) -> Vec<TermId> {
        self.closure(class, |t, c| t.superclasses(c))
    }

    /// All descendants of `class` (excluding itself), breadth-first.
    pub fn descendants(&self, class: TermId) -> Vec<TermId> {
        self.closure(class, |t, c| t.subclasses(c))
    }

    fn closure(&self, start: TermId, step: impl Fn(&Self, TermId) -> &[TermId]) -> Vec<TermId> {
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::from([start]);
        while let Some(c) = queue.pop_front() {
            for &next in step(self, c) {
                if seen.insert(next) {
                    order.push(next);
                    queue.push_back(next);
                }
            }
        }
        order
    }

    /// Root classes: classes with no superclass.
    pub fn roots(&self) -> Vec<TermId> {
        let mut roots: Vec<TermId> =
            self.classes.iter().copied().filter(|c| self.superclasses(*c).is_empty()).collect();
        roots.sort_unstable();
        roots
    }

    /// Leaf classes: classes with no subclass.
    pub fn leaves(&self) -> Vec<TermId> {
        let mut leaves: Vec<TermId> =
            self.classes.iter().copied().filter(|c| self.subclasses(*c).is_empty()).collect();
        leaves.sort_unstable();
        leaves
    }

    /// Lowest common ancestors of two classes: the ancestors of both
    /// (reflexive) that have no descendant also common to both.
    pub fn lowest_common_ancestors(&self, a: TermId, b: TermId) -> Vec<TermId> {
        let mut anc_a: HashSet<TermId> = self.ancestors(a).into_iter().collect();
        anc_a.insert(a);
        let mut anc_b: HashSet<TermId> = self.ancestors(b).into_iter().collect();
        anc_b.insert(b);
        let common: HashSet<TermId> = anc_a.intersection(&anc_b).copied().collect();
        let mut lcas: Vec<TermId> = common
            .iter()
            .copied()
            .filter(|&c| {
                !self
                    .subclasses(c)
                    .iter()
                    .any(|sub| common.contains(sub) || self.descendants_contain_any(*sub, &common))
            })
            .collect();
        lcas.sort_unstable();
        lcas
    }

    fn descendants_contain_any(&self, start: TermId, set: &HashSet<TermId>) -> bool {
        if set.contains(&start) {
            return true;
        }
        self.descendants(start).iter().any(|d| set.contains(d))
    }

    /// Depth of a class: length of the longest upward path to a root.
    pub fn depth(&self, class: TermId) -> usize {
        let ups = self.superclasses(class);
        if ups.is_empty() {
            return 0;
        }
        1 + ups.iter().map(|&p| self.depth(p)).max().unwrap_or(0)
    }

    /// Number of registered classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of subclass edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether `class` is known to the taxonomy.
    pub fn contains(&self, class: TermId) -> bool {
        self.classes.contains(&class)
    }

    /// Iterates over all `(sub, sup)` edges in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.up.iter().flat_map(|(&sub, sups)| sups.iter().map(move |&sup| (sub, sup)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> TermId {
        TermId(i)
    }

    /// person(0) -> entity(9); scientist(1) -> person; physicist(2) -> scientist;
    /// musician(3) -> person; org(4) -> entity
    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new();
        t.add_subclass(c(0), c(9)).unwrap();
        t.add_subclass(c(1), c(0)).unwrap();
        t.add_subclass(c(2), c(1)).unwrap();
        t.add_subclass(c(3), c(0)).unwrap();
        t.add_subclass(c(4), c(9)).unwrap();
        t
    }

    #[test]
    fn transitive_subsumption() {
        let t = sample();
        assert!(t.is_subclass_of(c(2), c(9)));
        assert!(t.is_subclass_of(c(2), c(0)));
        assert!(t.is_subclass_of(c(2), c(2)), "reflexive");
        assert!(!t.is_subclass_of(c(0), c(2)), "not symmetric");
        assert!(!t.is_subclass_of(c(3), c(1)));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut t = sample();
        assert!(matches!(t.add_subclass(c(9), c(2)), Err(StoreError::TaxonomyCycle { .. })));
        assert!(matches!(t.add_subclass(c(0), c(0)), Err(StoreError::TaxonomyCycle { .. })));
        // Failed inserts leave the structure untouched.
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut t = sample();
        assert!(!t.add_subclass(c(1), c(0)).unwrap());
        assert_eq!(t.edge_count(), 5);
    }

    #[test]
    fn ancestors_and_descendants() {
        let t = sample();
        let anc = t.ancestors(c(2));
        assert_eq!(anc, vec![c(1), c(0), c(9)]);
        let mut desc = t.descendants(c(0));
        desc.sort_unstable();
        assert_eq!(desc, vec![c(1), c(2), c(3)]);
        assert!(t.ancestors(c(9)).is_empty());
    }

    #[test]
    fn roots_and_leaves() {
        let t = sample();
        assert_eq!(t.roots(), vec![c(9)]);
        assert_eq!(t.leaves(), vec![c(2), c(3), c(4)]);
    }

    #[test]
    fn lca_finds_deepest_shared_ancestor() {
        let t = sample();
        assert_eq!(t.lowest_common_ancestors(c(2), c(3)), vec![c(0)]);
        assert_eq!(t.lowest_common_ancestors(c(2), c(4)), vec![c(9)]);
        assert_eq!(t.lowest_common_ancestors(c(2), c(1)), vec![c(1)]);
        assert_eq!(t.lowest_common_ancestors(c(2), c(2)), vec![c(2)]);
    }

    #[test]
    fn depth_measures_longest_path() {
        let t = sample();
        assert_eq!(t.depth(c(9)), 0);
        assert_eq!(t.depth(c(0)), 1);
        assert_eq!(t.depth(c(2)), 3);
    }

    #[test]
    fn diamond_dag_is_allowed() {
        // a -> b, a -> c, b -> d, c -> d : a has two paths to d.
        let mut t = Taxonomy::new();
        t.add_subclass(c(10), c(11)).unwrap();
        t.add_subclass(c(10), c(12)).unwrap();
        t.add_subclass(c(11), c(13)).unwrap();
        t.add_subclass(c(12), c(13)).unwrap();
        assert!(t.is_subclass_of(c(10), c(13)));
        assert_eq!(t.lowest_common_ancestors(c(11), c(12)), vec![c(13)]);
    }

    #[test]
    fn isolated_classes_count() {
        let mut t = Taxonomy::new();
        t.add_class(c(7));
        assert!(t.contains(c(7)));
        assert_eq!(t.class_count(), 1);
        assert_eq!(t.roots(), vec![c(7)]);
        assert_eq!(t.leaves(), vec![c(7)]);
    }
}
