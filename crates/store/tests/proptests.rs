//! Property-based tests for kb-store invariants.

use proptest::prelude::*;

use kb_store::store::SourceId;
use kb_store::{
    Fact, KbBuilder, KbRead, KbShard, KnowledgeBase, LegacyKb, SameAsStore, TermId, TimePoint,
    TimeSpan, Triple, TriplePattern,
};

fn term_strategy() -> impl Strategy<Value = String> {
    // Mix of plain identifiers and nasty strings with escapes/unicode.
    prop_oneof![
        "[A-Za-z_][A-Za-z0-9_]{0,12}",
        "[ -~]{0,8}",
        Just("tab\there".to_string()),
        Just("nl\nhere".to_string()),
        Just("Zürich".to_string()),
    ]
}

proptest! {
    /// Interning any sequence of strings round-trips exactly, and equal
    /// strings always get equal ids.
    #[test]
    fn dictionary_round_trip(words in prop::collection::vec(term_strategy(), 0..40)) {
        let mut d = kb_store::Dictionary::new();
        let ids: Vec<_> = words.iter().map(|w| d.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(d.resolve(*id), Some(w.as_str()));
            prop_assert_eq!(d.get(w), Some(*id));
        }
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                prop_assert_eq!(a == b, ids[i] == ids[j]);
            }
        }
    }

    /// All three permutation indexes agree: any pattern query returns
    /// exactly the set a brute-force filter over all triples returns.
    #[test]
    fn index_consistency(
        triples in prop::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..80),
        qs in 0u32..12, qp in 0u32..4, qo in 0u32..12,
        mask in 0u8..8,
    ) {
        let mut kb = KnowledgeBase::new();
        let mut all: Vec<Triple> = Vec::new();
        for (s, p, o) in &triples {
            // Intern enough terms to cover the id space deterministically.
            let t = Triple::new(
                kb.intern(&format!("e{s}")),
                kb.intern(&format!("r{p}")),
                kb.intern(&format!("e{o}")),
            );
            kb.add_triple(t.s, t.p, t.o);
            if !all.contains(&t) {
                all.push(t);
            }
        }
        let pattern = TriplePattern {
            s: (mask & 1 != 0).then(|| kb.intern(&format!("e{qs}"))),
            p: (mask & 2 != 0).then(|| kb.intern(&format!("r{qp}"))),
            o: (mask & 4 != 0).then(|| kb.intern(&format!("e{qo}"))),
        };
        let mut got = kb.matching_triples(&pattern);
        got.sort();
        let mut expect: Vec<Triple> = all.iter().copied().filter(|t| pattern.matches(t)).collect();
        expect.sort();
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(kb.count_matching(&pattern), expect.len());
    }

    /// Retraction removes exactly the retracted triple from every index.
    #[test]
    fn retraction_is_precise(
        triples in prop::collection::vec((0u32..8, 0u32..3, 0u32..8), 1..40),
        kill in any::<prop::sample::Index>(),
    ) {
        let mut kb = KnowledgeBase::new();
        for (s, p, o) in &triples {
            kb.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let all = kb.matching_triples(&TriplePattern::any());
        let victim = all[kill.index(all.len())];
        let before = kb.len();
        kb.retract(victim);
        prop_assert_eq!(kb.len(), before - 1);
        prop_assert!(!kb.contains(&victim));
        for t in &all {
            if *t != victim {
                prop_assert!(kb.contains(t));
            }
        }
    }

    /// Union-find: same/canon agree, canon is idempotent and minimal.
    #[test]
    fn sameas_invariants(pairs in prop::collection::vec((0u32..30, 0u32..30), 0..60)) {
        let mut s = SameAsStore::new();
        for &(a, b) in &pairs {
            s.declare(TermId(a), TermId(b));
        }
        for i in 0..30u32 {
            let c = s.canon(TermId(i));
            // canon is a fixpoint and a member of the same class
            prop_assert_eq!(s.canon(c), c);
            prop_assert!(s.same(TermId(i), c));
            // canon is minimal within the class
            for j in 0..30u32 {
                if s.same(TermId(i), TermId(j)) {
                    prop_assert!(c <= TermId(j));
                    prop_assert_eq!(s.canon(TermId(j)), c);
                }
            }
        }
        // same is an equivalence relation (spot-check transitivity)
        for i in 0..10u32 {
            for j in 0..10u32 {
                for k in 0..10u32 {
                    if s.same(TermId(i), TermId(j)) && s.same(TermId(j), TermId(k)) {
                        prop_assert!(s.same(TermId(i), TermId(k)));
                    }
                }
            }
        }
    }

    /// Taxonomy stays acyclic no matter what edges we try to add, and
    /// subsumption is transitive.
    #[test]
    fn taxonomy_acyclic_and_transitive(
        edges in prop::collection::vec((0u32..12, 0u32..12), 0..60)
    ) {
        let mut t = kb_store::Taxonomy::new();
        for &(a, b) in &edges {
            // Errors (cycle rejections) are fine; panics are not.
            let _ = t.add_subclass(TermId(a), TermId(b));
        }
        // No class may be a strict subclass of itself via any path.
        for i in 0..12u32 {
            let anc = t.ancestors(TermId(i));
            prop_assert!(!anc.contains(&TermId(i)), "cycle through t{i}");
        }
        // Transitivity.
        for i in 0..12u32 {
            for &a in &t.ancestors(TermId(i)) {
                for &aa in &t.ancestors(a) {
                    prop_assert!(t.is_subclass_of(TermId(i), aa));
                }
            }
        }
    }

    /// Serialization round-trips arbitrary stores: facts, confidences,
    /// spans, labels survive.
    #[test]
    fn ntriples_round_trip(
        facts in prop::collection::vec(
            (term_strategy(), term_strategy(), term_strategy(), 0.01f64..=1.0, prop::option::of(1900i32..2030)),
            0..30
        ),
        labels in prop::collection::vec((term_strategy(), term_strategy()), 0..10),
    ) {
        let mut kb = KnowledgeBase::new();
        for (s, p, o, conf, year) in &facts {
            let t = Triple::new(kb.intern(s), kb.intern(p), kb.intern(o));
            kb.add_fact(Fact {
                triple: t,
                confidence: *conf,
                source: SourceId::DEFAULT,
                span: year.map(|y| TimeSpan::at(TimePoint::year(y))),
            });
        }
        let en = kb.labels.lang("en");
        for (term, form) in &labels {
            let t = kb.intern(term);
            kb.labels.add(t, en, form);
        }
        let text = kb_store::ntriples::to_string(&kb).unwrap();
        let kb2 = kb_store::ntriples::from_str(&text).unwrap();
        prop_assert_eq!(kb2.len(), kb.len());
        prop_assert_eq!(kb2.labels.label_count(), kb.labels.label_count());
        for f in kb.iter() {
            let s = kb.resolve(f.triple.s).unwrap();
            let p = kb.resolve(f.triple.p).unwrap();
            let o = kb.resolve(f.triple.o).unwrap();
            let t2 = Triple::new(
                kb2.term(s).unwrap(),
                kb2.term(p).unwrap(),
                kb2.term(o).unwrap(),
            );
            let f2 = kb2.fact_for(&t2).expect("fact survived");
            prop_assert!((f2.confidence - f.confidence).abs() < 1e-9);
            prop_assert_eq!(f2.span, f.span);
        }
    }

    /// TimeSpan overlap is symmetric; contains implies overlap with the
    /// instant span.
    #[test]
    fn timespan_axioms(
        b1 in 1900i32..2030, len1 in 0i32..40,
        b2 in 1900i32..2030, len2 in 0i32..40,
        probe in 1900i32..2070,
    ) {
        let s1 = TimeSpan::between(TimePoint::year(b1), TimePoint::year(b1 + len1)).unwrap();
        let s2 = TimeSpan::between(TimePoint::year(b2), TimePoint::year(b2 + len2)).unwrap();
        prop_assert_eq!(s1.overlaps(&s2), s2.overlaps(&s1));
        prop_assert!(s1.overlaps(&s1));
        let p = TimePoint::year(probe);
        if s1.contains(&p) {
            prop_assert!(s1.overlaps(&TimeSpan::at(p)));
        }
    }
}

proptest! {
    /// The N-Triples parser never panics on arbitrary input: every
    /// outcome is Ok or a structured parse error.
    #[test]
    fn ntriples_parser_is_total(input in "\\PC{0,300}") {
        let _ = kb_store::ntriples::from_str(&input);
    }

    /// Parser totality on inputs that look almost like records.
    #[test]
    fn ntriples_parser_survives_recordish_lines(
        kind in "[TCSL#X]",
        fields in prop::collection::vec("[a-z0-9.\\-\\\\]{0,10}", 0..8),
    ) {
        let line = format!("{kind}\t{}", fields.join("\t"));
        let _ = kb_store::ntriples::from_str(&line);
    }

    /// The conjunctive-query engine agrees with a brute-force join on
    /// random small KBs and random two-pattern queries.
    #[test]
    fn query_engine_matches_brute_force(
        triples in prop::collection::vec((0u32..6, 0u32..3, 0u32..6), 1..30),
        p1 in 0u32..3, p2 in 0u32..3,
    ) {
        let mut kb = KnowledgeBase::new();
        for &(s, p, o) in &triples {
            kb.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let q = format!("?x r{p1} ?y . ?y r{p2} ?z");
        let Ok(solutions) = kb_store::query::query(&kb, &q) else {
            // r{p} may be absent from the dictionary: fine.
            return Ok(());
        };
        // Brute force over the raw triple list.
        let mut expected: Vec<(String, String, String)> = Vec::new();
        for &(s1, r1, o1) in &triples {
            if r1 != p1 { continue; }
            for &(s2, r2, o2) in &triples {
                if r2 != p2 || o1 != s2 { continue; }
                let row = (format!("e{s1}"), format!("e{o1}"), format!("e{o2}"));
                if !expected.contains(&row) {
                    expected.push(row);
                }
            }
        }
        let mut got: Vec<(String, String, String)> = solutions
            .iter()
            .map(|b| {
                (
                    kb.resolve(b.get("x").unwrap()).unwrap().to_string(),
                    kb.resolve(b.get("y").unwrap()).unwrap().to_string(),
                    kb.resolve(b.get("z").unwrap()).unwrap().to_string(),
                )
            })
            .collect();
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    /// Differential test against the legacy BTreeSet engine: after an
    /// arbitrary interleaving of adds (with confidence/span), retracts
    /// and span updates, the snapshot engine — both the lazily-frozen
    /// `KnowledgeBase` façade and an explicitly `KbBuilder`-built
    /// `KbSnapshot` — answers every pattern shape, count and
    /// time-travel query identically to `LegacyKb`, *including result
    /// order and bit-identical merged confidences*.
    #[test]
    fn snapshot_engine_matches_legacy_store(
        ops in prop::collection::vec(
            (0u32..10, 0u32..4, 0u32..10, 0.05f64..=1.0, prop::option::of(1950i32..2030), 0u8..8),
            1..60
        ),
        qs in 0u32..10, qp in 0u32..4, qo in 0u32..10,
        probe_year in 1950i32..2030,
    ) {
        let mut legacy = LegacyKb::new();
        let mut facade = KnowledgeBase::new();
        let mut builder = KbBuilder::new();
        for &(s, p, o, conf, year, kind) in &ops {
            let (ss, ps, os) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
            let tl = Triple::new(legacy.intern(&ss), legacy.intern(&ps), legacy.intern(&os));
            let tf = Triple::new(facade.intern(&ss), facade.intern(&ps), facade.intern(&os));
            let tb = Triple::new(builder.intern(&ss), builder.intern(&ps), builder.intern(&os));
            prop_assert_eq!(tl, tf);
            prop_assert_eq!(tl, tb);
            match kind {
                6 => {
                    prop_assert_eq!(legacy.retract(tl), facade.retract(tf));
                    builder.retract(tb);
                }
                7 => {
                    let span = TimeSpan::at(TimePoint::year(year.unwrap_or(2000)));
                    prop_assert_eq!(legacy.set_span(tl, span), facade.set_span(tf, span));
                    builder.set_span(tb, span);
                }
                _ => {
                    let span = year.map(|y| TimeSpan::at(TimePoint::year(y)));
                    let f = |t| Fact { triple: t, confidence: conf, source: SourceId::DEFAULT, span };
                    legacy.add_fact(f(tl));
                    facade.add_fact(f(tf));
                    builder.add_fact(f(tb));
                    // Interleave reads so the façade's cached indexes
                    // get exercised across invalidations.
                    prop_assert_eq!(legacy.len(), facade.len());
                }
            }
        }
        let snapshot = builder.freeze();
        prop_assert_eq!(legacy.len(), facade.len());
        prop_assert_eq!(legacy.len(), snapshot.len());
        // Full scans agree in SPO order with bit-identical confidence.
        let dump = |facts: Vec<&Fact>| -> Vec<(Triple, u64, Option<TimeSpan>)> {
            facts.into_iter().map(|f| (f.triple, f.confidence.to_bits(), f.span)).collect()
        };
        let legacy_all = dump(legacy.iter().collect());
        prop_assert_eq!(&legacy_all, &dump(facade.iter().collect()));
        prop_assert_eq!(&legacy_all, &dump(snapshot.iter().collect()));
        // Every binding shape agrees, including result order.
        let (s, p, o) = (TermId(qs), TermId(qp + 16), TermId(qo));
        let shapes = [
            TriplePattern::any(),
            TriplePattern::with_s(s),
            TriplePattern::with_p(p),
            TriplePattern::with_o(o),
            TriplePattern::with_sp(s, p),
            TriplePattern::with_po(p, o),
            TriplePattern::with_so(s, o),
            TriplePattern::exact(Triple::new(s, p, o)),
        ];
        let point = TimePoint::year(probe_year);
        for pat in &shapes {
            let expect = legacy.matching_triples(pat);
            prop_assert_eq!(&expect, &facade.matching_triples(pat));
            prop_assert_eq!(&expect, &snapshot.matching_triples(pat));
            prop_assert_eq!(legacy.count_matching(pat), facade.count_matching(pat));
            prop_assert_eq!(legacy.count_matching(pat), snapshot.count_matching(pat));
            let at = dump(legacy.matching_at(pat, &point));
            prop_assert_eq!(&at, &dump(facade.matching_at(pat, &point)));
            prop_assert_eq!(&at, &dump(snapshot.matching_at(pat, &point)));
        }
        // Streaming joins and scans preserve the legacy output order.
        for (p1, p2) in [(TermId(16), TermId(17)), (p, TermId(16))] {
            let expect = legacy.path_join(p1, p2);
            prop_assert_eq!(&expect, &facade.path_join(p1, p2));
            prop_assert_eq!(&expect, &snapshot.path_join_iter(p1, p2).collect::<Vec<_>>());
        }
        for t in [s, o] {
            prop_assert_eq!(legacy.degree(t), snapshot.degree(t));
            prop_assert_eq!(legacy.neighbors(t), snapshot.neighbors(t));
        }
    }

    /// Sharded parallel-style ingest is indistinguishable from serial
    /// ingest: any chunking of the fact stream into `KbShard`s, merged
    /// in order, yields the same dictionary, dump and confidences.
    #[test]
    fn shard_merge_is_bit_identical_to_serial(
        rows in prop::collection::vec(
            (0u32..8, 0u32..3, 0u32..8, 0.1f64..=1.0),
            1..40
        ),
        workers in 1usize..5,
    ) {
        let mut serial = KnowledgeBase::new();
        let src = serial.register_source("harvest");
        for &(s, p, o, conf) in &rows {
            let t = Triple::new(
                serial.intern(&format!("e{s}")),
                serial.intern(&format!("r{p}")),
                serial.intern(&format!("e{o}")),
            );
            serial.add_fact(Fact { triple: t, confidence: conf, source: src, span: None });
        }
        let mut sharded = KnowledgeBase::new();
        let src2 = sharded.register_source("harvest");
        let chunk = rows.len().div_ceil(workers);
        let shards: Vec<KbShard> = rows
            .chunks(chunk)
            .map(|chunk| {
                let mut shard = KbShard::new();
                for &(s, p, o, conf) in chunk {
                    shard.add(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"), conf, src2, None);
                }
                shard
            })
            .collect();
        sharded.merge_shards(shards);
        // Same dictionary ids in the same order…
        prop_assert_eq!(serial.dictionary().len(), sharded.dictionary().len());
        for (id, term) in serial.dictionary().iter() {
            prop_assert_eq!(sharded.resolve(id), Some(term));
        }
        // …and the same facts with bit-identical merged confidences.
        let dump = |kb: &KnowledgeBase| -> Vec<(Triple, u64)> {
            kb.iter().map(|f| (f.triple, f.confidence.to_bits())).collect()
        };
        prop_assert_eq!(dump(&serial), dump(&sharded));
        let a = kb_store::ntriples::to_string(&serial).unwrap();
        let b = kb_store::ntriples::to_string(&sharded).unwrap();
        prop_assert_eq!(a, b);
    }

    /// merge_from + canonicalize preserve the fact *content* modulo
    /// sameAs classes: every original statement is still derivable.
    #[test]
    fn fusion_preserves_content(
        triples in prop::collection::vec((0u32..6, 0u32..2, 0u32..6), 1..20),
        aliases in prop::collection::vec((0u32..6, 0u32..6), 0..4),
    ) {
        let mut a = KnowledgeBase::new();
        for &(s, p, o) in &triples {
            a.assert_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
        let mut b = KnowledgeBase::new();
        let merged_new = b.merge_from(&a);
        prop_assert_eq!(merged_new, a.len());
        prop_assert_eq!(b.len(), a.len());
        for &(x, y) in &aliases {
            let tx = b.intern(&format!("e{x}"));
            let ty = b.intern(&format!("e{y}"));
            b.sameas.declare(tx, ty);
        }
        b.canonicalize();
        // Every original triple still holds under canonicalization.
        for &(s, p, o) in &triples {
            let ts = b.sameas.canon(b.term(&format!("e{s}")).unwrap());
            let tp = b.term(&format!("r{p}")).unwrap();
            let to = b.sameas.canon(b.term(&format!("e{o}")).unwrap());
            prop_assert!(
                b.contains(&Triple::new(ts, tp, to)),
                "lost fact e{s} r{p} e{o} after canonicalization"
            );
        }
    }
}
