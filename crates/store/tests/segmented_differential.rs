//! Differential property tests for the segmented read path: a
//! [`SegmentedSnapshot`] assembled from 1–4 random chunk splits of an
//! op sequence must answer byte-for-byte like the monolithic
//! [`KbSnapshot`] built from the same ops in one shot. Any divergence
//! is a bug in exactly one of the two paths — the merge iterators, the
//! delta freeze, or the monolithic freeze.
//!
//! Confidences are compared within `1e-9`: noisy-or accumulation
//! (`1 - Π(1 - cᵢ)`) is associative in exact arithmetic but not in
//! `f64`, and the segmented path may parenthesize the product
//! differently (per-builder first, then against the base).

use std::sync::Arc;

use proptest::prelude::*;

use kb_store::{
    KbBuilder, KbRead, KbReadBatch, PairBatch, SegmentedSnapshot, TripleBatch, TriplePattern,
    BATCH_ROWS,
};

/// One mutation: assert a fact with some confidence, or retract a
/// triple (which the delta path turns into a tombstone when the triple
/// is visible below the split point).
#[derive(Debug, Clone, Copy)]
enum Op {
    Add { s: u32, p: u32, o: u32, conf: f64 },
    Retract { s: u32, p: u32, o: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // kind 0 retracts, anything else asserts — a 4:1 bias keeps most
    // sequences live enough to exercise the merge paths.
    (0u8..5, 0u32..8, 0u32..4, 0u32..8, 1u32..10).prop_map(|(kind, s, p, o, c)| {
        if kind == 0 {
            Op::Retract { s, p, o }
        } else {
            Op::Add { s, p, o, conf: c as f64 / 10.0 }
        }
    })
}

fn apply(b: &mut KbBuilder, op: Op) {
    match op {
        Op::Add { s, p, o, conf } => {
            let t = kb_store::Triple::new(
                b.intern(&format!("e{s}")),
                b.intern(&format!("r{p}")),
                b.intern(&format!("e{o}")),
            );
            b.add_fact(kb_store::Fact {
                triple: t,
                confidence: conf,
                source: kb_store::store::SourceId::DEFAULT,
                span: None,
            });
        }
        Op::Retract { s, p, o } => {
            b.retract_str(&format!("e{s}"), &format!("r{p}"), &format!("e{o}"));
        }
    }
}

/// Splits `ops` at `cuts` fractional positions into 1–4 chunks, builds
/// chunk 0 into the base snapshot and freezes each later chunk as a
/// delta against the growing view.
fn build_segmented(ops: &[Op], cuts: &[prop::sample::Index]) -> SegmentedSnapshot {
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c.index(ops.len() + 1)).collect();
    bounds.push(0);
    bounds.push(ops.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut chunks = bounds.windows(2).map(|w| &ops[w[0]..w[1]]);

    let mut base = KbBuilder::new();
    for &op in chunks.next().unwrap_or(&[]) {
        apply(&mut base, op);
    }
    let mut view = SegmentedSnapshot::from_base(base.freeze().into_shared());
    for chunk in chunks {
        let mut b = KbBuilder::new();
        for &op in chunk {
            apply(&mut b, op);
        }
        view = view.with_delta(Arc::new(b.freeze_delta(&view)));
    }
    view
}

/// Renders every live fact as resolved strings plus confidence, for
/// id-independent comparison. Sorted: the two views may enumerate in
/// different (fact-table vs merged) orders.
fn fact_dump<K: KbRead + ?Sized>(kb: &K) -> Vec<(String, String, String, i64)> {
    let mut rows: Vec<_> = kb
        .facts()
        .map(|f| {
            (
                kb.resolve(f.triple.s).unwrap().to_string(),
                kb.resolve(f.triple.p).unwrap().to_string(),
                kb.resolve(f.triple.o).unwrap().to_string(),
                // Quantize the confidence so float noise under 1e-9
                // cannot flip a comparison.
                (f.confidence * 1e9).round() as i64,
            )
        })
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `matching_iter` equivalence for every pattern shape: identical
    /// triple sequences (in index order) and confidences within 1e-9.
    #[test]
    fn segmented_matching_matches_monolithic(
        ops in prop::collection::vec(op_strategy(), 1..60),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        qs in 0u32..8, qp in 0u32..4, qo in 0u32..8,
    ) {
        let mut mono_b = KbBuilder::new();
        for &op in &ops {
            apply(&mut mono_b, op);
        }
        let mono = mono_b.freeze();
        let seg = build_segmented(&ops, &cuts);

        prop_assert_eq!(mono.len(), seg.len(), "live counts diverge");
        prop_assert_eq!(fact_dump(&mono), fact_dump(&seg), "live fact sets diverge");

        let (es, rp, eo) = (format!("e{qs}"), format!("r{qp}"), format!("e{qo}"));
        for mask in 0u8..8 {
            let want = |name: &str| (mono.term(name), seg.term(name));
            let mut pat_m = TriplePattern::any();
            let mut pat_s = TriplePattern::any();
            let mut probed = true;
            for (bit, name, slot_m, slot_s) in [
                (1u8, &es, &mut pat_m.s, &mut pat_s.s),
                (2u8, &rp, &mut pat_m.p, &mut pat_s.p),
                (4u8, &eo, &mut pat_m.o, &mut pat_s.o),
            ] {
                if mask & bit != 0 {
                    let (m, s) = want(name);
                    // The two views intern the same term set.
                    prop_assert_eq!(m.is_some(), s.is_some());
                    match (m, s) {
                        (Some(m), Some(s)) => { *slot_m = Some(m); *slot_s = Some(s); }
                        _ => { probed = false; break; }
                    }
                }
            }
            if !probed {
                continue; // term absent everywhere: nothing to compare
            }
            let mono_hits: Vec<_> = mono
                .matching_iter(&pat_m)
                .map(|f| (
                    mono.resolve(f.triple.s).unwrap().to_string(),
                    mono.resolve(f.triple.p).unwrap().to_string(),
                    mono.resolve(f.triple.o).unwrap().to_string(),
                    (f.confidence * 1e9).round() as i64,
                ))
                .collect();
            let seg_hits: Vec<_> = seg
                .matching_iter(&pat_s)
                .map(|f| (
                    seg.resolve(f.triple.s).unwrap().to_string(),
                    seg.resolve(f.triple.p).unwrap().to_string(),
                    seg.resolve(f.triple.o).unwrap().to_string(),
                    (f.confidence * 1e9).round() as i64,
                ))
                .collect();
            prop_assert_eq!(&mono_hits, &seg_hits, "pattern mask {} diverged", mask);
            prop_assert_eq!(
                mono.count_matching(&pat_m), seg.count_matching(&pat_s),
                "counts diverged for mask {}", mask
            );
        }
    }

    /// `path_join_iter` equivalence: the two-hop join streams the same
    /// endpoint pairs over any segment split.
    #[test]
    fn segmented_path_join_matches_monolithic(
        ops in prop::collection::vec(op_strategy(), 1..50),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        p1 in 0u32..4, p2 in 0u32..4,
    ) {
        let mut mono_b = KbBuilder::new();
        for &op in &ops {
            apply(&mut mono_b, op);
        }
        let mono = mono_b.freeze();
        let seg = build_segmented(&ops, &cuts);

        let resolve_pairs = |kb: &dyn KbRead, pairs: Vec<(kb_store::TermId, kb_store::TermId)>| {
            let mut rows: Vec<(String, String)> = pairs
                .into_iter()
                .map(|(a, b)| {
                    (kb.resolve(a).unwrap().to_string(), kb.resolve(b).unwrap().to_string())
                })
                .collect();
            rows.sort();
            rows
        };
        let (r1, r2) = (format!("r{p1}"), format!("r{p2}"));
        let (m1, s1) = (mono.term(&r1), seg.term(&r1));
        let (m2, s2) = (mono.term(&r2), seg.term(&r2));
        prop_assert_eq!(m1.is_some(), s1.is_some());
        prop_assert_eq!(m2.is_some(), s2.is_some());
        if let (Some(m1), Some(m2), Some(s1), Some(s2)) = (m1, m2, s1, s2) {
            let mono_pairs = resolve_pairs(&mono, mono.path_join_iter(m1, m2).collect());
            let seg_pairs = resolve_pairs(&seg, seg.path_join_iter(s1, s2).collect());
            prop_assert_eq!(mono_pairs, seg_pairs);
        }
    }

    /// Compaction is the identity on answers: folding every delta into
    /// a fresh monolithic base must preserve the merged view exactly.
    #[test]
    fn compaction_preserves_any_split(
        ops in prop::collection::vec(op_strategy(), 1..50),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 1..3),
    ) {
        let seg = build_segmented(&ops, &cuts);
        let compacted = seg.compact();
        prop_assert_eq!(seg.len(), compacted.len());
        prop_assert_eq!(fact_dump(&seg), fact_dump(&compacted));
    }

    /// Vectorized scans are the tuple scans, chunked: for every delta
    /// stack depth (0 / 2 / 8) and every pattern mask, concatenating
    /// `matching_batches` yields the exact triple sequence of
    /// `matching_iter` — same rows, same order — and no batch exceeds
    /// [`BATCH_ROWS`].
    #[test]
    fn batches_match_tuple_scans_across_delta_stacks(
        ops in prop::collection::vec(op_strategy(), 1..60),
        qs in 0u32..8, qp in 0u32..4, qo in 0u32..8,
    ) {
        for &n_deltas in &[0usize, 2, 8] {
            let view = build_stack(&ops, n_deltas);
            let (es, rp, eo) = (format!("e{qs}"), format!("r{qp}"), format!("e{qo}"));
            'mask: for mask in 0u8..8 {
                let mut pat = TriplePattern::any();
                for (bit, name, slot) in [
                    (1u8, &es, &mut pat.s),
                    (2u8, &rp, &mut pat.p),
                    (4u8, &eo, &mut pat.o),
                ] {
                    if mask & bit != 0 {
                        match view.term(name) {
                            Some(id) => *slot = Some(id),
                            None => continue 'mask, // term absent: nothing to compare
                        }
                    }
                }
                let tuple: Vec<kb_store::Triple> =
                    view.matching_iter(&pat).map(|f| f.triple).collect();
                let mut got: Vec<kb_store::Triple> = Vec::new();
                let mut mb = view.matching_batches(&pat);
                let mut tb = TripleBatch::new();
                while mb.next_batch(&mut tb) {
                    prop_assert!(tb.len() <= BATCH_ROWS, "oversized batch: {}", tb.len());
                    for i in 0..tb.len() {
                        got.push(tb.row(i));
                    }
                }
                prop_assert_eq!(
                    &got, &tuple,
                    "mask {} diverged on a {}-delta stack", mask, n_deltas
                );
            }
        }
    }

    /// `path_join_batches` ≡ `path_join_iter` over the same stacks.
    #[test]
    fn path_join_batches_match_tuple_join_across_delta_stacks(
        ops in prop::collection::vec(op_strategy(), 1..50),
        p1 in 0u32..4, p2 in 0u32..4,
    ) {
        for &n_deltas in &[0usize, 2, 8] {
            let view = build_stack(&ops, n_deltas);
            let (Some(id1), Some(id2)) =
                (view.term(&format!("r{p1}")), view.term(&format!("r{p2}"))) else { continue };
            let tuple: Vec<_> = view.path_join_iter(id1, id2).collect();
            let mut got = Vec::new();
            let mut pjb = view.path_join_batches(id1, id2);
            let mut pb = PairBatch::new();
            while pjb.next_batch(&mut pb) {
                prop_assert!(pb.len() <= BATCH_ROWS);
                got.extend(pb.a.iter().copied().zip(pb.b.iter().copied()));
            }
            prop_assert_eq!(&got, &tuple, "path join diverged on a {}-delta stack", n_deltas);
        }
    }
}

/// Splits `ops` into exactly `n_deltas + 1` even chunks: chunk 0 is the
/// base, every later chunk a delta (possibly empty — empty deltas are a
/// legal, interesting edge case for the merge cursors).
fn build_stack(ops: &[Op], n_deltas: usize) -> SegmentedSnapshot {
    let chunks = n_deltas + 1;
    let bound = |i: usize| i * ops.len() / chunks;
    let mut base = KbBuilder::new();
    for &op in &ops[..bound(1)] {
        apply(&mut base, op);
    }
    let mut view = SegmentedSnapshot::from_base(base.freeze().into_shared());
    for c in 1..chunks {
        let mut b = KbBuilder::new();
        for &op in &ops[bound(c)..bound(c + 1)] {
            apply(&mut b, op);
        }
        view = view.with_delta(Arc::new(b.freeze_delta(&view)));
    }
    view
}
