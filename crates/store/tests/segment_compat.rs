//! Cross-version segment compatibility: files written in the legacy v1
//! layout (before compressed frames became a segment region) must keep
//! opening through the normal `open_segment` path, serve identical
//! tuple and batch scans, and round-trip into byte-identical v2 images.

use std::sync::Arc;

use kb_store::{
    KbBuilder, KbRead, KbReadBatch, KbSnapshot, SegmentedSnapshot, TripleBatch, TriplePattern,
};

fn sample_kb() -> KbSnapshot {
    let mut b = KbBuilder::new();
    for i in 0..600 {
        b.assert_str(
            &format!("e{}", i % 90),
            &format!("rel_{}", i % 7),
            &format!("e{}", (i / 7) % 110),
        );
    }
    // Tombstones force the writer to serialize confidence-zero facts.
    b.retract_str("e5", "rel_5", "e15");
    b.retract_str("e10", "rel_3", "e30");
    b.freeze()
}

/// Every pattern shape exercised against `view`, dumped as concrete
/// triples via both the tuple iterator and the batch cursor (checking
/// along the way that the two agree with each other).
fn scan_everything(view: &dyn KbRead) -> Vec<(String, String, String)> {
    let (es, rp, eo) = (view.term("e3"), view.term("rel_2"), view.term("e8"));
    let mut pats = vec![TriplePattern::any()];
    if let Some(p) = rp {
        pats.push(TriplePattern::with_p(p));
        if let Some(o) = eo {
            pats.push(TriplePattern::with_po(p, o));
        }
    }
    if let (Some(s), Some(o)) = (es, eo) {
        pats.push(TriplePattern { s: Some(s), p: None, o: Some(o) });
    }
    let mut out = Vec::new();
    let mut tb = TripleBatch::new();
    for pat in &pats {
        let tuple: Vec<_> = view.matching_iter(pat).map(|f| f.triple).collect();
        let mut batched = Vec::new();
        let mut mb = view.matching_batches(pat);
        while mb.next_batch(&mut tb) {
            batched.extend((0..tb.len()).map(|i| tb.row(i)));
        }
        assert_eq!(tuple, batched, "batch scan diverged from tuple scan on {pat:?}");
        out.extend(tuple.into_iter().map(|t| {
            let r = |id| view.resolve(id).expect("term resolves").to_string();
            (r(t.s), r(t.p), r(t.o))
        }));
    }
    out
}

#[test]
fn v1_base_segment_files_open_and_scan_identically() {
    let dir = std::env::temp_dir().join(format!("kbkit-compat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = sample_kb();
    let v1_path = dir.join("base.v1.kbseg");
    let v2_path = dir.join("base.v2.kbseg");
    let v1_bytes = snap.write_segment_v1(&v1_path).unwrap();
    let v2_bytes = snap.write_segment(&v2_path).unwrap();
    assert!(
        v2_bytes < v1_bytes,
        "the frame-compressed v2 image should be smaller than v1 ({v2_bytes} vs {v1_bytes} B)"
    );

    let from_v1 = KbSnapshot::open_segment(&v1_path).unwrap();
    let from_v2 = KbSnapshot::open_segment(&v2_path).unwrap();
    assert_eq!(scan_everything(&snap), scan_everything(&from_v1));
    assert_eq!(scan_everything(&snap), scan_everything(&from_v2));

    // A v1-opened snapshot rebuilds its compressed frames exactly: its
    // re-serialized v2 image is byte-identical to the original's.
    let rewrite = dir.join("rewrite.kbseg");
    from_v1.write_segment(&rewrite).unwrap();
    assert_eq!(std::fs::read(&v2_path).unwrap(), std::fs::read(&rewrite).unwrap());
    let st = from_v1.index_stats();
    assert!(st.frames > 0 && st.compressed_bytes < st.raw_bytes);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_delta_segments_stack_onto_reopened_bases() {
    let dir = std::env::temp_dir().join(format!("kbkit-compat-delta-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = sample_kb();
    let base_path = dir.join("base.v1.kbseg");
    base.write_segment_v1(&base_path).unwrap();
    let view = SegmentedSnapshot::from_base(Arc::new(base));

    let mut d = KbBuilder::new();
    d.assert_str("new_entity", "rel_0", "e1");
    d.retract_str("e3", "rel_2", "e8");
    let delta = d.freeze_delta(&view);
    let delta_path = dir.join("delta.v1.kbseg");
    delta.write_segment_v1(&delta_path).unwrap();
    let live = view.with_delta(Arc::new(delta));

    // Cold start entirely from v1 files: reopen base and delta, restack.
    let base2 = KbSnapshot::open_segment(&base_path).unwrap();
    let delta2 = kb_store::DeltaSegment::open_segment(&delta_path).unwrap();
    let reopened = SegmentedSnapshot::from_base(Arc::new(base2))
        .try_with_delta(Arc::new(delta2))
        .expect("v1 delta still binds to its reopened v1 base");
    assert_eq!(scan_everything(&live), scan_everything(&reopened));

    std::fs::remove_dir_all(&dir).ok();
}
