//! The `kbkit` command-line tool: harvest a knowledge base from a
//! synthetic corpus, inspect it, query it, mine rules from it, and
//! disambiguate text against it.
//!
//! ```text
//! kbkit harvest --scale tiny --seed 42 --out kb.tsv
//! kbkit stats kb.tsv
//! kbkit query kb.tsv '?p bornIn ?c . ?c locatedIn ?n'
//! kbkit rules kb.tsv
//! kbkit ned kb.tsv 'Some text mentioning Known Entities.'
//! ```

use std::fs;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig, IncrementalHarvester, Method};
use kbkit::kb_harvest::rules::{mine_rules, RuleConfig};
use kbkit::kb_ned::{detect_mentions, Ned, Strategy};
use kbkit::kb_obs;
use kbkit::kb_query::{
    execute_traced, maintainability, parse, routing_decision, ExecTrace, Plan, QueryService,
};
use kbkit::kb_serve::AdmissionConfig;
use kbkit::kb_serve::{KbRouter, ServeError};
use kbkit::kb_store::{
    ntriples, Compactor, IndexStats, KbBuilder, KbRead, KbSnapshot, KnowledgeBase, SegmentStore,
    StoreOptions, TriplePattern,
};

const USAGE: &str = "\
kbkit — knowledge-base construction and analytics toolkit

USAGE:
  kbkit harvest [--scale tiny|standard] [--seed N] [--method M] [--out FILE]
               [--incremental] [--data-dir DIR] [--no-fsync]
      Build a KB from a generated corpus and write it as TSV.
      Methods: patterns | statistical | reasoning (default) | factorgraph
      --incremental bootstraps from ~70% of the corpus, then installs
      the rest as delta segments, printing per-delta install latency.
      --data-dir DIR (with --incremental) makes every install durable:
      the base segment and a delta WAL live in DIR, each install is
      fsynced, and the per-delta line also reports the durability cost
      (WAL write + fsync time). A kill -9 at any point loses at most
      the delta being written. --no-fsync skips the fsync barrier
      (faster, but a crash may lose recent installs).
  kbkit stats <kb.tsv>
      Print knowledge-base statistics.
  kbkit query <kb.tsv> <query> [--explain]
  kbkit query --data-dir DIR <query> [--explain] [--memory-budget BYTES]
      Run a SPARQL-style query, e.g. '?p bornIn ?c . ?c locatedIn ?n'
      or 'SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c'.
      --explain also prints the chosen physical plan. With --data-dir,
      cold-starts from a durable segment store (validating checksums
      and replaying the WAL) instead of parsing a TSV dump.
      --memory-budget caps resident index bytes: frame columns page in
      on first touch and spill (clock eviction) when over budget, so a
      KB larger than RAM still serves. Accepts k/m/g suffixes (64m).
  kbkit rules <kb.tsv> [--min-support N]
      Mine AMIE-style Horn rules from the KB.
  kbkit ned <kb.tsv> <text>
      Detect and disambiguate entity mentions in the text.
  kbkit serve-bench [--partitions N] [--clients M] [--requests K]
                   [--rate R] [--data-dir DIR] [--memory-budget BYTES]
                   [<kb.tsv>] [--seed N]
      Partition the KB by subject into N replica services behind a
      scatter-gather router and drive it with M concurrent clients
      (mixed subject-bound and scatter queries). Prints routing and
      shedding counters, throughput, and a byte-equality check against
      an unpartitioned oracle. The KB comes from --data-dir (durable
      segment store), a TSV dump, or a fresh tiny harvest, in that
      order of preference. --rate enables per-tenant admission rate
      limiting (requests/second) so overload sheds instead of queueing.
      --memory-budget (with --data-dir) serves under a resident-byte
      cap, paging index columns on demand — see kbkit query.
  kbkit watch [--seed N] [--query Q] [--batch N]
      Continuous-query demo: bootstrap a KB from ~70% of a generated
      corpus, register Q as a materialized standing view (default: a
      COUNT ... GROUP BY over bornIn), then stream the held-out
      articles in as delta installs. Each install prints the view's
      incremental update — rows added/removed, whether the answer was
      delta-patched or re-executed, and the maintenance latency —
      followed by the final answer. --batch sets docs per delta.
  kbkit metrics [--json] [--seed N]
      Harvest the quickstart (tiny) corpus, freeze a snapshot and serve
      a few queries, then print the collected metrics as an aligned
      text table plus a JSON blob (--json: JSON only, for piping).

Any subcommand also accepts --metrics to dump the metrics table to
stderr after it finishes.
";

/// Flags that take no value (everything else is `--flag VALUE`).
const BOOL_FLAGS: &[&str] = &["--explain", "--metrics", "--json", "--incremental", "--no-fsync"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("harvest") => cmd_harvest(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("rules") => cmd_rules(&args[1..]),
        Some("ned") => cmd_ned(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    if result.is_ok()
        && args.first().map(String::as_str) != Some("metrics")
        && args.iter().any(|a| a == "--metrics")
    {
        eprint!("{}", kb_obs::global().render_text());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Reads `--flag value` style options from an argument list.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Parses `--memory-budget BYTES` (with optional k/m/g suffix) into
/// store options for a budgeted cold start.
fn budgeted_options(args: &[String]) -> Result<StoreOptions, String> {
    let memory_budget = match opt(args, "--memory-budget") {
        None => None,
        Some(raw) => {
            let (digits, mult) = match raw.as_bytes().last() {
                Some(b'k') | Some(b'K') => (&raw[..raw.len() - 1], 1usize << 10),
                Some(b'm') | Some(b'M') => (&raw[..raw.len() - 1], 1usize << 20),
                Some(b'g') | Some(b'G') => (&raw[..raw.len() - 1], 1usize << 30),
                _ => (raw, 1usize),
            };
            let n: usize = digits.parse().map_err(|_| format!("bad --memory-budget {raw:?}"))?;
            Some(n.checked_mul(mult).ok_or(format!("bad --memory-budget {raw:?}"))?)
        }
    };
    Ok(StoreOptions { memory_budget, ..StoreOptions::default() })
}

/// First argument that is not a flag or a flag value.
fn positional(args: &[String]) -> Option<&str> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = !BOOL_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a);
    }
    None
}

fn load_kb(path: &str) -> Result<KnowledgeBase, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ntriples::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn cmd_harvest(args: &[String]) -> Result<(), String> {
    let seed: u64 = opt(args, "--seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    let scale = opt(args, "--scale").unwrap_or("tiny");
    let mut cfg = match scale {
        "tiny" => CorpusConfig::tiny(),
        "standard" => CorpusConfig::standard(seed),
        other => return Err(format!("unknown --scale {other:?} (tiny|standard)")),
    };
    cfg.world.seed = seed;
    let method = match opt(args, "--method").unwrap_or("reasoning") {
        "patterns" => Method::PatternsOnly,
        "statistical" => Method::Statistical,
        "reasoning" => Method::Reasoning,
        "factorgraph" => Method::FactorGraph,
        other => return Err(format!("unknown --method {other:?}")),
    };
    let out_path = opt(args, "--out").unwrap_or("kb.tsv");

    eprintln!("generating {scale} corpus (seed {seed})...");
    let corpus = Corpus::generate(&cfg);
    eprintln!(
        "  {} entities, {} documents, {} posts",
        corpus.world.entities.len(),
        corpus.all_docs().len(),
        corpus.posts.len()
    );
    if args.iter().any(|a| a == "--incremental") {
        let durability = opt(args, "--data-dir").map(|dir| {
            (
                dir,
                StoreOptions {
                    fsync: !args.iter().any(|a| a == "--no-fsync"),
                    seal_every: 8,
                    ..StoreOptions::default()
                },
            )
        });
        return harvest_incremental(&corpus, method, out_path, durability);
    }
    if opt(args, "--data-dir").is_some() {
        return Err("--data-dir requires --incremental".into());
    }
    eprintln!("harvesting ({method:?})...");
    let output = harvest(&corpus, &HarvestConfig { method, ..Default::default() })
        .map_err(|e| format!("harvest failed: {e}"))?;
    eprintln!(
        "  {} occurrences → {} candidates → {} accepted facts",
        output.stats.occurrences, output.stats.candidates, output.stats.accepted
    );
    if output.stats.quarantined_count() > 0 || output.stats.downgraded() {
        eprintln!(
            "  resilience: {} quarantined, {} retries, {} downgrades",
            output.stats.quarantined_count(),
            output.stats.retries,
            output.stats.downgrades.len()
        );
    }
    let dump = ntriples::to_string(&output.kb).map_err(|e| e.to_string())?;
    fs::write(out_path, &dump).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} bytes to {out_path}", dump.len());
    println!("{}", output.kb.stats());
    Ok(())
}

/// Incremental harvest: bootstrap a base snapshot from ~70% of the
/// articles, then harvest the held-out articles in small batches and
/// install each as a delta segment on a live `QueryService`, printing
/// per-delta install latency. The final KB written to `--out` is the
/// compacted view, so downstream commands see one monolithic snapshot.
///
/// With `durability` set, every install is also logged to a durable
/// [`SegmentStore`] WAL in the given directory (behind an fsync barrier
/// unless disabled), and the per-delta line reports what durability
/// cost on top of the in-memory install.
fn harvest_incremental(
    corpus: &Corpus,
    method: Method,
    out_path: &str,
    durability: Option<(&str, StoreOptions)>,
) -> Result<(), String> {
    let split = (corpus.articles.len() * 7 / 10).max(1);
    let boot = Corpus {
        world: corpus.world.clone(),
        articles: corpus.articles[..split].to_vec(),
        overviews: corpus.overviews.clone(),
        web_pages: corpus.web_pages.clone(),
        essays: corpus.essays.clone(),
        posts: Vec::new(),
    };
    let cfg = HarvestConfig { method, ..Default::default() };
    eprintln!("bootstrap harvest on {split}/{} articles ({method:?})...", corpus.articles.len());
    let (inc, out) = IncrementalHarvester::bootstrap(&boot, &cfg)
        .map_err(|e| format!("bootstrap failed: {e}"))?;
    let base = out.kb.snapshot().into_shared();
    eprintln!("  base snapshot: {} facts", base.len());
    let mut store = match durability {
        Some((dir, options)) => {
            let s = SegmentStore::create(dir, Arc::clone(&base), options)
                .map_err(|e| format!("cannot create segment store in {dir}: {e}"))?;
            eprintln!(
                "  durable store at {dir} (fsync {})",
                if options.fsync { "on" } else { "off" }
            );
            Some(s)
        }
        None => None,
    };
    let service = QueryService::new(base);

    for (i, chunk) in corpus.articles[split..].chunks(4).enumerate() {
        let refs: Vec<_> = chunk.iter().collect();
        let view = service.snapshot();
        let outcome = inc
            .harvest_batch(&corpus.world, &refs, &view)
            .map_err(|e| format!("batch {i} failed: {e}"))?;
        let accepted = outcome.accepted;
        let delta = Arc::new(outcome.delta);
        let t = Instant::now();
        let cost = match store.as_mut() {
            Some(s) => Some(
                s.install_delta(Arc::clone(&delta))
                    .map_err(|e| format!("durable install of delta {i} failed: {e}"))?,
            ),
            None => None,
        };
        service.apply_delta(delta);
        let durability_note = match cost {
            Some(c) => format!(
                ", durable: {} B logged, write {} µs + fsync {} µs",
                c.bytes, c.write_micros, c.fsync_micros
            ),
            None => String::new(),
        };
        eprintln!(
            "  delta {i}: {} docs, {} candidates → {accepted} facts, installed in {:.2?}{durability_note}",
            chunk.len(),
            outcome.candidates,
            t.elapsed()
        );
    }

    if let Some(s) = store.as_mut() {
        let cost = s.seal().map_err(|e| format!("sealing the WAL failed: {e}"))?;
        let compacted = s
            .compact(&Compactor::default(), false)
            .map_err(|e| format!("compaction failed: {e}"))?;
        eprintln!(
            "  sealed {} B into delta segments (generation {}{})",
            cost.bytes,
            s.generation(),
            if compacted { ", compacted" } else { "" }
        );
    }

    let view = service.snapshot();
    let stats = service.cache_stats();
    eprintln!(
        "  {} deltas installed, {} live facts; compacting...",
        stats.delta_installs,
        view.len()
    );
    let compacted = view.compact();
    let dump = ntriples::to_string(&compacted).map_err(|e| e.to_string())?;
    fs::write(out_path, &dump).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} bytes to {out_path}", dump.len());
    println!(
        "{} facts after {} incremental installs (base + deltas compacted)",
        compacted.len(),
        stats.delta_installs
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("stats needs a KB file")?;
    let kb = load_kb(path)?;
    println!("{}", kb.stats());
    Ok(())
}

/// Prints the `--explain` report: plan shape, predicate footprint and
/// view-maintenance verdict, per-operator estimated vs actual rows,
/// batch counts and the compressed-index footprint.
fn print_explain<K: KbRead + ?Sized>(plan: &Plan, trace: &ExecTrace, stats: &IndexStats, kb: &K) {
    eprintln!("plan (estimated cost {:.1}):", plan.estimated_cost());
    for line in plan.explain() {
        eprintln!("  {line}");
    }
    let fp = plan.footprint();
    if fp.is_wildcard() {
        eprintln!("footprint: wildcard (every delta install can change this answer)");
    } else {
        let preds: Vec<&str> =
            fp.preds().iter().map(|&p| kb.resolve(p).unwrap_or("<unresolved>")).collect();
        eprintln!(
            "footprint: {} (only installs touching these predicates re-drive the plan)",
            preds.join(", ")
        );
    }
    eprintln!("maintenance: {}", maintainability(plan).describe());
    eprintln!("operators (estimated vs actual rows):");
    for (op, &actual) in plan.ops().iter().zip(&trace.op_rows) {
        eprintln!("  est {:>12.1}  actual {:>10}  {}", op.est_rows, actual, op.label);
    }
    eprintln!(
        "execution: {} rows emitted in {} batches; index: {} entries in {} frames, {} B compressed / {} B raw ({:.0}% saved)",
        trace.rows,
        trace.batches,
        stats.entries,
        stats.frames,
        stats.compressed_bytes,
        stats.raw_bytes,
        stats.saved_ratio() * 100.0,
    );
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let explain = args.iter().any(|a| a == "--explain");

    // Durable path: cold-start straight from a segment store directory
    // (checksum validation + WAL replay), no TSV parse, no re-indexing.
    if let Some(dir) = opt(args, "--data-dir") {
        let q = positional(args).ok_or("query needs a query string")?;
        let options = budgeted_options(args)?;
        let t = Instant::now();
        let store = SegmentStore::open_with(dir, options)
            .map_err(|e| format!("cannot open store at {dir}: {e}"))?;
        let open_us = t.elapsed();
        let view = store.view();
        let service = QueryService::try_from_view(&view)
            .map_err(|e| format!("cannot serve store at {dir}: {e}"))?;
        let report = store.recovery_report();
        eprintln!(
            "cold start from {dir}: {} facts in {:.2?} (open {:.2?}, gen {}, {} sealed deltas, {} WAL records replayed)",
            view.len(),
            t.elapsed(),
            open_us,
            store.generation(),
            report.sealed_deltas,
            report.wal_replayed,
        );
        if let Some(limit) = store.memory_budget().limit() {
            eprintln!(
                "memory budget: {limit} B (resident {} B, {} page faults, {} spills)",
                store.memory_budget().resident_bytes(),
                store.memory_budget().page_faults(),
                store.memory_budget().spills(),
            );
        }
        if report.degraded() {
            eprintln!(
                "warning: recovery quarantined {} corrupt file(s): {}",
                report.quarantined.len(),
                report.quarantined.join(", ")
            );
        }
        if explain {
            // Traced execution doubles as the serve — no second run.
            let plan = service.plan_for(q).map_err(|e| e.to_string())?;
            let (out, trace) = execute_traced(&plan, &view);
            print_explain(&plan, &trace, &view.index_stats(), &view);
            eprintln!(
                "routing: {}",
                routing_decision(&parse(q).map_err(|e| e.to_string())?).describe()
            );
            println!("{} solutions", out.rows.len());
            for row in out.rows.iter().take(50) {
                println!("  {}", out.render_row(row, &view));
            }
            return Ok(());
        }
        let out = service.query(q).map_err(|e| e.to_string())?;
        println!("{} solutions", out.rows.len());
        for row in out.rows.iter().take(50) {
            println!("  {}", out.render_row(row, &view));
        }
        return Ok(());
    }

    let path = positional(args).ok_or("query needs a KB file and a query")?;
    let q =
        args.iter().filter(|a| !a.starts_with("--")).nth(1).ok_or("query needs a query string")?;
    let snap = load_kb(path)?.into_snapshot().into_shared();
    let service = QueryService::new(snap.clone());
    if explain {
        let plan = service.plan_for(q).map_err(|e| e.to_string())?;
        let (out, trace) = execute_traced(&plan, snap.as_ref());
        print_explain(&plan, &trace, &snap.index_stats(), snap.as_ref());
        eprintln!(
            "routing: {}",
            routing_decision(&parse(q).map_err(|e| e.to_string())?).describe()
        );
        println!("{} solutions", out.rows.len());
        for row in out.rows.iter().take(50) {
            println!("  {}", out.render_row(row, snap.as_ref()));
        }
        return Ok(());
    }
    let out = service.query(q).map_err(|e| e.to_string())?;
    println!("{} solutions", out.rows.len());
    for row in out.rows.iter().take(50) {
        println!("  {}", out.render_row(row, snap.as_ref()));
    }
    Ok(())
}

fn cmd_rules(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("rules needs a KB file")?;
    let min_support: usize =
        opt(args, "--min-support").unwrap_or("5").parse().map_err(|_| "bad --min-support")?;
    let kb = load_kb(path)?;
    let cfg = RuleConfig { min_support, ..Default::default() };
    let rules = mine_rules(&kb, &cfg);
    println!("{} rules", rules.len());
    for r in &rules {
        println!("  {r}");
    }
    Ok(())
}

/// Collects a query workload from the live facts of a view: one
/// subject-bound probe per sampled fact plus one scatter query per
/// distinct predicate. Skips terms whose surface form would not survive
/// the query grammar (spaces, quotes, ...).
fn serve_workload<K: KbRead + ?Sized>(view: &K) -> (Vec<String>, Vec<String>) {
    fn token_safe(s: &str) -> bool {
        !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || "_-:.".contains(c))
    }
    let mut bound = Vec::new();
    let mut preds = Vec::new();
    for fact in view.facts() {
        let (Some(s), Some(p)) = (view.resolve(fact.triple.s), view.resolve(fact.triple.p)) else {
            continue;
        };
        if !token_safe(s) || !token_safe(p) {
            continue;
        }
        if bound.len() < 256 {
            bound.push(format!("{s} {p} ?o"));
        }
        if !preds.contains(&p) {
            preds.push(p);
        }
        if bound.len() >= 256 && preds.len() >= 16 {
            break;
        }
    }
    let scatter = preds.iter().take(16).map(|p| format!("?x {p} ?o")).collect();
    (bound, scatter)
}

/// `kbkit serve-bench`: build a partitioned router next to a monolithic
/// oracle, hammer it from M client threads, and report routing counters,
/// shed rate, throughput, and whether the router's answers were
/// byte-identical to the oracle's on a sample of the workload.
fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    let partitions: usize =
        opt(args, "--partitions").unwrap_or("2").parse().map_err(|_| "bad --partitions")?;
    let clients: usize =
        opt(args, "--clients").unwrap_or("4").parse().map_err(|_| "bad --clients")?;
    let requests: usize =
        opt(args, "--requests").unwrap_or("2000").parse().map_err(|_| "bad --requests")?;
    let rate: Option<f64> = match opt(args, "--rate") {
        Some(r) => Some(r.parse().map_err(|_| "bad --rate")?),
        None => None,
    };
    let seed: u64 = opt(args, "--seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    if partitions == 0 || clients == 0 {
        return Err("--partitions and --clients must be positive".into());
    }

    let admission = kbkit::kb_serve::AdmissionConfig {
        rate_per_sec: rate,
        ..kbkit::kb_serve::AdmissionConfig::default()
    };
    let registry = kb_obs::global();

    // Source the KB: durable store > TSV dump > fresh tiny harvest.
    let base: Arc<KbSnapshot>;
    let (router, oracle) = if let Some(dir) = opt(args, "--data-dir") {
        let options = budgeted_options(args)?;
        let store = SegmentStore::open_with(dir, options)
            .map_err(|e| format!("cannot open store at {dir}: {e}"))?;
        let view = store.view();
        view.prefault().map_err(|e| format!("cannot serve store at {dir}: {e}"))?;
        eprintln!("cold start from {dir}: {} facts (gen {})", view.len(), store.generation());
        if let Some(limit) = store.memory_budget().limit() {
            eprintln!("memory budget: {limit} B");
        }
        (
            KbRouter::from_view_with_config(&view, partitions, admission, registry),
            QueryService::from_view(&view),
        )
    } else {
        if let Some(path) = positional(args) {
            base = load_kb(path)?.into_snapshot().into_shared();
            eprintln!("loaded {path}: {} facts", base.len());
        } else {
            let mut cfg = CorpusConfig::tiny();
            cfg.world.seed = seed;
            let corpus = Corpus::generate(&cfg);
            let output = harvest(&corpus, &HarvestConfig::default())
                .map_err(|e| format!("harvest failed: {e}"))?;
            base = output.kb.into_snapshot().into_shared();
            eprintln!("harvested tiny corpus (seed {seed}): {} facts", base.len());
        }
        (
            KbRouter::with_config(Arc::clone(&base), partitions, admission, registry),
            QueryService::new(base.clone()),
        )
    };
    let rview = router.view();
    let (bound, scatter) = serve_workload(rview.as_ref());
    if bound.is_empty() {
        return Err("KB has no grammar-safe facts to build a workload from".into());
    }

    // Interleave: 4 subject-bound probes per scatter query.
    let workload: Vec<&str> = (0..requests)
        .map(|i| {
            if i % 5 == 4 && !scatter.is_empty() {
                scatter[(i / 5) % scatter.len()].as_str()
            } else {
                bound[i % bound.len()].as_str()
            }
        })
        .collect();

    eprintln!(
        "serve-bench: {partitions} partition(s), {clients} client(s), {requests} request(s)..."
    );
    let t = Instant::now();
    let errors: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let workload = &workload;
                let router = &router;
                s.spawn(move || {
                    let mut errs = 0usize;
                    for q in workload.iter().skip(c).step_by(clients) {
                        match router.query_as(&format!("client-{c}"), q) {
                            Ok(_) | Err(ServeError::Overloaded(_)) => {}
                            Err(ServeError::Query(_)) => errs += 1,
                        }
                    }
                    errs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).sum()
    });
    let elapsed = t.elapsed();
    if errors > 0 {
        return Err(format!("{errors} workload queries failed to parse/plan"));
    }

    let reg = kb_obs::global();
    let routed = reg.counter("serve.routed_single").get();
    let scattered = reg.counter("serve.scattered").get();
    let shed = reg.counter("serve.shed").get();
    println!(
        "requests:      {requests} in {elapsed:.2?} ({:.0} req/s)",
        requests as f64 / elapsed.as_secs_f64()
    );
    println!("routed single: {routed}");
    println!("scattered:     {scattered}");
    println!("shed:          {shed}");

    // Byte-equality spot check against the unpartitioned oracle.
    let oview = oracle.snapshot();
    let sample: Vec<&str> =
        bound.iter().take(4).chain(scatter.iter().take(2)).map(String::as_str).collect();
    for q in &sample {
        let got = router.query(q).map_err(|e| format!("router failed {q:?}: {e}"))?;
        let want = oracle.query(q).map_err(|e| format!("oracle failed {q:?}: {e}"))?;
        if got.render(rview.as_ref()) != want.render(oview.as_ref()) {
            return Err(format!("router and oracle disagree on {q:?}"));
        }
    }
    println!("oracle check:  OK ({} queries byte-identical)", sample.len());
    Ok(())
}

/// `kbkit watch`: the end-to-end continuous-query loop on one screen.
/// Bootstrap a base KB from most of a generated corpus, register a
/// standing view, then harvest the held-out articles in batches — each
/// batch becomes a delta install whose view update (added/removed rows,
/// patched-vs-reexecuted, latency) is printed as it happens.
fn cmd_watch(args: &[String]) -> Result<(), String> {
    let seed: u64 = opt(args, "--seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;
    let batch: usize = opt(args, "--batch").unwrap_or("4").parse().map_err(|_| "bad --batch")?;
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    let q = opt(args, "--query")
        .unwrap_or("SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c");

    let mut cfg = CorpusConfig::tiny();
    cfg.world.seed = seed;
    let corpus = Corpus::generate(&cfg);
    let split = (corpus.articles.len() * 7 / 10).max(1);
    let boot = Corpus {
        world: corpus.world.clone(),
        articles: corpus.articles[..split].to_vec(),
        overviews: corpus.overviews.clone(),
        web_pages: corpus.web_pages.clone(),
        essays: corpus.essays.clone(),
        posts: Vec::new(),
    };
    eprintln!("bootstrap harvest on {split}/{} articles...", corpus.articles.len());
    let (inc, out) = IncrementalHarvester::bootstrap(&boot, &HarvestConfig::default())
        .map_err(|e| format!("bootstrap failed: {e}"))?;
    let service = QueryService::new(out.kb.snapshot().into_shared());

    let id = service.register_view(q).map_err(|e| format!("cannot register view: {e}"))?;
    let plan = service.plan_for(q).map_err(|e| e.to_string())?;
    let initial = service.view_result(id).expect("freshly registered view has a result");
    println!("standing view {id}: {q}");
    println!("  maintenance: {}", maintainability(&plan).describe());
    println!(
        "  initial answer: {} rows over {} facts",
        initial.rows.len(),
        service.snapshot().len()
    );

    for (i, chunk) in corpus.articles[split..].chunks(batch).enumerate() {
        let refs: Vec<_> = chunk.iter().collect();
        let view = service.snapshot();
        let outcome = inc
            .harvest_batch(&corpus.world, &refs, &view)
            .map_err(|e| format!("batch {i} failed: {e}"))?;
        let accepted = outcome.accepted;
        let updates = service.apply_delta_publishing(Arc::new(outcome.delta));
        let latest = service.snapshot();
        match updates.iter().find(|u| u.id == id) {
            Some(u) => {
                println!(
                    "install {i}: {} docs, {accepted} facts → view {} (+{} −{} rows, {} in {} µs)",
                    chunk.len(),
                    if u.changed() { "changed" } else { "unchanged" },
                    u.added.len(),
                    u.removed.len(),
                    if u.patched { "patched" } else { "re-executed" },
                    u.patch_us,
                );
                for row in u.added.iter().take(5) {
                    println!("    + {}", u.output.render_row(row, latest.as_ref()));
                }
                for row in u.removed.iter().take(5) {
                    println!("    - {}", u.output.render_row(row, latest.as_ref()));
                }
            }
            None => println!(
                "install {i}: {} docs, {accepted} facts → outside the view's footprint, skipped",
                chunk.len()
            ),
        }
    }

    let last = service.view_result(id).expect("view survived the stream");
    let view = service.snapshot();
    println!("final answer ({} rows):", last.rows.len());
    for row in last.rows.iter().take(20) {
        println!("  {}", last.render_row(row, view.as_ref()));
    }
    Ok(())
}

/// Exercises every instrumented layer once — harvest the quickstart
/// (tiny) corpus, freeze a snapshot, serve a handful of queries — and
/// prints the collected metrics. This is the schema the CI step
/// validates, so all three layers' families are always present.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let json_only = args.iter().any(|a| a == "--json");
    let seed: u64 = opt(args, "--seed").unwrap_or("42").parse().map_err(|_| "bad --seed")?;

    let mut cfg = CorpusConfig::tiny();
    cfg.world.seed = seed;
    let corpus = Corpus::generate(&cfg);
    // Pipeline layer: per-phase spans + fact/resilience counters.
    let output =
        harvest(&corpus, &HarvestConfig::default()).map_err(|e| format!("harvest failed: {e}"))?;
    // Storage layer: snapshot freeze span + index/fact gauges.
    let snap = output.kb.into_snapshot().into_shared();
    // Query layer: cache counters + parse/plan/exec histograms.
    let service = QueryService::new(snap);
    let queries = [
        "?p bornIn ?c",
        "?p bornIn ?c . ?c locatedIn ?n",
        "SELECT DISTINCT ?c WHERE { ?p bornIn ?c }",
    ];
    for q in queries {
        let _ = service.query(q).map_err(|e| format!("metrics query {q:?} failed: {e}"))?;
    }
    // Once more for result-cache hits.
    for q in queries {
        let _ = service.query(q).map_err(|e| e.to_string())?;
    }

    // Serving layer: a 2-partition router answering one subject-bound
    // and one scatter query, so the serve.* families are present. The
    // one-slot subscriber buffer makes the stream below overflow.
    let router = KbRouter::with_config(
        service.snapshot().base().clone(),
        2,
        AdmissionConfig { subscriber_buffer: 1, ..Default::default() },
        kb_obs::global(),
    );
    let rview = router.view();
    let (bound, scatter) = serve_workload(rview.as_ref());
    for q in bound.iter().take(1).chain(scatter.iter().take(1)) {
        let _ = router.query(q).map_err(|e| format!("metrics serve query {q:?} failed: {e}"))?;
    }

    // Standing-view layer: one delta-patchable view, one fallback view
    // (LIMIT defeats incremental maintenance), a subscriber that never
    // drains, and three installs inside the footprint — together they
    // exercise every view.* family (registered, delta_patched,
    // reexecuted, patch_us, pushed, lagged).
    let patchable = router
        .register_view("SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c")
        .map_err(|e| format!("metrics view registration failed: {e}"))?;
    router
        .register_view("SELECT ?p ?c WHERE { ?p bornIn ?c } ORDER BY ?p LIMIT 3")
        .map_err(|e| format!("metrics view registration failed: {e}"))?;
    let stalled = router.subscribe(patchable);
    let mut shadow = service.snapshot();
    for i in 0..3 {
        let mut b = KbBuilder::new();
        b.assert_str(&format!("metrics_probe_{i}"), "bornIn", "metrics_city");
        let delta = Arc::new(b.freeze_delta(&shadow));
        shadow = Arc::new(shadow.with_delta(Arc::clone(&delta)));
        router.apply_delta(delta);
    }
    drop(stalled);

    // Durable-store layer: one create → install → reopen round trip in
    // a scratch directory, so the WAL/recovery families are present.
    let scratch = std::env::temp_dir().join(format!("kbkit-metrics-{}-{seed}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    let durable = (|| -> Result<(), kbkit::kb_store::StoreError> {
        let base = service.snapshot().base().clone();
        let options = StoreOptions { fsync: false, seal_every: 0, memory_budget: None };
        let mut store = SegmentStore::create(&scratch, Arc::clone(&base), options)?;
        let mut b = KbBuilder::new();
        b.assert_str("metrics_probe", "type", "probe");
        store.install_delta(Arc::new(b.freeze_delta(&store.view())))?;
        drop(store);
        // Reopen under a deliberately tiny memory budget and scan, so
        // the paging families (store.resident_bytes, store.page_faults,
        // store.spills) are exercised and present in the output schema.
        let budgeted = StoreOptions { memory_budget: Some(1), ..options };
        let store = SegmentStore::open_with(&scratch, budgeted)?;
        let view = store.view();
        view.prefault()?;
        let _ = view.count_matching(&TriplePattern::any());
        Ok(())
    })();
    let _ = fs::remove_dir_all(&scratch);
    durable.map_err(|e| format!("metrics store round-trip failed: {e}"))?;

    let registry = kb_obs::global();
    if json_only {
        println!("{}", registry.render_json());
    } else {
        print!("{}", registry.render_text());
        println!();
        println!("{}", registry.render_json());
    }
    Ok(())
}

fn cmd_ned(args: &[String]) -> Result<(), String> {
    let path = positional(args).ok_or("ned needs a KB file and text")?;
    let text =
        args.iter().filter(|a| !a.starts_with("--")).nth(1).ok_or("ned needs a text argument")?;
    let kb = load_kb(path)?;
    let mut ned = Ned::new(&kb);
    ned.finalize();
    let mentions = detect_mentions(&kb, text);
    if mentions.is_empty() {
        println!("no known mentions detected");
        return Ok(());
    }
    let spans: Vec<(usize, usize)> = mentions.iter().map(|m| (m.start, m.end)).collect();
    let resolved = ned.disambiguate(text, &spans, Strategy::Coherence);
    for (m, r) in mentions.iter().zip(resolved) {
        match r {
            Some(t) => {
                // A resolved term may live only in the label store (no
                // dictionary string of its own) — fall back through any
                // of its labels before giving up.
                let name = kb
                    .resolve(t)
                    .or_else(|| {
                        kb.labels.iter().find(|(term, _, _)| *term == t).map(|(_, _, form)| form)
                    })
                    .unwrap_or("?");
                println!("  {:>20}  →  {}", m.surface, name);
            }
            None => println!("  {:>20}  →  NIL", m.surface),
        }
    }
    Ok(())
}
