//! # kbkit
//!
//! Umbrella crate re-exporting the whole knowledge-base construction and
//! analytics toolkit — a from-scratch Rust realization of the system
//! landscape surveyed in Suchanek & Weikum, *Knowledge Bases in the Age
//! of Big Data Analytics* (VLDB 2014).
//!
//! | Crate | Role |
//! |-------|------|
//! | [`kb_store`] | RDF-style SPO triple store with taxonomy, sameAs, temporal scopes, multilingual labels |
//! | [`kb_nlp`] | shallow NLP: tokenization, POS tagging, chunking, similarity, TF-IDF, sequence mining |
//! | [`kb_corpus`] | deterministic synthetic world + corpus generator with ground truth |
//! | [`kb_harvest`] | knowledge harvesting: taxonomy induction, pattern/statistical/logical fact extraction, Open IE, temporal, commonsense, multilingual |
//! | [`kb_ned`] | named entity disambiguation: priors, context, coherence |
//! | [`kb_link`] | entity linkage: blocking, matchers, constrained clustering |
//! | [`kb_analytics`] | entity-centric stream analytics |
//! | [`kb_query`] | SPARQL-style query engine: parser, cost-based planner, concurrent serving layer |
//! | [`kb_serve`] | scale-out serving: subject-partitioned replicas, scatter-gather router, admission control |
//! | [`kb_obs`] | observability substrate: counters, gauges, histograms, span timers, metric registry |
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use kb_analytics;
pub use kb_corpus;
pub use kb_harvest;
pub use kb_link;
pub use kb_ned;
pub use kb_nlp;
pub use kb_obs;
pub use kb_query;
pub use kb_serve;
pub use kb_store;
