//! Seed-sweep invariants: properties that must hold for *any* corpus
//! seed, exercised across several seeds (a cheap cross-crate
//! property-test layer on top of the per-crate proptest suites).

use kbkit::kb_corpus::{gold, Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{evaluate_discovered, harvest, HarvestConfig};
use kbkit::kb_store::{ntriples, KbRead};

fn corpus_for(seed: u64) -> Corpus {
    let mut cfg = CorpusConfig::tiny();
    cfg.world.seed = seed;
    Corpus::generate(&cfg)
}

const SEEDS: [u64; 5] = [1, 7, 42, 1234, 987654321];

#[test]
fn mention_offsets_are_valid_for_every_seed() {
    for seed in SEEDS {
        let corpus = corpus_for(seed);
        for doc in corpus.all_docs() {
            for m in &doc.mentions {
                assert_eq!(
                    &doc.text[m.start..m.end],
                    m.surface,
                    "bad mention in seed {seed}, doc {}",
                    doc.title
                );
            }
        }
        for post in &corpus.posts {
            for m in &post.mentions {
                assert_eq!(&post.text[m.start..m.end], m.surface);
            }
        }
    }
}

#[test]
fn world_gold_is_schema_consistent_for_every_seed() {
    for seed in SEEDS {
        let corpus = corpus_for(seed);
        let w = &corpus.world;
        for f in &w.facts {
            assert_eq!(w.entity(f.s).kind, f.rel.domain(), "seed {seed}");
            assert_eq!(w.entity(f.o).kind, f.rel.range(), "seed {seed}");
            if let (Some(b), Some(e)) = (f.begin, f.end) {
                assert!(b <= e, "seed {seed}: inverted span {f:?}");
            }
        }
    }
}

#[test]
fn harvest_precision_floor_holds_for_every_seed() {
    for seed in SEEDS {
        let corpus = corpus_for(seed);
        let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
        let gold_facts = gold::gold_fact_strings(&corpus.world);
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.5, "seed {seed}: precision {} below floor", m.precision);
        assert!(!out.kb.is_empty(), "seed {seed}: empty KB");
    }
}

#[test]
fn serialization_round_trips_for_every_seed() {
    for seed in SEEDS {
        let corpus = corpus_for(seed);
        let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
        let text = ntriples::to_string(&out.kb).expect("serialize");
        let back = ntriples::from_str(&text).expect("parse");
        assert_eq!(back.len(), out.kb.len(), "seed {seed}");
        assert_eq!(ntriples::to_string(&back).unwrap(), text, "seed {seed}: unstable round trip");
    }
}
