//! Integration tests for the `kbkit` CLI binary.

use std::process::Command;

fn kbkit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kbkit"))
}

fn harvest_to(path: &std::path::Path) {
    let status = kbkit()
        .args(["harvest", "--scale", "tiny", "--seed", "42", "--out", path.to_str().unwrap()])
        .status()
        .expect("spawn kbkit");
    assert!(status.success());
    assert!(path.exists());
}

#[test]
fn harvest_stats_query_rules_ned_round_trip() {
    let dir = std::env::temp_dir().join("kbkit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let kb_path = dir.join("kb.tsv");
    harvest_to(&kb_path);

    // stats
    let out = kbkit().args(["stats", kb_path.to_str().unwrap()]).output().expect("stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("facts:"), "{stdout}");

    // query
    let out = kbkit()
        .args(["query", kb_path.to_str().unwrap(), "?p bornIn ?c . ?c locatedIn ?n"])
        .output()
        .expect("query");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");

    // query, full SELECT form with aggregation and --explain
    let out = kbkit()
        .args([
            "query",
            kb_path.to_str().unwrap(),
            "SELECT ?n COUNT(?p) AS ?k WHERE { ?p bornIn ?c . ?c locatedIn ?n } \
             GROUP BY ?n ORDER BY DESC(?k) ?n LIMIT 5",
            "--explain",
        ])
        .output()
        .expect("select query");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("estimated cost"), "{stderr}");

    // rules
    let out = kbkit()
        .args(["rules", kb_path.to_str().unwrap(), "--min-support", "3"])
        .output()
        .expect("rules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rules"), "{stdout}");

    // ned: pick an entity name straight from the KB dump.
    let dump = std::fs::read_to_string(&kb_path).unwrap();
    let label_line = dump.lines().find(|l| l.starts_with("L\t")).expect("dump has labels");
    let surface = label_line.split('\t').nth(3).unwrap();
    let text = format!("I read about {surface} yesterday.");
    let out = kbkit().args(["ned", kb_path.to_str().unwrap(), &text]).output().expect("ned");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('→'), "{stdout}");
}

#[test]
fn help_and_errors() {
    let out = kbkit().arg("--help").output().expect("help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = kbkit().arg("frobnicate").output().expect("bad cmd");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = kbkit().args(["stats", "/nonexistent/kb.tsv"]).output().expect("bad file");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
