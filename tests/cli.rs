//! Integration tests for the `kbkit` CLI binary.

use std::process::Command;

fn kbkit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kbkit"))
}

fn harvest_to(path: &std::path::Path) {
    let status = kbkit()
        .args(["harvest", "--scale", "tiny", "--seed", "42", "--out", path.to_str().unwrap()])
        .status()
        .expect("spawn kbkit");
    assert!(status.success());
    assert!(path.exists());
}

#[test]
fn harvest_stats_query_rules_ned_round_trip() {
    let dir = std::env::temp_dir().join("kbkit-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let kb_path = dir.join("kb.tsv");
    harvest_to(&kb_path);

    // stats
    let out = kbkit().args(["stats", kb_path.to_str().unwrap()]).output().expect("stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("facts:"), "{stdout}");

    // query
    let out = kbkit()
        .args(["query", kb_path.to_str().unwrap(), "?p bornIn ?c . ?c locatedIn ?n"])
        .output()
        .expect("query");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");

    // query, full SELECT form with aggregation and --explain
    let out = kbkit()
        .args([
            "query",
            kb_path.to_str().unwrap(),
            "SELECT ?n COUNT(?p) AS ?k WHERE { ?p bornIn ?c . ?c locatedIn ?n } \
             GROUP BY ?n ORDER BY DESC(?k) ?n LIMIT 5",
            "--explain",
        ])
        .output()
        .expect("select query");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("estimated cost"), "{stderr}");

    // rules
    let out = kbkit()
        .args(["rules", kb_path.to_str().unwrap(), "--min-support", "3"])
        .output()
        .expect("rules");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rules"), "{stdout}");

    // ned: pick an entity name straight from the KB dump.
    let dump = std::fs::read_to_string(&kb_path).unwrap();
    let label_line = dump.lines().find(|l| l.starts_with("L\t")).expect("dump has labels");
    let surface = label_line.split('\t').nth(3).unwrap();
    let text = format!("I read about {surface} yesterday.");
    let out = kbkit().args(["ned", kb_path.to_str().unwrap(), &text]).output().expect("ned");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('→'), "{stdout}");
}

#[test]
fn metrics_subcommand_emits_all_layers() {
    // Text-table + JSON form.
    let out = kbkit().arg("metrics").output().expect("metrics");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for family in ["harvest.facts.accepted", "store.snapshot.freeze_us", "query.cache.result_hits"]
    {
        assert!(stdout.contains(family), "missing {family} in:\n{stdout}");
    }

    // --json must print exactly one JSON object with all three layers.
    let out = kbkit().args(["metrics", "--json"]).output().expect("metrics --json");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout.trim();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert_eq!(json.lines().count(), 1, "--json should emit a single line");
    for key in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    for prefix in ["\"harvest.", "\"store.", "\"query."] {
        assert!(json.contains(prefix), "missing layer {prefix} in:\n{json}");
    }
    // The durable-store round trip inside `kbkit metrics` must surface
    // the WAL and recovery families.
    for family in [
        "\"store.wal.appends\"",
        "\"store.wal.replayed\"",
        "\"store.fsync_micros\"",
        "\"store.recovery.quarantined_segments\"",
    ] {
        assert!(json.contains(family), "missing durable family {family} in:\n{json}");
    }
    // The budgeted reopen inside `kbkit metrics` must surface the
    // beyond-RAM paging families.
    for family in ["\"store.resident_bytes\"", "\"store.page_faults\"", "\"store.spills\""] {
        assert!(json.contains(family), "missing paging family {family} in:\n{json}");
    }
}

#[test]
fn metrics_flag_dumps_table_to_stderr() {
    let dir = std::env::temp_dir().join("kbkit-cli-metrics-flag");
    std::fs::create_dir_all(&dir).unwrap();
    let kb_path = dir.join("kb.tsv");
    harvest_to(&kb_path);

    let out = kbkit()
        .args(["query", kb_path.to_str().unwrap(), "?p bornIn ?c", "--metrics"])
        .output()
        .expect("query --metrics");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("query.cache.result_misses"), "{stderr}");
    assert!(stderr.contains("query.parse_us"), "{stderr}");
    // The boolean flag must not swallow the positional KB path.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");
}

#[test]
fn durable_harvest_then_cold_start_query_round_trip() {
    let dir = std::env::temp_dir().join("kbkit-cli-durable");
    std::fs::remove_dir_all(&dir).ok();
    let store_dir = dir.join("store");
    std::fs::create_dir_all(&dir).unwrap();
    let kb_path = dir.join("kb.tsv");

    // Durable incremental harvest: per-delta lines must report the
    // durability cost next to install latency.
    let out = kbkit()
        .args([
            "harvest",
            "--incremental",
            "--data-dir",
            store_dir.to_str().unwrap(),
            "--no-fsync",
            "--out",
            kb_path.to_str().unwrap(),
        ])
        .output()
        .expect("durable harvest");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("durable store at"), "{stderr}");
    assert!(stderr.contains("durable:"), "per-delta durability cost missing:\n{stderr}");
    assert!(stderr.contains("fsync"), "{stderr}");
    assert!(store_dir.join("MANIFEST").exists());

    // Cold start straight from the store directory.
    let out = kbkit()
        .args(["query", "--data-dir", store_dir.to_str().unwrap(), "?p bornIn ?c"])
        .output()
        .expect("cold-start query");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cold start"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("solutions"), "{stdout}");

    // The durable view and the TSV dump agree on the query answer.
    // (Row *order* follows internal term ids, which differ between the
    // store's original interning and a TSV re-load, so compare as sets.)
    let out_tsv = kbkit()
        .args(["query", kb_path.to_str().unwrap(), "?p bornIn ?c"])
        .output()
        .expect("tsv query");
    assert!(out_tsv.status.success());
    let sorted = |s: &str| {
        let mut rows: Vec<&str> = s.lines().collect();
        rows.sort_unstable();
        rows.join("\n")
    };
    assert_eq!(
        sorted(&String::from_utf8_lossy(&out_tsv.stdout)),
        sorted(&stdout),
        "durable vs TSV answers"
    );

    // Corrupt one byte of the base segment: the CLI must exit non-zero
    // with a clear, typed message — never serve a wrong KB.
    let base = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("base-"))
        .expect("base segment exists")
        .path();
    let mut bytes = std::fs::read(&base).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(&base, &bytes).unwrap();
    let out = kbkit()
        .args(["query", "--data-dir", store_dir.to_str().unwrap(), "?p bornIn ?c"])
        .output()
        .expect("query against corrupt store");
    assert!(!out.status.success(), "corrupt store must fail the command");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt segment data"), "untyped error:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_errors() {
    let out = kbkit().arg("--help").output().expect("help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = kbkit().arg("frobnicate").output().expect("bad cmd");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = kbkit().args(["stats", "/nonexistent/kb.tsv"]).output().expect("bad file");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
