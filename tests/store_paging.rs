//! Beyond-RAM paging suite: a durable store opened under a
//! `memory_budget` smaller than its index must (a) open in O(header)
//! time without touching cold bytes, (b) answer every query
//! byte-identically to an unbudgeted open while resident column bytes
//! never exceed the budget, and (c) spill without ever writing — so a
//! kill -9 mid-spill can lose nothing.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use kbkit::kb_query::QueryService;
use kbkit::kb_store::{
    ntriples, segment_io, Fact, KbBuilder, KbRead, KbSnapshot, SegmentRegion, SegmentStore,
    StoreOptions, TimeSpan, Triple,
};

const NO_FSYNC: StoreOptions = StoreOptions { fsync: false, seal_every: 0, memory_budget: None };

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbkit-paging-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A KB big enough that every permutation column holds many frames.
fn sized_base(people: usize) -> Arc<KbSnapshot> {
    let mut b = KbBuilder::new();
    let src = b.register_source("paging-source");
    let born = b.intern("bornIn");
    let located = b.intern("locatedIn");
    for i in 0..people {
        let s = b.intern(&format!("person_{i}"));
        let o = b.intern(&format!("city_{}", i % 50));
        b.add_fact(Fact {
            triple: Triple::new(s, born, o),
            confidence: 0.6 + 0.3 * ((i % 10) as f64 / 10.0),
            source: src,
            span: TimeSpan::parse("[1950,2020]"),
        });
    }
    for c in 0..50 {
        let s = b.intern(&format!("city_{c}"));
        let o = b.intern(&format!("country_{}", c % 5));
        b.add_triple(s, located, o);
    }
    b.freeze().into()
}

/// Frames-region length of the base segment — the budget denominator.
fn frames_bytes(dir: &Path) -> usize {
    let bytes = std::fs::read(dir.join("base-0.seg")).unwrap();
    segment_io::region_map(&bytes)
        .unwrap()
        .into_iter()
        .find(|(r, _)| *r == SegmentRegion::Frames)
        .map(|(_, range)| range.len())
        .expect("v2 segment has a frames region")
}

const QUERIES: &[&str] = &[
    "?p bornIn ?c",
    "?p bornIn ?c . ?c locatedIn ?n",
    "person_7 bornIn ?c",
    "SELECT DISTINCT ?c WHERE { ?p bornIn ?c }",
    "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c",
];

fn answers(service: &QueryService, view: &kbkit::kb_store::SegmentedSnapshot) -> Vec<String> {
    QUERIES.iter().map(|q| service.query(q).unwrap().render(view)).collect()
}

/// A store opened under half its frames-region budget answers every
/// query byte-identically to an unbudgeted open, pages columns in and
/// out (faults and spills both observed), and the resident gauge never
/// ends a query above the configured limit.
#[test]
fn budgeted_queries_are_byte_identical_and_stay_under_budget() {
    let dir = scratch("differential");
    drop(SegmentStore::create(&dir, sized_base(1500), NO_FSYNC).unwrap());
    let budget = frames_bytes(&dir) / 2;

    // Oracle: unbudgeted (eager-equivalent) open.
    let oracle_store = SegmentStore::open_with(&dir, NO_FSYNC).unwrap();
    let oracle_view = oracle_store.view();
    let oracle_service = QueryService::try_from_view(&oracle_view).unwrap();
    let want = answers(&oracle_service, &oracle_view);
    let want_dump = ntriples::to_string(&oracle_view).unwrap();

    // Budgeted open of the same directory.
    let options = StoreOptions { memory_budget: Some(budget), ..NO_FSYNC };
    let store = SegmentStore::open_with(&dir, options).unwrap();
    let view = store.view();
    let service = QueryService::try_from_view(&view).unwrap();
    let meter = store.memory_budget();
    assert_eq!(meter.limit(), Some(budget));

    for (q, want_one) in QUERIES.iter().zip(&want) {
        let got = service.query(q).unwrap().render(&view);
        assert_eq!(&got, want_one, "budgeted answer diverged for {q:?}");
        assert!(
            meter.resident_bytes() <= budget,
            "resident {} B exceeds budget {budget} B after {q:?}",
            meter.resident_bytes(),
        );
    }
    assert_eq!(ntriples::to_string(&view).unwrap(), want_dump);
    assert!(meter.page_faults() > 0, "budgeted serving must fault columns in");
    assert!(meter.spills() > 0, "a half-index budget must force spills");
    std::fs::remove_dir_all(&dir).ok();
}

/// A lazy open reads only the preamble and header: no column is
/// resident and no fault has happened until the first query touches
/// the index.
#[test]
fn lazy_open_touches_no_cold_bytes() {
    let dir = scratch("lazy-open");
    drop(SegmentStore::create(&dir, sized_base(800), NO_FSYNC).unwrap());
    let options = StoreOptions { memory_budget: Some(1 << 20), ..NO_FSYNC };
    let store = SegmentStore::open_with(&dir, options).unwrap();
    let meter = store.memory_budget();
    assert_eq!(meter.resident_bytes(), 0, "open must not materialize columns");
    assert_eq!(meter.page_faults(), 0, "open must not fault");
    // Count-prefix reads (delta stacking checks) are not faults either.
    let view = store.view();
    assert!(view.term_count() > 0);
    assert_eq!(meter.page_faults(), 0, "term_count must use the count prefix, not a fault");
    // First real scan faults.
    let n = view.count_matching(&kbkit::kb_store::TriplePattern::any());
    assert_eq!(n, 850);
    assert!(meter.page_faults() > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spill is read-only: serving under a starvation budget (every fault
/// evicts the previous column) leaves every on-disk byte untouched, so
/// a crash at any point during paging — including mid-spill — loses
/// nothing. The store reopens cleanly afterwards and serves the same
/// KB.
#[test]
fn spill_never_writes_and_store_survives_crash_during_paging() {
    let dir = scratch("spill-readonly");
    drop(SegmentStore::create(&dir, sized_base(600), NO_FSYNC).unwrap());
    let before: Vec<(String, Vec<u8>)> = {
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        files.into_iter().map(|p| (p.display().to_string(), std::fs::read(&p).unwrap())).collect()
    };
    let oracle = {
        let store = SegmentStore::open_with(&dir, NO_FSYNC).unwrap();
        ntriples::to_string(&store.view()).unwrap()
    };

    // Starvation budget: one byte, so every column fault spills the
    // previously resident column.
    let options = StoreOptions { memory_budget: Some(1), ..NO_FSYNC };
    let store = SegmentStore::open_with(&dir, options).unwrap();
    let view = store.view();
    view.prefault().unwrap();
    for q in ["?p bornIn ?c", "?p locatedIn ?c", "person_3 bornIn ?c"] {
        let service_free = QueryService::from_view(&view);
        let _ = service_free.query(q).unwrap();
    }
    assert!(store.memory_budget().spills() > 0, "starvation budget must spill");
    // Simulated kill -9 mid-paging: drop with no shutdown protocol.
    drop((view, store));

    for (name, bytes) in &before {
        assert_eq!(
            &std::fs::read(name).unwrap(),
            bytes,
            "{name} changed on disk — paging must never write"
        );
    }
    let store = SegmentStore::open_with(&dir, NO_FSYNC).unwrap();
    assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
    std::fs::remove_dir_all(&dir).ok();
}
