//! End-to-end integration: corpus → harvest → knowledge base, checking
//! cross-crate invariants the unit tests cannot see.

use kbkit::kb_corpus::{gold, Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{evaluate_discovered, harvest, HarvestConfig, Method};
use kbkit::kb_store::{ntriples, KbRead, TriplePattern};

fn corpus() -> Corpus {
    Corpus::generate(&CorpusConfig::tiny())
}

#[test]
fn harvested_kb_is_internally_consistent() {
    let corpus = corpus();
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let kb = &out.kb;

    // Every accepted candidate materialized as a live fact whose terms
    // resolve back to the candidate strings.
    for c in &out.accepted {
        let s = kb.term(&c.subject).expect("subject interned");
        let p = kb.term(&c.relation).expect("relation interned");
        let o = kb.term(&c.object).expect("object interned");
        let t = kbkit::kb_store::Triple::new(s, p, o);
        let fact = kb.fact_for(&t).expect("accepted fact is live");
        assert!(fact.confidence > 0.0 && fact.confidence <= 1.0);
    }

    // Every taxonomy class mentioned by an instanceOf fact is a
    // registered class.
    let instance_of = kb.term("instanceOf").expect("instanceOf predicate");
    for fact in kb.matching(&TriplePattern::with_p(instance_of)) {
        assert!(
            kb.taxonomy.contains(fact.triple.o),
            "class {:?} not registered",
            kb.resolve(fact.triple.o)
        );
    }

    // Confidence is a probability everywhere.
    for fact in kb.iter() {
        assert!((0.0..=1.0).contains(&fact.confidence));
    }
}

#[test]
fn harvest_is_deterministic_across_runs() {
    let c1 = corpus();
    let c2 = corpus();
    let out1 = harvest(&c1, &HarvestConfig::default()).expect("harvest");
    let out2 = harvest(&c2, &HarvestConfig::default()).expect("harvest");
    let keys1: Vec<_> = out1.accepted.iter().map(|c| c.key()).collect();
    let keys2: Vec<_> = out2.accepted.iter().map(|c| c.key()).collect();
    assert_eq!(keys1, keys2);
    assert_eq!(out1.kb.len(), out2.kb.len());
}

#[test]
fn harvested_kb_survives_serialization() {
    let corpus = corpus();
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let text = ntriples::to_string(&out.kb).expect("serialize");
    let reloaded = ntriples::from_str(&text).expect("reload");
    assert_eq!(reloaded.len(), out.kb.len());
    assert_eq!(reloaded.labels.label_count(), out.kb.labels.label_count());
    assert_eq!(reloaded.taxonomy.edge_count(), out.kb.taxonomy.edge_count());
    // Double round-trip is byte-stable.
    let text2 = ntriples::to_string(&reloaded).expect("serialize again");
    assert_eq!(text, text2);
}

#[test]
fn sharded_harvest_matches_serial_harvest_byte_for_byte() {
    let corpus = corpus();
    let serial = harvest(&corpus, &HarvestConfig { workers: 1, ..Default::default() })
        .expect("serial harvest");
    let sharded = harvest(&corpus, &HarvestConfig { workers: 4, ..Default::default() })
        .expect("sharded harvest");
    assert_eq!(serial.kb.len(), sharded.kb.len());
    assert_eq!(
        ntriples::to_string(&serial.kb).expect("serialize serial"),
        ntriples::to_string(&sharded.kb).expect("serialize sharded"),
        "worker count must not change the harvested KB"
    );
}

#[test]
fn snapshot_of_harvested_kb_serves_parallel_readers() {
    let corpus = corpus();
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let live_dump = ntriples::to_string(&out.kb).expect("serialize live");
    let snap = out.kb.snapshot().into_shared();
    // The frozen snapshot serializes identically to the live store...
    assert_eq!(live_dump, ntriples::to_string(snap.as_ref()).expect("serialize snapshot"));
    // ...and concurrent readers over the same Arc agree on every
    // pattern shape without any locking.
    let instance_of = snap.term("instanceOf").expect("instanceOf predicate");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let snap = std::sync::Arc::clone(&snap);
            scope.spawn(move || {
                let by_p = snap.count_matching(&TriplePattern::with_p(instance_of));
                assert!(by_p > 0, "instanceOf facts visible from snapshot");
                assert_eq!(snap.matching(&TriplePattern::any()).len(), snap.len());
            });
        }
    });
}

#[test]
fn every_method_clears_a_quality_floor() {
    let corpus = corpus();
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    for method in
        [Method::PatternsOnly, Method::Statistical, Method::Reasoning, Method::FactorGraph]
    {
        let out =
            harvest(&corpus, &HarvestConfig { method, ..Default::default() }).expect("harvest");
        let m = evaluate_discovered(&out.accepted, &gold_facts, &out.seeds);
        assert!(m.precision > 0.5, "{method:?} precision {}", m.precision);
        assert!(!out.accepted.is_empty(), "{method:?} accepted nothing");
    }
}

#[test]
fn noise_free_corpus_yields_higher_precision_than_noisy() {
    let clean = Corpus::generate(&CorpusConfig::clean());
    let mut noisy_cfg = CorpusConfig::clean();
    noisy_cfg.noise_rate = 0.35;
    let noisy = Corpus::generate(&noisy_cfg);
    let gold_clean = gold::gold_fact_strings(&clean.world);
    let gold_noisy = gold::gold_fact_strings(&noisy.world);
    let cfg = HarvestConfig { method: Method::PatternsOnly, ..Default::default() };
    let out_clean = harvest(&clean, &cfg).expect("harvest");
    let out_noisy = harvest(&noisy, &cfg).expect("harvest");
    let m_clean = evaluate_discovered(&out_clean.accepted, &gold_clean, &out_clean.seeds);
    let m_noisy = evaluate_discovered(&out_noisy.accepted, &gold_noisy, &out_noisy.seeds);
    assert!(
        m_clean.precision >= m_noisy.precision,
        "clean {} < noisy {}",
        m_clean.precision,
        m_noisy.precision
    );
}

#[test]
fn seed_fraction_trades_recall() {
    let corpus = corpus();
    let gold_facts = gold::gold_fact_strings(&corpus.world);
    let run = |fraction: f64| {
        let out =
            harvest(&corpus, &HarvestConfig { seed_fraction: fraction, ..Default::default() })
                .expect("harvest");
        evaluate_discovered(&out.accepted, &gold_facts, &out.seeds)
    };
    let low = run(0.1);
    let high = run(0.5);
    // More seeds → more patterns learned → at least as much recall
    // (allowing small fluctuations from the shrunken gold remainder).
    assert!(
        high.recall >= low.recall - 0.05,
        "high-seed recall {} vs low-seed {}",
        high.recall,
        low.recall
    );
}
