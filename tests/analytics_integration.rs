//! Integration: the full analytics path — harvested KB + NED + stream
//! aggregation recovers the corpus' planted volume/sentiment shapes.

use kbkit::kb_analytics::exec::aggregate_parallel;
use kbkit::kb_analytics::stream::from_corpus;
use kbkit::kb_analytics::{ComparisonReport, StreamPost, Tracker};
use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_ned::Ned;
use kbkit::kb_store::KbRead;

struct Fixture {
    corpus: Corpus,
    out: kbkit::kb_harvest::pipeline::HarvestOutput,
}

fn fixture() -> Fixture {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    Fixture { corpus, out }
}

fn tracked_terms(f: &Fixture) -> (kbkit::kb_store::TermId, kbkit::kb_store::TermId) {
    let (pa, pb) = f.corpus.world.rival_products;
    (
        f.out.kb.term(&f.corpus.world.entity(pa).canonical).expect("A"),
        f.out.kb.term(&f.corpus.world.entity(pb).canonical).expect("B"),
    )
}

fn build_ned<'kb>(f: &'kb Fixture) -> Ned<'kb> {
    let mut ned = Ned::new(&f.out.kb);
    for doc in f.corpus.all_docs() {
        for m in &doc.mentions {
            if let Some(t) = f.out.kb.term(&f.corpus.world.entity(m.entity).canonical) {
                ned.add_anchor(&m.surface, t);
            }
        }
    }
    ned.finalize();
    ned
}

#[test]
fn planted_trend_and_crossover_are_recovered() {
    let f = fixture();
    let (ta, tb) = tracked_terms(&f);
    let ned = build_ned(&f);
    let tracker = Tracker::new(&ned, vec![ta, tb]);
    let posts: Vec<StreamPost> = f.corpus.posts.iter().map(from_corpus).collect();
    let series = tracker.aggregate(&f.out.kb, &posts);
    let sa = &series[&ta];
    let sb = &series[&tb];
    assert!(sa.total_mentions() > 0 && sb.total_mentions() > 0);
    // B's volume ramps faster than A's (the planted shape).
    assert!(sb.trend_slope() > sa.trend_slope());
    let report = ComparisonReport::new("A", sa.clone(), "B", sb.clone());
    // The rendered report contains every observed week.
    let rendered = report.to_string();
    for week in sa.buckets.keys() {
        assert!(rendered.contains(&format!("{week}")), "week {week} missing");
    }
}

#[test]
fn parallel_aggregation_matches_serial_on_the_real_stream() {
    let f = fixture();
    let (ta, tb) = tracked_terms(&f);
    let ned = build_ned(&f);
    let tracker = Tracker::new(&ned, vec![ta, tb]);
    let posts: Vec<StreamPost> = f.corpus.posts.iter().map(from_corpus).collect();
    let serial = tracker.aggregate(&f.out.kb, &posts);
    for workers in [2, 3, 8] {
        let parallel = aggregate_parallel(&tracker, &f.out.kb, &posts, workers);
        assert_eq!(serial, parallel, "divergence at {workers} workers");
    }
}

#[test]
fn sentiment_series_tracks_gold_polarity() {
    let f = fixture();
    let (ta, tb) = tracked_terms(&f);
    let ned = build_ned(&f);
    let tracker = Tracker::new(&ned, vec![ta, tb]);
    // Measured net sentiment should correlate with the gold labels on
    // the same posts: compute both and require agreement in sign over
    // the aggregate.
    let mut gold_net = 0i64;
    for p in &f.corpus.posts {
        gold_net += i64::from(p.gold_sentiment);
    }
    let posts: Vec<StreamPost> = f.corpus.posts.iter().map(from_corpus).collect();
    let series = tracker.aggregate(&f.out.kb, &posts);
    let measured_net: f64 = series
        .values()
        .flat_map(|s| s.buckets.values())
        .map(|b| b.positive as f64 - b.negative as f64)
        .sum();
    assert_eq!(
        measured_net.signum() as i64,
        gold_net.signum(),
        "aggregate sentiment sign mismatch: measured {measured_net}, gold {gold_net}"
    );
}
