//! Differential property tests for the partitioned serving layer:
//! random KBs (asserts + retractions, split into a base and random
//! delta installs) and random SELECT shapes must produce byte-identical
//! output through a [`KbRouter`] at every partition count 1–4 as
//! through one monolithic `QueryService` over the same segment chain.
//! Any divergence is a bug in exactly one of the two paths — the
//! subject-hash split, the scan-level gather, or the delta fan-out.

use std::sync::Arc;

use proptest::prelude::*;

use kbkit::kb_obs::Registry;
use kbkit::kb_query::QueryService;
use kbkit::kb_serve::{AdmissionConfig, KbRouter};
use kbkit::kb_store::{KbBuilder, SegmentedSnapshot};

const VARS: [&str; 4] = ["x", "y", "z", "w"];

/// Decodes one pattern component: kinds 0..4 pick a shared variable,
/// anything else a constant entity.
fn entity_term(kind: u8, idx: u32) -> String {
    if kind < 4 {
        format!("?{}", VARS[kind as usize])
    } else {
        format!("e{}", idx % 6)
    }
}

/// Predicate position: kind 0 is a variable, else a constant relation.
fn pred_term(kind: u8, idx: u32) -> String {
    if kind == 0 {
        "?r".to_string()
    } else {
        format!("r{}", idx % 3)
    }
}

/// kind 0 retracts (a tombstone when it crosses a segment boundary),
/// anything else asserts.
fn apply(b: &mut KbBuilder, (kind, s, p, o): (u8, u32, u32, u32)) {
    let (es, rp, eo) = (format!("e{s}"), format!("r{p}"), format!("e{o}"));
    if kind == 0 {
        b.retract_str(&es, &rp, &eo);
    } else {
        b.assert_str(&es, &rp, &eo);
    }
}

/// Builds the monolithic segment chain: chunk 0 as the base, each later
/// chunk frozen as a delta against the growing view. Returns the final
/// view plus the pieces the router needs to replay the same history.
fn build_chain(
    ops: &[(u8, u32, u32, u32)],
    cuts: &[prop::sample::Index],
) -> (SegmentedSnapshot, Arc<kbkit::kb_store::KbSnapshot>, Vec<Arc<kbkit::kb_store::DeltaSegment>>)
{
    let mut bounds: Vec<usize> = cuts.iter().map(|c| c.index(ops.len() + 1)).collect();
    bounds.push(0);
    bounds.push(ops.len());
    bounds.sort_unstable();
    bounds.dedup();
    let mut chunks = bounds.windows(2).map(|w| &ops[w[0]..w[1]]);

    let mut base_b = KbBuilder::new();
    for &op in chunks.next().unwrap_or(&[]) {
        apply(&mut base_b, op);
    }
    let base = base_b.freeze().into_shared();
    let mut view = SegmentedSnapshot::from_base(Arc::clone(&base));
    let mut deltas = Vec::new();
    for chunk in chunks {
        let mut b = KbBuilder::new();
        for &op in chunk {
            apply(&mut b, op);
        }
        let delta = Arc::new(b.freeze_delta(&view));
        view = view.with_delta(Arc::clone(&delta));
        deltas.push(delta);
    }
    (view, base, deltas)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitioned ≡ monolithic: for every partition count 1–4, the
    /// router's answer to a random SELECT (conjunctions, OPTIONAL,
    /// UNION, FILTER, aggregates, modifiers) over a randomly
    /// delta-segmented KB renders byte-identically to a single
    /// `QueryService` over the same chain — including a guaranteed
    /// subject-bound probe so both routing paths are always exercised.
    #[test]
    fn partitioned_router_matches_monolithic_service(
        ops in prop::collection::vec((0u8..5, 0u32..6, 0u32..3, 0u32..6), 1..40),
        cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        patterns in prop::collection::vec(
            ((0u8..6, 0u32..6), (0u8..3, 0u32..3), (0u8..6, 0u32..6)),
            1..4
        ),
        optional in prop::option::of(((0u8..6, 0u32..6), (1u8..3, 0u32..3), (0u8..6, 0u32..6))),
        union in any::<bool>(),
        filter in prop::option::of((0u8..4, 0u8..6, 0u32..6)),
        aggregate in any::<bool>(),
        distinct in any::<bool>(),
        limit in prop::option::of(0usize..20),
        probe in (0u32..6, 0u32..3),
    ) {
        let (view, base, deltas) = build_chain(&ops, &cuts);

        let mut body: Vec<String> = patterns
            .iter()
            .map(|((sk, si), (pk, pi), (ok, oi))| {
                format!(
                    "{} {} {}",
                    entity_term(*sk, *si),
                    pred_term(*pk, *pi),
                    entity_term(*ok, *oi)
                )
            })
            .collect();
        if union {
            body.push("{ ?x r0 ?y } UNION { ?x r1 ?y }".to_string());
        }
        if let Some(((sk, si), (pk, pi), (ok, oi))) = optional {
            body.push(format!(
                "OPTIONAL {{ {} {} {} }}",
                entity_term(sk, si),
                pred_term(pk, pi),
                entity_term(ok, oi)
            ));
        }
        if let Some((v, op, e)) = filter {
            let sym = ["=", "!=", "<", "<=", ">", ">="][op as usize % 6];
            body.push(format!("FILTER(?{} {} e{})", VARS[v as usize % 4], sym, e));
        }
        let mut text = if aggregate {
            format!(
                "SELECT ?x COUNT(?y) AS ?n WHERE {{ {} }} GROUP BY ?x ORDER BY DESC(?n) ?x",
                body.join(" . ")
            )
        } else if distinct {
            format!("SELECT DISTINCT * WHERE {{ {} }}", body.join(" . "))
        } else {
            format!("SELECT * WHERE {{ {} }}", body.join(" . "))
        };
        if let Some(n) = limit {
            text.push_str(&format!(" LIMIT {n}"));
        }
        // Always-subject-bound probe: single constant-subject pattern.
        let (ps, pp) = probe;
        let probe_text = format!("e{ps} r{pp} ?x . e{ps} ?r ?y");

        let oracle = QueryService::from_view(&view);
        let oview = oracle.snapshot();

        for partitions in 1usize..=4 {
            let router = KbRouter::with_config(
                Arc::clone(&base),
                partitions,
                AdmissionConfig::default(),
                &Registry::new(),
            );
            for delta in &deltas {
                router.apply_delta(Arc::clone(delta));
            }
            let rview = router.view();
            for q in [text.as_str(), probe_text.as_str()] {
                match (router.query(q), oracle.query(q)) {
                    (Ok(got), Ok(want)) => prop_assert_eq!(
                        got.render(rview.as_ref()),
                        want.render(oview.as_ref()),
                        "{} partitions diverged on: {}",
                        partitions,
                        q
                    ),
                    (Err(_), Err(_)) => {} // both reject (e.g. unbound projection)
                    (got, want) => prop_assert!(
                        false,
                        "only one side failed on {:?} at {} partitions: router {:?}, oracle ok={:?}",
                        q, partitions, got.map(|_| ()), want.is_ok()
                    ),
                }
            }
        }
    }
}
