//! Integration: the full linkage path — dumps → blocking → matching →
//! constrained clustering → sameAs classes in a KB.

use kbkit::kb_corpus::gold::{linkage_dump, pr_f1};
use kbkit::kb_corpus::{CorpusConfig, World};
use kbkit::kb_link::blocking::{blocking_quality, candidate_pairs, Blocking};
use kbkit::kb_link::cluster::cluster_with_constraints;
use kbkit::kb_link::logreg::{LogRegMatcher, TrainConfig};
use kbkit::kb_link::record::from_corpus;
use kbkit::kb_link::rules::{rule_match, RuleConfig};
use kbkit::kb_link::Record;
use kbkit::kb_store::KnowledgeBase;
use std::collections::{HashMap, HashSet};

fn fixture() -> (Vec<Record>, HashSet<(u32, u32)>) {
    let world = World::generate(&CorpusConfig::tiny().world);
    let dump = linkage_dump(&world, 7);
    (dump.records.iter().map(from_corpus).collect(), dump.gold_pairs)
}

#[test]
fn full_path_reaches_high_f1() {
    let (records, gold) = fixture();
    let pairs = candidate_pairs(&records, Blocking::Token);
    assert!(blocking_quality(&pairs, &gold).pair_recall > 0.9);

    let by_id: HashMap<u32, &Record> = records.iter().map(|r| (r.id, r)).collect();
    let rule_cfg = RuleConfig::default();
    let matched: HashSet<(u32, u32)> = pairs
        .iter()
        .copied()
        .filter(|&(a, b)| rule_match(by_id[&a], by_id[&b], &rule_cfg))
        .collect();
    let m = pr_f1(&matched, &gold);
    assert!(m.f1 > 0.7, "rule F1 {}", m.f1);
}

#[test]
fn learned_matcher_generalizes_across_dumps() {
    // Train on one dump, evaluate on a freshly perturbed one.
    let world = World::generate(&CorpusConfig::tiny().world);
    let train_dump = linkage_dump(&world, 7);
    let test_dump = linkage_dump(&world, 8);
    let train_records: Vec<Record> = train_dump.records.iter().map(from_corpus).collect();
    let test_records: Vec<Record> = test_dump.records.iter().map(from_corpus).collect();

    let train_pairs = candidate_pairs(&train_records, Blocking::Token);
    let by_id: HashMap<u32, &Record> = train_records.iter().map(|r| (r.id, r)).collect();
    let labeled: Vec<(&Record, &Record, bool)> = train_pairs
        .iter()
        .map(|&(a, b)| (by_id[&a], by_id[&b], train_dump.gold_pairs.contains(&(a, b))))
        .collect();
    let model = LogRegMatcher::train(&labeled, &TrainConfig::default());

    let test_pairs = candidate_pairs(&test_records, Blocking::Token);
    let by_id_test: HashMap<u32, &Record> = test_records.iter().map(|r| (r.id, r)).collect();
    let predicted: HashSet<(u32, u32)> = test_pairs
        .iter()
        .copied()
        .filter(|&(a, b)| model.matches(by_id_test[&a], by_id_test[&b]))
        .collect();
    let m = pr_f1(&predicted, &test_dump.gold_pairs);
    assert!(m.f1 > 0.7, "cross-dump F1 {}", m.f1);
}

#[test]
fn constraints_only_remove_wrong_merges() {
    let (records, gold) = fixture();
    let pairs = candidate_pairs(&records, Blocking::Token);
    let by_id: HashMap<u32, &Record> = records.iter().map(|r| (r.id, r)).collect();
    let rule_cfg = RuleConfig::default();
    let matched: Vec<(u32, u32)> =
        pairs.into_iter().filter(|&(a, b)| rule_match(by_id[&a], by_id[&b], &rule_cfg)).collect();
    let eval = |constrained: bool| {
        let clusters = cluster_with_constraints(&records, &matched, constrained);
        let implied: HashSet<(u32, u32)> = clusters
            .implied_pairs()
            .into_iter()
            .filter(|&(a, b)| by_id[&a].source != by_id[&b].source)
            .map(|(a, b)| if by_id[&a].source == 0 { (a, b) } else { (b, a) })
            .collect();
        pr_f1(&implied, &gold)
    };
    let lax = eval(false);
    let strict = eval(true);
    assert!(strict.precision >= lax.precision, "constraints lowered precision");
}

#[test]
fn clusters_materialize_as_sameas_in_the_store() {
    let (records, _) = fixture();
    let pairs = candidate_pairs(&records, Blocking::Token);
    let by_id: HashMap<u32, &Record> = records.iter().map(|r| (r.id, r)).collect();
    let rule_cfg = RuleConfig::default();
    let matched: Vec<(u32, u32)> =
        pairs.into_iter().filter(|&(a, b)| rule_match(by_id[&a], by_id[&b], &rule_cfg)).collect();
    let clusters = cluster_with_constraints(&records, &matched, true);

    let mut kb = KnowledgeBase::new();
    let terms: HashMap<u32, _> =
        records.iter().map(|r| (r.id, kb.intern(&format!("src{}:{}", r.source, r.id)))).collect();
    for &(a, b) in &matched {
        if clusters.same(a, b) {
            kb.sameas.declare(terms[&a], terms[&b]);
        }
    }
    // Store-side equivalence mirrors cluster-side equivalence for all
    // matched pairs.
    for &(a, b) in &matched {
        assert_eq!(kb.sameas.same(terms[&a], terms[&b]), clusters.same(a, b));
    }
}
