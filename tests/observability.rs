//! End-to-end observability test: run one tiny harvest → freeze →
//! serve cycle and check that every instrumented layer reported into
//! the process-global registry, in both render formats.

use std::sync::Arc;

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_obs;
use kbkit::kb_query::QueryService;
use kbkit::kb_store::{KbBuilder, SegmentStore, StoreOptions};

/// Metric families each layer must publish (matching the acceptance
/// bar for `kbkit metrics`).
const EXPECTED_FAMILIES: &[&str] = &[
    // kb-harvest pipeline
    "harvest.phase.extract_us",
    "harvest.facts.accepted",
    "harvest.docs.processed",
    // kb-store snapshot/index
    "store.snapshot.freeze_us",
    "store.snapshot.facts",
    "store.index.entries",
    // kb-store compressed frame index
    "store.index_bytes",
    "store.frames.compressed_bytes",
    "store.frames.raw_bytes",
    // kb-store durable layer (WAL + recovery)
    "store.wal.appends",
    "store.wal.replayed",
    "store.fsync_micros",
    "store.recovery.quarantined_segments",
    // kb-query serving layer
    "query.cache.result_hits",
    "query.cache.result_misses",
    "query.parse_us",
];

#[test]
fn one_pipeline_run_populates_all_three_layers() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let output = harvest(&corpus, &HarvestConfig::default()).expect("tiny harvest succeeds");
    let snap = output.kb.into_snapshot().into_shared();
    let service = QueryService::new(snap);
    for _ in 0..2 {
        service.query("?p bornIn ?c").expect("query succeeds");
    }

    // Durable layer: one create → install → kill → reopen round trip in
    // a scratch directory populates the WAL and recovery families.
    let scratch = std::env::temp_dir().join(format!("kbkit-obs-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let options = StoreOptions { fsync: false, seal_every: 0, memory_budget: None };
    let base = service.snapshot().base().clone();
    let mut store = SegmentStore::create(&scratch, Arc::clone(&base), options).expect("create");
    let mut b = KbBuilder::new();
    b.assert_str("obs_probe", "type", "probe");
    store.install_delta(Arc::new(b.freeze_delta(&store.view()))).expect("install");
    drop(store); // kill: no seal — the WAL is the only durable copy
    let store = SegmentStore::open_with(&scratch, options).expect("reopen");
    assert_eq!(store.recovery_report().wal_replayed, 1);
    drop(store);
    std::fs::remove_dir_all(&scratch).ok();

    let registry = kb_obs::global();
    let text = registry.render_text();
    let json = registry.render_json();
    for family in EXPECTED_FAMILIES {
        assert!(text.contains(family), "text table is missing {family}:\n{text}");
        assert!(json.contains(&format!("\"{family}\"")), "JSON is missing {family}:\n{json}");
    }

    // The query ran twice, so the serving layer saw at least one hit
    // and one miss; the harvest accepted at least one fact; the durable
    // round trip logged and replayed at least one WAL record.
    assert!(registry.counter("query.cache.result_hits").get() >= 1);
    assert!(registry.counter("query.cache.result_misses").get() >= 1);
    assert!(registry.counter("harvest.facts.accepted").get() >= 1);
    assert!(registry.counter("store.wal.appends").get() >= 1);
    assert!(registry.counter("store.wal.replayed").get() >= 1);
    assert_eq!(registry.counter("store.recovery.quarantined_segments").get(), 0);

    // The frame gauges carry the compressed-index footprint: non-empty,
    // and strictly smaller than the uncompressed layout.
    let compressed = registry.gauge("store.frames.compressed_bytes").get();
    let raw = registry.gauge("store.frames.raw_bytes").get();
    assert!(compressed > 0, "compressed frame bytes should be non-zero");
    assert!(compressed < raw, "frames should compress below the raw layout");
    assert_eq!(registry.gauge("store.index_bytes").get(), compressed);
}
