//! End-to-end observability test: run one tiny harvest → freeze →
//! serve cycle and check that every instrumented layer reported into
//! the process-global registry, in both render formats.

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_obs;
use kbkit::kb_query::QueryService;

/// Metric families each layer must publish (three per layer, matching
/// the acceptance bar for `kbkit metrics`).
const EXPECTED_FAMILIES: &[&str] = &[
    // kb-harvest pipeline
    "harvest.phase.extract_us",
    "harvest.facts.accepted",
    "harvest.docs.processed",
    // kb-store snapshot/index
    "store.snapshot.freeze_us",
    "store.snapshot.facts",
    "store.index.entries",
    // kb-query serving layer
    "query.cache.result_hits",
    "query.cache.result_misses",
    "query.parse_us",
];

#[test]
fn one_pipeline_run_populates_all_three_layers() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let output = harvest(&corpus, &HarvestConfig::default()).expect("tiny harvest succeeds");
    let snap = output.kb.into_snapshot().into_shared();
    let service = QueryService::new(snap);
    for _ in 0..2 {
        service.query("?p bornIn ?c").expect("query succeeds");
    }

    let registry = kb_obs::global();
    let text = registry.render_text();
    let json = registry.render_json();
    for family in EXPECTED_FAMILIES {
        assert!(text.contains(family), "text table is missing {family}:\n{text}");
        assert!(json.contains(&format!("\"{family}\"")), "JSON is missing {family}:\n{json}");
    }

    // The query ran twice, so the serving layer saw at least one hit
    // and one miss; the harvest accepted at least one fact.
    assert!(registry.counter("query.cache.result_hits").get() >= 1);
    assert!(registry.counter("query.cache.result_misses").get() >= 1);
    assert!(registry.counter("harvest.facts.accepted").get() >= 1);
}
