//! Corruption-injection suite for the durable segment store: flip one
//! byte in every region of every on-disk artifact — base segment
//! header, dictionary, permutation columns, delta segments, WAL records,
//! manifest — and prove the store answers with a *typed*
//! [`StoreError::Corrupt`] naming the damaged region. It must never
//! panic, and it must never serve a silently-wrong KB.

use std::path::PathBuf;
use std::sync::Arc;

use kbkit::kb_store::{
    ntriples, segment_io, DeltaSegment, KbBuilder, KbSnapshot, SegmentRegion, SegmentStore,
    SegmentedSnapshot, StoreError, StoreOptions, Wal,
};

const NO_FSYNC: StoreOptions = StoreOptions { fsync: false, seal_every: 0, memory_budget: None };

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbkit-corrupt-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small but fully-featured KB: confidences, spans, taxonomy edges,
/// sameAs links and labels, so every segment region is non-empty.
fn rich_base() -> Arc<KbSnapshot> {
    let mut b = KbBuilder::new();
    let src = b.register_source("test-source");
    for i in 0..8 {
        let s = b.intern(&format!("person_{i}"));
        let p = b.intern("bornIn");
        let o = b.intern(&format!("city_{}", i % 3));
        b.add_fact(kbkit::kb_store::Fact {
            triple: kbkit::kb_store::Triple::new(s, p, o),
            confidence: 0.5 + 0.05 * i as f64,
            source: src,
            span: kbkit::kb_store::TimeSpan::parse("[1990,2000]"),
        });
    }
    let person = b.intern("person");
    let entity = b.intern("entity");
    b.taxonomy.add_subclass(person, entity).unwrap();
    let a = b.intern("person_0");
    let a2 = b.intern("p0_alias");
    b.sameas.declare(a, a2);
    let en = b.labels.lang("en");
    b.labels.add(a, en, "Person Zero");
    b.freeze().into()
}

fn delta_over(view: &SegmentedSnapshot) -> DeltaSegment {
    let mut b = KbBuilder::new();
    b.assert_str("person_0", "wonPrize", "some_prize");
    b.retract_str("person_1", "bornIn", "city_1");
    b.freeze_delta(view)
}

/// Every single-byte flip in a base segment must surface as `Corrupt`
/// naming the region the byte belongs to.
#[test]
fn base_segment_flips_report_the_damaged_region() {
    let dir = scratch("base-regions");
    let base = rich_base();
    let path = dir.join("base.seg");
    base.write_segment(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let regions = segment_io::region_map(&bytes).expect("region map");
    // The map must cover the whole file, so the sweep below visits
    // every region (header included).
    assert_eq!(regions.iter().map(|(_, r)| r.len()).sum::<usize>(), bytes.len());

    for (region, range) in &regions {
        // Flip the first, middle, and last byte of each region.
        for offset in [range.start, (range.start + range.end) / 2, range.end - 1] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0xA5;
            std::fs::write(&path, &bad).unwrap();
            match KbSnapshot::open_segment(&path) {
                Err(StoreError::Corrupt { region: reported, .. }) => {
                    // Structural preamble damage (magic/version/length
                    // fields) is always attributed to the header.
                    assert!(
                        reported == *region || reported == SegmentRegion::Header,
                        "byte {offset} in {region} reported as {reported}"
                    );
                }
                Err(other) => panic!("byte {offset} in {region}: untyped error {other}"),
                Ok(_) => panic!("byte {offset} in {region} was silently accepted"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Same sweep for a delta segment (which adds the delta-metadata and
/// fact-kinds regions).
#[test]
fn delta_segment_flips_report_the_damaged_region() {
    let dir = scratch("delta-regions");
    let base = rich_base();
    let view = SegmentedSnapshot::from_base(base);
    let delta = delta_over(&view);
    let path = dir.join("delta.seg");
    delta.write_segment(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let regions = segment_io::region_map(&bytes).expect("region map");
    let names: Vec<String> = regions.iter().map(|(r, _)| r.to_string()).collect();
    assert!(names.iter().any(|n| n.contains("delta")), "delta regions present: {names:?}");

    for (region, range) in &regions {
        for offset in [range.start, range.end - 1] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0xA5;
            std::fs::write(&path, &bad).unwrap();
            match DeltaSegment::open_segment(&path) {
                Err(StoreError::Corrupt { region: reported, .. }) => {
                    assert!(
                        reported == *region || reported == SegmentRegion::Header,
                        "byte {offset} in {region} reported as {reported}"
                    );
                }
                Err(other) => panic!("byte {offset} in {region}: untyped error {other}"),
                Ok(_) => panic!("byte {offset} in {region} was silently accepted"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A flipped byte in a WAL record is typed damage (`wal record`), and
/// recovery serves the intact prefix rather than failing or lying.
#[test]
fn wal_record_flip_is_typed_and_recovery_degrades_gracefully() {
    let dir = scratch("wal-record");
    let base = rich_base();
    let mut store = SegmentStore::create(&dir, Arc::clone(&base), NO_FSYNC).unwrap();
    let d1 = {
        let mut b = KbBuilder::new();
        b.assert_str("person_2", "wonPrize", "first_prize");
        Arc::new(b.freeze_delta(&store.view()))
    };
    store.install_delta(d1).unwrap();
    let oracle = ntriples::to_string(&store.view()).unwrap();
    let d2 = {
        let mut b = KbBuilder::new();
        b.assert_str("person_3", "wonPrize", "second_prize");
        Arc::new(b.freeze_delta(&store.view()))
    };
    store.install_delta(d2).unwrap();
    drop(store);

    let wal_path = dir.join("wal-0.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    let n = bytes.len();
    bytes[n - 3] ^= 0xA5; // inside the second record's payload
    std::fs::write(&wal_path, &bytes).unwrap();

    // The WAL layer reports typed damage...
    let replay = Wal::replay(&wal_path).unwrap();
    let (err, _) = replay.damage.expect("damage reported");
    assert!(matches!(err, StoreError::Corrupt { region: SegmentRegion::WalRecord, .. }), "{err}");

    // ...and the store quarantines the damaged tail, serving the prefix.
    let store = SegmentStore::open_with(&dir, NO_FSYNC).unwrap();
    let report = store.recovery_report();
    assert!(report.degraded(), "damage must be reported, not hidden");
    assert_eq!(report.wal_replayed, 1, "intact prefix survives");
    assert_eq!(ntriples::to_string(&store.view()).unwrap(), oracle);
    std::fs::remove_dir_all(&dir).ok();
}

/// Every flipped byte in the manifest is caught; the store refuses to
/// open rather than guessing at its file list.
#[test]
fn manifest_flips_are_hard_typed_errors() {
    let dir = scratch("manifest");
    let base = rich_base();
    drop(SegmentStore::create(&dir, base, NO_FSYNC).unwrap());
    let path = dir.join("MANIFEST");
    let bytes = std::fs::read(&path).unwrap();
    for i in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[i] ^= 0xA5;
        std::fs::write(&path, &bad).unwrap();
        match SegmentStore::open_with(&dir, NO_FSYNC) {
            Err(StoreError::Corrupt { region: SegmentRegion::Manifest, .. }) => {}
            Err(other) => panic!("manifest flip at byte {i}: wrong error {other}"),
            Ok(_) => panic!("manifest flip at byte {i} was silently accepted"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Lazy opens defer region checksums to first access: a flipped byte
/// in a *cold* region must not fail `open_with` (only the preamble,
/// header and manifest are read there) but must surface as the same
/// typed `Corrupt` error — naming the damaged region — the moment the
/// region is faulted via `prefault`. Nothing is ever silently served.
#[test]
fn cold_region_flips_surface_on_first_access_not_open() {
    use kbkit::kb_store::KbRead as _;
    let dir = scratch("cold-regions");
    let base = rich_base();
    drop(SegmentStore::create(&dir, base, NO_FSYNC).unwrap());
    let path = dir.join("base-0.seg");
    let bytes = std::fs::read(&path).unwrap();
    let regions = segment_io::region_map(&bytes).expect("region map");

    for (region, range) in &regions {
        for offset in [range.start, (range.start + range.end) / 2, range.end - 1] {
            let mut bad = bytes.clone();
            bad[offset] ^= 0xA5;
            std::fs::write(&path, &bad).unwrap();
            let opened = SegmentStore::open_with(&dir, NO_FSYNC);
            if *region == SegmentRegion::Header {
                // Structural damage is still a hard open error.
                match opened {
                    Err(StoreError::Corrupt { .. }) => continue,
                    Err(other) => panic!("header byte {offset}: untyped error {other}"),
                    Ok(_) => panic!("header byte {offset} was silently accepted"),
                }
            }
            // Data-region damage: the lazy open must succeed (open cost
            // is O(header), the cold bytes were never read) ...
            let store = opened
                .unwrap_or_else(|e| panic!("byte {offset} in {region} failed lazy open: {e}"));
            // ... and the first touch must report the damaged region.
            match store.view().prefault() {
                Err(StoreError::Corrupt { region: reported, .. }) => {
                    assert!(
                        reported == *region || reported == SegmentRegion::Header,
                        "byte {offset} in {region} reported as {reported}"
                    );
                }
                Err(other) => panic!("byte {offset} in {region}: untyped error {other}"),
                Ok(()) => panic!("byte {offset} in {region} was silently accepted"),
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
