//! Streaming stress: the live-stream replay of the rival-product case
//! study, end to end — incremental harvest batches become delta
//! installs, delta installs patch standing views, and the analytics
//! layer aggregates the synthesized long-horizon stream over sliding
//! windows. CI-scaled (tens of thousands of posts); harness T20 runs
//! the latency claims at full scale.

use std::sync::Arc;

use kbkit::kb_analytics::stream::from_corpus;
use kbkit::kb_analytics::{
    sliding_windows, synthesize_stream, window_mention_counts, StreamPost, Tracker,
};
use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{HarvestConfig, IncrementalHarvester};
use kbkit::kb_ned::Ned;
use kbkit::kb_query::{canonical_output, execute, QueryService};
use kbkit::kb_store::KbRead;

const VIEWS: [&str; 2] = [
    "SELECT ?c COUNT(?p) AS ?n WHERE { ?p bornIn ?c } GROUP BY ?c",
    "?p bornIn ?c . ?c locatedIn ?n",
];

/// Harvest batches stream into a live service with standing views
/// registered; after every install each view's patched answer must be
/// byte-identical to re-executing its query on the new snapshot.
#[test]
fn harvest_stream_keeps_standing_views_identical_to_reexecution() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let split = (corpus.articles.len() * 7 / 10).max(1);
    let boot = Corpus {
        world: corpus.world.clone(),
        articles: corpus.articles[..split].to_vec(),
        overviews: corpus.overviews.clone(),
        web_pages: corpus.web_pages.clone(),
        essays: corpus.essays.clone(),
        posts: Vec::new(),
    };
    let (inc, out) =
        IncrementalHarvester::bootstrap(&boot, &HarvestConfig::default()).expect("bootstrap");
    let service = QueryService::new(out.kb.snapshot().into_shared());
    let ids: Vec<_> =
        VIEWS.iter().map(|q| service.register_view(q).expect("view registers")).collect();

    let mut installs = 0u32;
    let mut patched_updates = 0u32;
    for chunk in corpus.articles[split..].chunks(2) {
        let refs: Vec<_> = chunk.iter().collect();
        let view = service.snapshot();
        let outcome = inc.harvest_batch(&corpus.world, &refs, &view).expect("batch harvests");
        let updates = service.apply_delta_publishing(Arc::new(outcome.delta));
        installs += 1;
        patched_updates += updates.iter().filter(|u| u.patched).count() as u32;

        let after = service.snapshot();
        for (id, q) in ids.iter().zip(VIEWS) {
            let plan = service.plan_for(q).expect("view query plans");
            let want = canonical_output(&plan, &execute(&plan, after.as_ref()), after.as_ref());
            let got = service.view_result(*id).expect("view stays registered");
            assert_eq!(
                got.render(after.as_ref()),
                want.render(after.as_ref()),
                "standing view {q:?} diverged after install {installs}"
            );
        }
    }
    assert!(installs >= 3, "the held-out stream must produce several installs, got {installs}");
    assert!(
        patched_updates > 0,
        "both views are conjunctive SELECT/COUNT shapes; at least one install must delta-patch"
    );
}

/// The synthesized long stream is exactly periodic per horizon-sized
/// window: every cycle of the replay produces the same tracked-entity
/// counts as the planted corpus cycle, no matter how far the timeline
/// extends — which is what makes replay results checkable at scale.
#[test]
fn synthesized_stream_windows_are_periodic_at_scale() {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out =
        kbkit::kb_harvest::pipeline::harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    let (pa, pb) = corpus.world.rival_products;
    let ta = out.kb.term(&corpus.world.entity(pa).canonical).expect("product A");
    let tb = out.kb.term(&corpus.world.entity(pb).canonical).expect("product B");
    let mut ned = Ned::new(&out.kb);
    for doc in corpus.all_docs() {
        for m in &doc.mentions {
            if let Some(t) = out.kb.term(&corpus.world.entity(m.entity).canonical) {
                ned.add_anchor(&m.surface, t);
            }
        }
    }
    ned.finalize();
    let tracker = Tracker::new(&ned, vec![ta, tb]);

    let base: Vec<StreamPost> = corpus.posts.iter().map(from_corpus).collect();
    let horizon = kbkit::kb_analytics::live::horizon_days(&base);
    let cycles = (20_000 / base.len()).max(2) as u32;
    let stream = synthesize_stream(&base, base.len() * cycles as usize);
    assert!(stream.len() >= 20_000.min(base.len() * 2), "stream must actually scale up");

    // One horizon-aligned window per replay cycle.
    let windows = sliding_windows(horizon * cycles, horizon, horizon);
    assert_eq!(windows.len(), cycles as usize);
    let counts = window_mention_counts(&tracker, &out.kb, &stream, &windows);
    let first = &counts[0];
    assert!(
        first.get(&ta).copied().unwrap_or(0) + first.get(&tb).copied().unwrap_or(0) > 0,
        "the planted rival products must be mentioned in the base cycle"
    );
    for (k, window) in counts.iter().enumerate().skip(1) {
        assert_eq!(
            window, first,
            "cycle {k} diverged from the planted shape — the replay is not periodic"
        );
    }

    // Overlapping windows (stride < width) see each interior day twice.
    let overlapping = sliding_windows(horizon * 2, horizon, horizon.div_ceil(2));
    assert!(overlapping.len() > 2);
}
