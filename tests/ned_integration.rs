//! Integration: harvested KB + NED over gold-annotated articles.

use kbkit::kb_corpus::{Corpus, CorpusConfig};
use kbkit::kb_harvest::pipeline::{harvest, HarvestConfig};
use kbkit::kb_ned::eval::GoldDoc;
use kbkit::kb_ned::{detect_mentions, evaluate, Ned, Strategy};
use kbkit::kb_store::KbRead;

fn setup() -> (Corpus, kbkit::kb_harvest::pipeline::HarvestOutput) {
    let corpus = Corpus::generate(&CorpusConfig::tiny());
    let out = harvest(&corpus, &HarvestConfig::default()).expect("harvest");
    (corpus, out)
}

fn build_ned<'kb>(corpus: &Corpus, kb: &'kb kbkit::kb_store::KnowledgeBase) -> Ned<'kb> {
    let mut ned = Ned::new(kb);
    for doc in corpus.all_docs() {
        for m in &doc.mentions {
            if let Some(term) = kb.term(&corpus.world.entity(m.entity).canonical) {
                ned.add_anchor(&m.surface, term);
            }
        }
    }
    ned.finalize();
    ned
}

fn gold_docs<'a>(corpus: &'a Corpus, kb: &kbkit::kb_store::KnowledgeBase) -> Vec<GoldDoc<'a>> {
    corpus
        .articles
        .iter()
        .map(|d| GoldDoc {
            text: &d.text,
            mentions: d
                .mentions
                .iter()
                .filter_map(|m| {
                    kb.term(&corpus.world.entity(m.entity).canonical).map(|t| (m.start, m.end, t))
                })
                .collect(),
        })
        .filter(|g| !g.mentions.is_empty())
        .collect()
}

#[test]
fn strategy_ladder_holds_on_articles() {
    let (corpus, out) = setup();
    let ned = build_ned(&corpus, &out.kb);
    let docs = gold_docs(&corpus, &out.kb);
    let prior = evaluate(&ned, &docs, Strategy::Prior);
    let context = evaluate(&ned, &docs, Strategy::Context);
    let coherence = evaluate(&ned, &docs, Strategy::Coherence);
    assert!(prior.total > 100, "need substance: {} mentions", prior.total);
    assert!(context.accuracy() >= prior.accuracy() - 1e-9);
    assert!(coherence.ambiguous_accuracy() >= prior.ambiguous_accuracy());
    assert!(coherence.accuracy() > 0.9, "coherence accuracy {}", coherence.accuracy());
}

#[test]
fn mention_detection_recovers_most_gold_spans() {
    let (corpus, out) = setup();
    let kb = &out.kb;
    let mut found = 0usize;
    let mut total = 0usize;
    for doc in &corpus.articles {
        let detected = detect_mentions(kb, &doc.text);
        for gold in &doc.mentions {
            total += 1;
            if detected.iter().any(|d| d.start == gold.start && d.end == gold.end) {
                found += 1;
            }
        }
    }
    assert!(total > 0);
    let recall = found as f64 / total as f64;
    assert!(recall > 0.8, "mention detection recall {recall}");
}

#[test]
fn detected_mentions_never_overlap_and_slice_cleanly() {
    let (corpus, out) = setup();
    let kb = &out.kb;
    for doc in corpus.all_docs().into_iter().take(50) {
        let detected = detect_mentions(kb, &doc.text);
        let mut last_end = 0usize;
        for m in &detected {
            assert!(m.start >= last_end, "overlap in {}", doc.title);
            assert_eq!(&doc.text[m.start..m.end], m.surface);
            last_end = m.end;
        }
    }
}

#[test]
fn unambiguous_full_names_resolve_perfectly() {
    let (corpus, out) = setup();
    let ned = build_ned(&corpus, &out.kb);
    let mut checked = 0usize;
    for doc in gold_docs(&corpus, &out.kb).iter().take(30) {
        let spans: Vec<(usize, usize)> = doc.mentions.iter().map(|&(s, e, _)| (s, e)).collect();
        let resolved = ned.disambiguate(doc.text, &spans, Strategy::Prior);
        for ((start, end, gold), got) in doc.mentions.iter().zip(resolved) {
            let surface = &doc.text[*start..*end];
            if ned.ambiguity(surface) == 1 {
                assert_eq!(got, Some(*gold), "unambiguous {surface:?} misresolved");
                checked += 1;
            }
        }
    }
    assert!(checked > 20, "too few unambiguous mentions exercised");
}
