//! Chaos integration: deterministically corrupt a slice of the corpus
//! and prove the pipeline (a) completes, (b) quarantines exactly the
//! poison documents into the dead-letter queue, (c) loses at most two
//! points of precision/recall versus harvesting the clean subset, and
//! (d) does all of it reproducibly under a fixed `(corpus, fault)`
//! seed pair.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use kbkit::kb_corpus::{gold, inject_faults, Corpus, CorpusConfig, FaultConfig, FaultReport};
use kbkit::kb_harvest::pipeline::{
    evaluate_discovered, harvest, HarvestConfig, IncrementalHarvester, Method,
};
use kbkit::kb_harvest::resilience::DowngradeReason;
use kbkit::kb_store::{ntriples, KbRead, SegmentStore, StoreOptions, Wal};

const FAULT_RATE: f64 = 0.2;

fn chaos_config() -> FaultConfig {
    FaultConfig { fault_rate: FAULT_RATE, ..Default::default() }
}

/// A tiny corpus with ~20% of its documents deterministically faulted.
fn faulted_corpus() -> (Corpus, FaultReport) {
    let mut corpus = Corpus::generate(&CorpusConfig::tiny());
    let report = inject_faults(&mut corpus, &chaos_config());
    (corpus, report)
}

#[test]
fn chaotic_harvest_completes_with_exact_dead_letter_accounting() {
    let (corpus, report) = faulted_corpus();
    let total = corpus.all_docs().len();
    assert!(
        report.len() * 10 >= total,
        "chaos premise broken: only {}/{} docs faulted (< 10%)",
        report.len(),
        total
    );
    let poison = report.poison_ids();
    assert!(!poison.is_empty(), "fault mix should include poison kinds");
    assert!(!report.benign_ids().is_empty(), "fault mix should include benign stress");

    let out = harvest(&corpus, &HarvestConfig::default())
        .expect("pipeline must survive a 20% faulty corpus");

    // The dead-letter queue is exactly the injected poison set: every
    // poison doc is quarantined, nothing else is.
    let quarantined: BTreeSet<u32> = out.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(quarantined, poison, "dead letters must match injected poison exactly");
    for id in report.benign_ids() {
        assert!(!quarantined.contains(&id), "benign stressed doc {id} must survive");
    }
    assert_eq!(out.stats.docs, total - poison.len());
    assert!(!out.accepted.is_empty(), "survivors should still yield accepted facts");
}

#[test]
fn chaotic_harvest_quality_stays_within_two_points_of_clean_subset() {
    let (chaotic, report) = faulted_corpus();
    let poison = report.poison_ids();
    assert!(!poison.is_empty());

    // The baseline: the same faulted corpus (same seeds, same benign
    // stress) with the poison documents removed up front, so the only
    // difference is *who* discards them — us or the pipeline.
    let (mut clean, report2) = faulted_corpus();
    assert_eq!(report, report2, "fault injection must be seed-deterministic");
    clean.articles.retain(|d| !poison.contains(&d.id));
    clean.overviews.retain(|d| !poison.contains(&d.id));
    clean.web_pages.retain(|d| !poison.contains(&d.id));
    clean.essays.retain(|d| !poison.contains(&d.id));

    let cfg = HarvestConfig::default();
    let gold_facts = gold::gold_fact_strings(&chaotic.world);
    let out_chaos = harvest(&chaotic, &cfg).expect("chaotic harvest");
    let out_clean = harvest(&clean, &cfg).expect("clean-subset harvest");
    assert_eq!(out_clean.stats.quarantined_count(), 0);

    let m_chaos = evaluate_discovered(&out_chaos.accepted, &gold_facts, &out_chaos.seeds);
    let m_clean = evaluate_discovered(&out_clean.accepted, &gold_facts, &out_clean.seeds);
    assert!(
        (m_chaos.precision - m_clean.precision).abs() <= 0.02,
        "precision drifted: chaotic {} vs clean subset {}",
        m_chaos.precision,
        m_clean.precision
    );
    assert!(
        (m_chaos.recall - m_clean.recall).abs() <= 0.02,
        "recall drifted: chaotic {} vs clean subset {}",
        m_chaos.recall,
        m_clean.recall
    );
}

#[test]
fn chaotic_harvest_is_deterministic_end_to_end() {
    let (c1, r1) = faulted_corpus();
    let (c2, r2) = faulted_corpus();
    assert_eq!(r1, r2);

    let cfg = HarvestConfig::default();
    let out1 = harvest(&c1, &cfg).expect("harvest");
    let out2 = harvest(&c2, &cfg).expect("harvest");

    let q1: Vec<u32> = out1.stats.quarantined.iter().map(|q| q.doc_id).collect();
    let q2: Vec<u32> = out2.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(q1, q2, "dead-letter order and content must be reproducible");
    assert_eq!(out1.stats.retries, out2.stats.retries);
    assert_eq!(out1.stats.downgrades.len(), out2.stats.downgrades.len());

    let keys1: Vec<_> = out1.accepted.iter().map(|c| c.key()).collect();
    let keys2: Vec<_> = out2.accepted.iter().map(|c| c.key()).collect();
    assert_eq!(keys1, keys2, "accepted facts must be reproducible under chaos");
    assert_eq!(out1.kb.len(), out2.kb.len());
}

// ---------------------------------------------------------------------
// Crash-recovery chaos: a durable incremental harvest killed (-9) at an
// arbitrary instant must recover byte-identically to the last completed
// install barrier — never to a torn or invented state.

const NO_FSYNC: StoreOptions = StoreOptions { fsync: false, seal_every: 0, memory_budget: None };

/// A durable incremental harvest on the chaotic corpus, captured as the
/// raw files it left behind plus the N-Triples oracle dump after every
/// install barrier. Built once; crash scenarios restore these files
/// into fresh directories and mutilate them.
struct DurableRun {
    /// `(file name, contents)` for every file in the store directory.
    files: Vec<(String, Vec<u8>)>,
    /// `oracles[k]` = dump of the view after `k` installed deltas.
    oracles: Vec<String>,
    /// WAL file name and, for each record, the file offset one past its
    /// last byte (so `boundaries[k]` = prefix length holding `k+1`
    /// complete records).
    wal_name: String,
    boundaries: Vec<usize>,
}

fn durable_run() -> &'static DurableRun {
    static RUN: OnceLock<DurableRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let (corpus, _) = faulted_corpus();
        let split = (corpus.articles.len() * 7 / 10).max(1);
        let boot = Corpus {
            world: corpus.world.clone(),
            articles: corpus.articles[..split].to_vec(),
            overviews: corpus.overviews.clone(),
            web_pages: corpus.web_pages.clone(),
            essays: corpus.essays.clone(),
            posts: Vec::new(),
        };
        let cfg = HarvestConfig::default();
        let (inc, out) = IncrementalHarvester::bootstrap(&boot, &cfg).expect("bootstrap");
        let base = out.kb.snapshot().into_shared();

        let dir = chaos_dir("fixture");
        let mut store = SegmentStore::create(&dir, base, NO_FSYNC).expect("create store");
        let mut oracles = vec![ntriples::to_string(&store.view()).expect("dump")];
        for chunk in corpus.articles[split..].chunks(3) {
            let refs: Vec<_> = chunk.iter().collect();
            let view = store.view();
            let outcome = inc.harvest_batch(&corpus.world, &refs, &view).expect("batch");
            store.install_delta(Arc::new(outcome.delta)).expect("install");
            oracles.push(ntriples::to_string(&store.view()).expect("dump"));
        }
        assert!(oracles.len() >= 3, "need at least two installs to crash between");
        drop(store); // the simulated kill -9: no seal, no compaction

        let mut files = Vec::new();
        let mut wal_name = String::new();
        for entry in std::fs::read_dir(&dir).expect("read dir") {
            let entry = entry.expect("entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("wal-") {
                wal_name = name.clone();
            }
            files.push((name, std::fs::read(entry.path()).expect("read file")));
        }
        assert!(!wal_name.is_empty(), "store must have a WAL");

        let wal_path = dir.join(&wal_name);
        let replay = Wal::replay(&wal_path).expect("replay");
        assert_eq!(replay.records.len(), oracles.len() - 1);
        let mut boundaries = Vec::new();
        let mut pos = kbkit::kb_store::wal::WAL_HEADER_LEN as usize;
        for (_, payload) in &replay.records {
            pos += 16 + payload.len();
            boundaries.push(pos);
        }
        std::fs::remove_dir_all(&dir).ok();
        DurableRun { files, oracles, wal_name, boundaries }
    })
}

fn chaos_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbkit-chaos-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Restores the fixture's files into `dir`, truncating the WAL to
/// `wal_len` bytes — the crash instant.
fn restore_with_wal_cut(run: &DurableRun, dir: &PathBuf, wal_len: usize) {
    std::fs::create_dir_all(dir).expect("mkdir");
    for (name, bytes) in &run.files {
        let data = if name == &run.wal_name { &bytes[..wal_len.min(bytes.len())] } else { bytes };
        std::fs::write(dir.join(name), data).expect("write");
    }
}

/// Which oracle a crash at WAL length `len` must recover to: one entry
/// per *complete* record in the surviving prefix.
fn expected_oracle(run: &DurableRun, len: usize) -> &str {
    let complete = run.boundaries.iter().filter(|&&b| b <= len).count();
    &run.oracles[complete]
}

#[test]
fn kill_nine_after_install_recovers_byte_identically() {
    let run = durable_run();
    let dir = chaos_dir("clean-kill");
    let wal_full = run.files.iter().find(|(n, _)| n == &run.wal_name).unwrap().1.len();
    restore_with_wal_cut(run, &dir, wal_full);

    let store = SegmentStore::open_with(&dir, NO_FSYNC).expect("recovery");
    let report = store.recovery_report();
    assert_eq!(report.wal_replayed, run.oracles.len() - 1, "every install replays");
    assert!(!report.degraded(), "a clean kill -9 quarantines nothing");
    assert_eq!(report.wal_truncated_bytes, 0);
    let recovered = ntriples::to_string(&store.view()).expect("dump");
    assert_eq!(recovered, *run.oracles.last().unwrap(), "recovered view must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_nine_mid_record_recovers_to_the_previous_barrier_at_every_byte() {
    let run = durable_run();
    let dir = chaos_dir("torn-sweep");
    // Sweep every byte boundary inside the *last* record: from the end
    // of the second-to-last record to one byte short of the full WAL.
    let last_start = run.boundaries[run.boundaries.len() - 2];
    let last_end = *run.boundaries.last().unwrap();
    for cut in last_start..last_end {
        restore_with_wal_cut(run, &dir, cut);
        let store = SegmentStore::open_with(&dir, NO_FSYNC)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        assert_eq!(store.recovery_report().wal_replayed, run.oracles.len() - 2, "cut at {cut}");
        assert!(!store.recovery_report().degraded(), "a torn tail is not corruption");
        let recovered = ntriples::to_string(&store.view()).expect("dump");
        assert_eq!(recovered, expected_oracle(run, cut), "cut at {cut}");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A kill -9 at *any* WAL offset — not just inside the last record —
    /// recovers to exactly the barrier of the last complete record.
    #[test]
    fn kill_nine_at_any_wal_offset_recovers_to_a_barrier(frac in 0.0f64..1.0) {
        let run = durable_run();
        let header = kbkit::kb_store::wal::WAL_HEADER_LEN as usize;
        let full = *run.boundaries.last().unwrap();
        let cut = header + ((full - header) as f64 * frac) as usize;
        let dir = chaos_dir(&format!("prop-{cut}"));
        restore_with_wal_cut(run, &dir, cut);
        let store = SegmentStore::open_with(&dir, NO_FSYNC).expect("recovery");
        prop_assert!(!store.recovery_report().degraded());
        let recovered = ntriples::to_string(&store.view()).expect("dump");
        prop_assert_eq!(&recovered, expected_oracle(run, cut), "cut at {}", cut);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn recovered_store_keeps_accepting_installs() {
    // Crash mid-record, recover, then continue harvesting on top of the
    // recovered store: the WAL sequence must continue seamlessly.
    let run = durable_run();
    let dir = chaos_dir("continue");
    let cut = *run.boundaries.last().unwrap() - 7; // tear the last record
    restore_with_wal_cut(run, &dir, cut);

    let mut store = SegmentStore::open_with(&dir, NO_FSYNC).expect("recovery");
    let before = store.view().len();
    let mut b = kbkit::kb_store::KbBuilder::new();
    b.assert_str("post_crash_entity", "type", "survivor");
    store.install_delta(Arc::new(b.freeze_delta(&store.view()))).expect("install after crash");
    assert_eq!(store.view().len(), before + 1);
    let oracle = ntriples::to_string(&store.view()).expect("dump");
    drop(store); // kill again

    let store = SegmentStore::open_with(&dir, NO_FSYNC).expect("second recovery");
    assert_eq!(ntriples::to_string(&store.view()).expect("dump"), oracle);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_refine_budget_on_chaotic_corpus_degrades_but_completes() {
    let (corpus, report) = faulted_corpus();
    let mut cfg = HarvestConfig { method: Method::Reasoning, ..Default::default() };
    cfg.resilience.refine_budget_secs = 0.0;

    let out = harvest(&corpus, &cfg).expect("budget exhaustion must degrade, not fail");
    assert!(out.stats.downgraded(), "zero budget must take the degradation ladder");
    let d = &out.stats.downgrades[0];
    assert_eq!(d.from, Method::Reasoning);
    assert_eq!(d.to, Method::Statistical);
    assert!(matches!(d.reason, DowngradeReason::BudgetExceeded { .. }));
    // Quarantine accounting still holds on the degraded path.
    let quarantined: BTreeSet<u32> = out.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(quarantined, report.poison_ids());
    assert!(!out.accepted.is_empty(), "statistical fallback still produces facts");
}
