//! Chaos integration: deterministically corrupt a slice of the corpus
//! and prove the pipeline (a) completes, (b) quarantines exactly the
//! poison documents into the dead-letter queue, (c) loses at most two
//! points of precision/recall versus harvesting the clean subset, and
//! (d) does all of it reproducibly under a fixed `(corpus, fault)`
//! seed pair.

use std::collections::BTreeSet;

use kbkit::kb_corpus::{gold, inject_faults, Corpus, CorpusConfig, FaultConfig, FaultReport};
use kbkit::kb_harvest::pipeline::{evaluate_discovered, harvest, HarvestConfig, Method};
use kbkit::kb_harvest::resilience::DowngradeReason;
use kbkit::kb_store::KbRead;

const FAULT_RATE: f64 = 0.2;

fn chaos_config() -> FaultConfig {
    FaultConfig { fault_rate: FAULT_RATE, ..Default::default() }
}

/// A tiny corpus with ~20% of its documents deterministically faulted.
fn faulted_corpus() -> (Corpus, FaultReport) {
    let mut corpus = Corpus::generate(&CorpusConfig::tiny());
    let report = inject_faults(&mut corpus, &chaos_config());
    (corpus, report)
}

#[test]
fn chaotic_harvest_completes_with_exact_dead_letter_accounting() {
    let (corpus, report) = faulted_corpus();
    let total = corpus.all_docs().len();
    assert!(
        report.len() * 10 >= total,
        "chaos premise broken: only {}/{} docs faulted (< 10%)",
        report.len(),
        total
    );
    let poison = report.poison_ids();
    assert!(!poison.is_empty(), "fault mix should include poison kinds");
    assert!(!report.benign_ids().is_empty(), "fault mix should include benign stress");

    let out = harvest(&corpus, &HarvestConfig::default())
        .expect("pipeline must survive a 20% faulty corpus");

    // The dead-letter queue is exactly the injected poison set: every
    // poison doc is quarantined, nothing else is.
    let quarantined: BTreeSet<u32> = out.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(quarantined, poison, "dead letters must match injected poison exactly");
    for id in report.benign_ids() {
        assert!(!quarantined.contains(&id), "benign stressed doc {id} must survive");
    }
    assert_eq!(out.stats.docs, total - poison.len());
    assert!(!out.accepted.is_empty(), "survivors should still yield accepted facts");
}

#[test]
fn chaotic_harvest_quality_stays_within_two_points_of_clean_subset() {
    let (chaotic, report) = faulted_corpus();
    let poison = report.poison_ids();
    assert!(!poison.is_empty());

    // The baseline: the same faulted corpus (same seeds, same benign
    // stress) with the poison documents removed up front, so the only
    // difference is *who* discards them — us or the pipeline.
    let (mut clean, report2) = faulted_corpus();
    assert_eq!(report, report2, "fault injection must be seed-deterministic");
    clean.articles.retain(|d| !poison.contains(&d.id));
    clean.overviews.retain(|d| !poison.contains(&d.id));
    clean.web_pages.retain(|d| !poison.contains(&d.id));
    clean.essays.retain(|d| !poison.contains(&d.id));

    let cfg = HarvestConfig::default();
    let gold_facts = gold::gold_fact_strings(&chaotic.world);
    let out_chaos = harvest(&chaotic, &cfg).expect("chaotic harvest");
    let out_clean = harvest(&clean, &cfg).expect("clean-subset harvest");
    assert_eq!(out_clean.stats.quarantined_count(), 0);

    let m_chaos = evaluate_discovered(&out_chaos.accepted, &gold_facts, &out_chaos.seeds);
    let m_clean = evaluate_discovered(&out_clean.accepted, &gold_facts, &out_clean.seeds);
    assert!(
        (m_chaos.precision - m_clean.precision).abs() <= 0.02,
        "precision drifted: chaotic {} vs clean subset {}",
        m_chaos.precision,
        m_clean.precision
    );
    assert!(
        (m_chaos.recall - m_clean.recall).abs() <= 0.02,
        "recall drifted: chaotic {} vs clean subset {}",
        m_chaos.recall,
        m_clean.recall
    );
}

#[test]
fn chaotic_harvest_is_deterministic_end_to_end() {
    let (c1, r1) = faulted_corpus();
    let (c2, r2) = faulted_corpus();
    assert_eq!(r1, r2);

    let cfg = HarvestConfig::default();
    let out1 = harvest(&c1, &cfg).expect("harvest");
    let out2 = harvest(&c2, &cfg).expect("harvest");

    let q1: Vec<u32> = out1.stats.quarantined.iter().map(|q| q.doc_id).collect();
    let q2: Vec<u32> = out2.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(q1, q2, "dead-letter order and content must be reproducible");
    assert_eq!(out1.stats.retries, out2.stats.retries);
    assert_eq!(out1.stats.downgrades.len(), out2.stats.downgrades.len());

    let keys1: Vec<_> = out1.accepted.iter().map(|c| c.key()).collect();
    let keys2: Vec<_> = out2.accepted.iter().map(|c| c.key()).collect();
    assert_eq!(keys1, keys2, "accepted facts must be reproducible under chaos");
    assert_eq!(out1.kb.len(), out2.kb.len());
}

#[test]
fn zero_refine_budget_on_chaotic_corpus_degrades_but_completes() {
    let (corpus, report) = faulted_corpus();
    let mut cfg = HarvestConfig { method: Method::Reasoning, ..Default::default() };
    cfg.resilience.refine_budget_secs = 0.0;

    let out = harvest(&corpus, &cfg).expect("budget exhaustion must degrade, not fail");
    assert!(out.stats.downgraded(), "zero budget must take the degradation ladder");
    let d = &out.stats.downgrades[0];
    assert_eq!(d.from, Method::Reasoning);
    assert_eq!(d.to, Method::Statistical);
    assert!(matches!(d.reason, DowngradeReason::BudgetExceeded { .. }));
    // Quarantine accounting still holds on the degraded path.
    let quarantined: BTreeSet<u32> = out.stats.quarantined.iter().map(|q| q.doc_id).collect();
    assert_eq!(quarantined, report.poison_ids());
    assert!(!out.accepted.is_empty(), "statistical fallback still produces facts");
}
